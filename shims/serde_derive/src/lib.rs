//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim (`shims/serde`).
//!
//! The build environment has no access to crates.io, so this derive is
//! written against `proc_macro` alone — no `syn`, no `quote`. It parses
//! just the shapes this workspace uses: non-generic braced structs and
//! enums whose variants are unit, single-field tuple, or braced.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Variant {
    Unit(String),
    /// Single unnamed field (e.g. `Scrambled(u64)`).
    Tuple(String),
    /// Named fields (e.g. `CrossSocket { hops: usize }`).
    Struct(String, Vec<String>),
}

enum Shape {
    Struct(String, Vec<String>),
    Enum(String, Vec<Variant>),
}

/// Skips attributes and visibility, returning the tokens from the
/// `struct`/`enum` keyword onward.
fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => continue, // no generics in this workspace
            None => panic!("missing braced body for {name}"),
        }
    };
    match kind.as_str() {
        "struct" => Shape::Struct(name, field_names(body)),
        "enum" => Shape::Enum(name, variants(body)),
        other => panic!("cannot derive for {other}"),
    }
}

/// Splits a brace-group stream on top-level commas.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field name = the identifier right before the first top-level `:`
/// (after attributes and visibility).
fn field_names(stream: TokenStream) -> Vec<String> {
    split_commas(stream)
        .into_iter()
        .map(|field| {
            let mut name = None;
            for (i, tt) in field.iter().enumerate() {
                if let TokenTree::Punct(p) = tt {
                    if p.as_char() == ':' {
                        if let Some(TokenTree::Ident(id)) = field.get(i.wrapping_sub(1)) {
                            name = Some(id.to_string());
                        }
                        break;
                    }
                }
            }
            name.expect("named field")
        })
        .collect()
}

fn variants(stream: TokenStream) -> Vec<Variant> {
    split_commas(stream)
        .into_iter()
        .map(|var| {
            let mut name = None;
            let mut payload = None;
            let mut iter = var.into_iter().peekable();
            while let Some(tt) = iter.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next();
                    }
                    TokenTree::Ident(id) => {
                        name = Some(id.to_string());
                        payload = iter.next();
                        break;
                    }
                    _ => {}
                }
            }
            let name = name.expect("variant name");
            match payload {
                None => Variant::Unit(name),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = field_names(g.stream());
                    Variant::Struct(name, fields)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = split_commas(g.stream()).len();
                    assert_eq!(n, 1, "only single-field tuple variants are supported");
                    Variant::Tuple(name)
                }
                other => panic!("unsupported variant payload {other:?}"),
            }
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, vars) => {
            let arms: String = vars
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    Variant::Tuple(v) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Variant::Struct(v, fields) => {
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));"
                                )
                            })
                            .collect();
                        let bind = fields.join(", ");
                        format!(
                            "{name}::{v} {{ {bind} }} => {{\n\
                                 let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\n\
                                 ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(__inner))])\n\
                             }},"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__v, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, vars) => {
            let unit_arms: String = vars
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                    )),
                    _ => None,
                })
                .collect();
            let tagged_arms: String = vars
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(v) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__payload)?)),"
                    )),
                    Variant::Struct(v, fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__field(__payload, \"{f}\")?,"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\"expected a {name} variant\".to_string())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
