//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string_pretty`], [`from_str`], an indexable [`Value`], and the
//! [`json!`] macro (single-expression form).

use std::fmt;
use std::ops::{Index, IndexMut};

pub use serde::Value as InnerValue;
use serde::{DeError, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// A JSON value with `v["key"]` / `v[idx]` indexing like serde_json's.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Value(pub InnerValue);

impl Value {
    /// The `null` value.
    pub const NULL: Value = Value(InnerValue::Null);
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self.0.get(key) {
            Some(inner) => Value::wrap_ref(inner),
            None => panic!("no key {key:?} in JSON object"),
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match &self.0 {
            InnerValue::Array(items) => Value::wrap_ref(&items[idx]),
            _ => panic!("not a JSON array"),
        }
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self.0.get_mut(key) {
            Some(inner) => Value::wrap_mut(inner),
            None => panic!("no key {key:?} in JSON object"),
        }
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match &mut self.0 {
            InnerValue::Array(items) => Value::wrap_mut(&mut items[idx]),
            _ => panic!("not a JSON array"),
        }
    }
}

impl Value {
    fn wrap_ref(inner: &InnerValue) -> &Value {
        // SAFETY: Value is #[repr(transparent)] over InnerValue.
        unsafe { &*(inner as *const InnerValue as *const Value) }
    }

    fn wrap_mut(inner: &mut InnerValue) -> &mut Value {
        // SAFETY: Value is #[repr(transparent)] over InnerValue.
        unsafe { &mut *(inner as *mut InnerValue as *mut Value) }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, &self.0, None, 0)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> InnerValue {
        self.0.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &InnerValue) -> Result<Self, DeError> {
        Ok(Value(v.clone()))
    }
}

/// Serializes a value into the JSON [`Value`] tree.
pub fn to_value<T: Serialize>(t: &T) -> Value {
    Value(t.to_value())
}

/// Builds a [`Value`] from any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::NULL
    };
    ($e:expr) => {
        $crate::to_value(&$e)
    };
}

/// Serializes `t` as pretty-printed JSON.
pub fn to_string_pretty<T: Serialize>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    use fmt::Write as _;
    struct Disp<'a>(&'a InnerValue);
    impl fmt::Display for Disp<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write_value(f, self.0, Some(2), 0)
        }
    }
    write!(out, "{}", Disp(&t.to_value())).map_err(|e| Error::new(e.to_string()))?;
    Ok(out)
}

/// Serializes `t` as compact JSON.
pub fn to_string<T: Serialize>(t: &T) -> Result<String, Error> {
    Ok(to_value(t).to_string())
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    f: &mut fmt::Formatter<'_>,
    v: &InnerValue,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    let colon = if indent.is_some() { ": " } else { ":" };
    match v {
        InnerValue::Null => f.write_str("null"),
        InnerValue::Bool(b) => write!(f, "{b}"),
        InnerValue::U64(n) => write!(f, "{n}"),
        InnerValue::I64(n) => write!(f, "{n}"),
        InnerValue::F64(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                write!(f, "{:.1}", x)
            } else {
                write!(f, "{x}")
            }
        }
        InnerValue::Str(s) => write_string(f, s),
        InnerValue::Array(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{nl}{pad_in}")?;
                write_value(f, item, indent, depth + 1)?;
            }
            write!(f, "{nl}{pad}]")
        }
        InnerValue::Object(entries) => {
            if entries.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{")?;
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{nl}{pad_in}")?;
                write_string(f, k)?;
                f.write_str(colon)?;
                write_value(f, item, indent, depth + 1)?;
            }
            write!(f, "{nl}{pad}}}")
        }
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_word(&mut self, w: &str) -> Result<(), Error> {
        if self.s[self.i..].starts_with(w.as_bytes()) {
            self.i += w.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected {w:?} at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<InnerValue, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_word("null")?;
                Ok(InnerValue::Null)
            }
            Some(b't') => {
                self.eat_word("true")?;
                Ok(InnerValue::Bool(true))
            }
            Some(b'f') => {
                self.eat_word("false")?;
                Ok(InnerValue::Bool(false))
            }
            Some(b'"') => Ok(InnerValue::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(InnerValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(InnerValue::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(InnerValue::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(InnerValue::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte {}", self.i))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume a maximal run of ordinary bytes in one
                    // go. Validating UTF-8 per chunk (not per code
                    // point over the whole remaining input) keeps
                    // parsing linear — multi-megabyte description
                    // files hit this path for every string character.
                    let start = self.i;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.i += 1;
                    }
                    let chunk = std::str::from_utf8(&self.s[start..self.i])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<InnerValue, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(InnerValue::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(InnerValue::I64(n));
            }
        }
        text.parse::<f64>()
            .map(InnerValue::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}
