//! Offline shim for the `libc` items this workspace uses: CPU-affinity
//! types and `sched_setaffinity`. Linux-only, matching glibc's ABI.

#![allow(non_camel_case_types)]

/// Process id.
pub type pid_t = i32;
/// Size type.
pub type size_t = usize;
/// C `int`.
pub type c_int = i32;

/// Number of CPUs representable in a `cpu_set_t` (glibc default).
pub const CPU_SETSIZE: c_int = 1024;

/// glibc's `cpu_set_t`: a 1024-bit CPU mask.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE as usize / 64],
}

/// Sets bit `cpu` in the mask (no-op when out of range, like glibc).
#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

/// Tests bit `cpu` in the mask.
#[allow(non_snake_case)]
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Binds thread/process `pid` (0 = caller) to the CPUs in `mask`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
    /// Reads the affinity mask of `pid` (0 = caller).
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, mask: *mut cpu_set_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_bit_math() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_SET(3, &mut set);
        CPU_SET(130, &mut set);
        assert!(CPU_ISSET(3, &set));
        assert!(CPU_ISSET(130, &set));
        assert!(!CPU_ISSET(4, &set));
        CPU_SET(5000, &mut set); // Out of range: ignored.
    }
}
