//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — more than
//! enough statistical quality for simulation noise and test inputs,
//! and fully deterministic for a given seed.

/// Types that can be sampled uniformly from their full domain
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that can be sampled (the `SampleRange` of the real crate).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The random-number-generator interface.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// A deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the algorithm behind the real crate's `SmallRng` on
/// 64-bit platforms.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;

    /// The "standard" generator; aliased to [`SmallRng`] in this shim.
    pub type StdRng = SmallRng;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: i64 = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&y));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
