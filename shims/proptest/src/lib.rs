//! Offline shim for the `proptest` subset this workspace uses:
//! strategies (`any`, ranges, tuples, `prop_map`, `prop::collection::vec`),
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-case seed and failures are *not* shrunk — the
//! failing case index and seed are reported instead, so a failure is
//! still reproducible by rerunning the test.

use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed assertion inside a proptest case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The generator handed to strategies (deterministic per case).
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    /// The generator for case number `case`.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            inner: rand::rngs::SmallRng::seed_from_u64(
                0x5DEE_CE66_D0C3_3265u64.wrapping_mul(case.wrapping_add(1)),
            ),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Full-domain strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, uniformly in [-1e9, 1e9): plenty for test inputs.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (u - 0.5) * 2e9
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A strategy for `Vec`s of `element` values with a length drawn
    /// from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests; see the crate docs for the differences from
/// the real macro (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(u64::from(case));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}
