//! Offline shim for the `crossbeam_deque` subset this workspace uses:
//! FIFO [`Worker`] queues with cloneable [`Stealer`] handles.
//!
//! The real crate is lock-free; this shim uses a mutex-protected
//! `VecDeque`, which preserves the semantics (FIFO hand-out, racing
//! stealers, `Steal::{Success, Empty}` outcomes) at the cost of raw
//! throughput — fine for correctness-level work-stealing experiments.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The operation lost a race and may be retried.
    Retry,
}

/// A worker-owned FIFO queue.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// A new FIFO queue.
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the queue.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
    }

    /// Pops a task in FIFO order.
    pub fn pop(&self) -> Option<T> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// A stealer handle onto this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A cloneable handle that steals from another worker's queue.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }
}

/// A shared FIFO injector queue: the global entry point of an executor,
/// pushed by any thread and drained by the workers (the `Injector` of
/// the real crate).
pub struct Injector<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// A new empty injector.
    pub fn new() -> Self {
        Injector {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task; any thread may call this.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
    }

    /// Attempts to steal the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks, moving them into `dest`, and returns
    /// the first one: the thief takes the oldest task plus up to half
    /// of what remains, so later pops hit its own deque.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut src = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match src.pop_front() {
            None => Steal::Empty,
            Some(first) => {
                let extra = src.len() / 2;
                if extra > 0 {
                    let mut dst = dest.inner.lock().unwrap_or_else(|e| e.into_inner());
                    for _ in 0..extra {
                        dst.push_back(src.pop_front().expect("len checked"));
                    }
                }
                Steal::Success(first)
            }
        }
    }

    /// Whether the injector is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_steal() {
        let w: Worker<u32> = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn stealers_share_across_threads() {
        let w: Worker<usize> = Worker::new_fifo();
        for i in 0..100 {
            w.push(i);
        }
        let stolen: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move || {
                        let mut n = 0;
                        while let Steal::Success(_) = s.steal() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(stolen, 100);
    }

    #[test]
    fn injector_batch_hand_off() {
        let inj: Injector<u32> = Injector::new();
        let w: Worker<u32> = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Empty);
        for i in 0..9 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 9);
        // Thief gets the oldest plus half the rest into its deque.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(inj.len(), 4);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(4));
        assert_eq!(w.pop(), None);
        assert_eq!(inj.steal(), Steal::Success(5));
        assert!(!inj.is_empty());
    }
}
