//! Offline shim for `parking_lot`: thin wrappers over `std::sync` locks
//! with parking_lot's panic-free (poison-ignoring) guard-returning API.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
