//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build container has no registry access, so instead of the real
//! serde this crate provides a tiny value-tree data model plus
//! `Serialize`/`Deserialize` traits, and re-exports the derive macros
//! from the sibling `serde_derive` shim. `shims/serde_json` supplies the
//! JSON text layer over [`Value`].
//!
//! The derive emits the externally-tagged enum representation the real
//! serde would, so description files stay human-readable and stable.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/serializable value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable lookup of a key of an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-internal helper: extracts and deserializes an object field.
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Object(_) => match v.get(name) {
            Some(f) => T::from_value(f).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
            None => Err(DeError::new(format!("missing field `{name}`"))),
        },
        _ => Err(DeError::new(format!(
            "expected an object with field `{name}`"
        ))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
