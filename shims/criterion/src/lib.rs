//! Offline shim for the `criterion` subset this workspace uses.
//!
//! Same bench-authoring API (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `iter`/`iter_batched`), much simpler engine: each
//! benchmark is warmed up once, then timed for `sample_size` samples
//! within the configured measurement time, and the per-iteration
//! minimum / median / maximum are printed. No HTML reports, no
//! statistics beyond that — enough to track relative speedups in CI
//! logs without a registry dependency.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not used: the
/// shim always re-runs setup per iteration, outside the timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // Warm-up.
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup runs outside
    /// the timed region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // Warm-up.
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            times: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), &b.times);
        let _ = &self.criterion;
        self
    }

    /// Ends the group (reports are printed as benches run).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs a standalone benchmark with default settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            budget: Duration::from_secs(3),
            times: Vec::new(),
        };
        f(&mut b);
        report(&id.into(), &b.times);
        self
    }
}

fn report(id: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let fmt = |d: Duration| -> String {
        let ns = d.as_nanos();
        if ns < 1_000 {
            format!("{ns} ns")
        } else if ns < 1_000_000 {
            format!("{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.2} s", ns as f64 / 1e9)
        }
    };
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples)",
        fmt(sorted[0]),
        fmt(sorted[sorted.len() / 2]),
        fmt(*sorted.last().unwrap()),
        sorted.len()
    );
}

/// Declares a group-runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
