#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Walks the given files/directories (default: README.md, DESIGN.md,
ROADMAP.md, docs/, crates/*/README.md), extracts inline markdown links
and checks that every *relative* link target exists on disk, so the
cross-linked documentation cannot rot silently. External links
(http/https/mailto) are intentionally not fetched — CI runs offline.

Exit code 0 when every link resolves, 1 otherwise.
"""

import glob
import os
import re
import sys

# Inline links: [text](target). Reference-style links are not used in
# this repository. The target match stops at the first ')' or space
# (titles are not used either).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DEFAULT_TARGETS = [
    "README.md",
    "DESIGN.md",
    "ROADMAP.md",
    "docs",
    *sorted(glob.glob("crates/*/README.md")),
]


def markdown_files(targets):
    for target in targets:
        if os.path.isdir(target):
            for root, _dirs, files in os.walk(target):
                for name in sorted(files):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        elif target.endswith(".md") and os.path.isfile(target):
            yield target


def check_file(path):
    errors = []
    text = open(path, encoding="utf-8").read()
    # Drop fenced code blocks: shell transcripts legitimately contain
    # bracketed text that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]  # strip fragment
        if not target:  # pure in-page anchor
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link `{match.group(1)}` -> {resolved}")
    return errors


def main():
    targets = sys.argv[1:] or DEFAULT_TARGETS
    files = list(markdown_files(targets))
    if not files:
        print("check_markdown_links: no markdown files found", file=sys.stderr)
        return 1
    errors = []
    for path in files:
        errors.extend(check_file(path))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} markdown files: {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
