#!/usr/bin/env python3
"""Schema check for `mct query <desc> metrics` output.

Reads a MetricsSnapshot JSON document (path argument, or stdin when no
argument is given) and asserts it matches the schema documented in
docs/OBSERVABILITY.md: the three counter groups with exactly the
documented fields, non-negative integer values, a steal-distance
histogram that sums to `steals_total`, and an integer
`stripes_per_node` list. CI pipes the CLI smoke output through this so
the handbook and the binary cannot drift apart silently.

Exit code 0 when the document conforms, 1 otherwise.
"""

import json
import sys

EXECUTOR_FIELDS = [
    "arms",
    "rearms",
    "scopes",
    "tasks",
    "panics",
    "targeted_pushes",
    "stealable_pushes",
    "mailbox_hits",
    "local_deque_hits",
    "injector_hits",
    "remote_injector_hits",
    "steals_same_socket",
    "steals_one_hop",
    "steals_multi_hop",
    "steals_unclassified",
    "steals_total",
    "parks",
    "unparks",
]

PROBER_FIELDS = [
    "runs",
    "pairs",
    "probes",
    "pilot_probes",
    "refined_pairs",
    "retries",
]

ALLOC_FIELDS = [
    "plans_resolved",
    "arenas_planned",
    "pages_planned",
    "stripes_per_node",
]

STEAL_BUCKETS = [
    "steals_same_socket",
    "steals_one_hop",
    "steals_multi_hop",
    "steals_unclassified",
]


def is_counter(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def check_group(snapshot, group, fields, errors):
    obj = snapshot.get(group)
    if not isinstance(obj, dict):
        errors.append(f"missing or non-object group `{group}`")
        return None
    if sorted(obj) != sorted(fields):
        extra = sorted(set(obj) - set(fields))
        missing = sorted(set(fields) - set(obj))
        errors.append(
            f"`{group}` fields disagree with docs/OBSERVABILITY.md: "
            f"missing {missing}, undocumented {extra}"
        )
    for name in fields:
        if name not in obj:
            continue
        value = obj[name]
        if name == "stripes_per_node":
            if not isinstance(value, list) or not all(is_counter(v) for v in value):
                errors.append(f"`{group}.{name}` is not a list of counters: {value!r}")
        elif not is_counter(value):
            errors.append(f"`{group}.{name}` is not a non-negative integer: {value!r}")
    return obj


def main():
    if len(sys.argv) > 2:
        print("usage: check_metrics_schema.py [snapshot.json]", file=sys.stderr)
        return 1
    source = open(sys.argv[1], encoding="utf-8") if len(sys.argv) == 2 else sys.stdin
    try:
        snapshot = json.load(source)
    except json.JSONDecodeError as err:
        print(f"check_metrics_schema: not valid JSON: {err}", file=sys.stderr)
        return 1

    errors = []
    if not isinstance(snapshot, dict) or sorted(snapshot) != [
        "alloc",
        "executor",
        "prober",
    ]:
        errors.append("top level must be exactly {executor, prober, alloc}")
    executor = check_group(snapshot, "executor", EXECUTOR_FIELDS, errors)
    check_group(snapshot, "prober", PROBER_FIELDS, errors)
    check_group(snapshot, "alloc", ALLOC_FIELDS, errors)

    if executor and all(name in executor for name in STEAL_BUCKETS + ["steals_total"]):
        bucket_sum = sum(executor[name] for name in STEAL_BUCKETS)
        if bucket_sum != executor["steals_total"]:
            errors.append(
                "steal-distance histogram does not sum to steals_total: "
                f"{bucket_sum} != {executor['steals_total']}"
            )

    for err in errors:
        print(f"check_metrics_schema: {err}", file=sys.stderr)
    print(f"checked metrics snapshot: {len(errors)} schema error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
