#!/usr/bin/env python3
"""Schema check for the `scale_inference` bench artifact.

Reads a BENCH_scale.json document (path argument, or stdin when no
argument is given) and asserts it matches the shape documented in
docs/BENCHMARKS.md: the NoC ladder rows with pair counts, inference
wall times, and a dense/sparse view row each, plus the scaling
invariants the bench gates on (pruned plan within the exhaustive
triangle, the big mesh at or below a quarter of it). CI pipes the bench
output through this so the artifact schema cannot drift silently.

Exit code 0 when the document conforms, 1 otherwise.
"""

import json
import sys

MACHINE_INTS = ["sockets", "contexts", "pairs_exhaustive", "pairs_probed"]
MACHINE_FLOATS = ["probed_frac", "infer_pruned_ms", "infer_exhaustive_ms"]
VIEW_INTS = [
    "resident_bytes_fresh",
    "resident_bytes_touched",
    "query_p50_ns",
    "query_p99_ns",
]


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_view(row, label, errors):
    if not isinstance(row, dict):
        errors.append(f"`{label}` is not an object")
        return
    if not is_number(row.get("build_ms")) or row.get("build_ms", -1) < 0:
        errors.append(f"`{label}.build_ms` is not a non-negative number")
    for name in VIEW_INTS:
        if not is_count(row.get(name)):
            errors.append(f"`{label}.{name}` is not a counter: {row.get(name)!r}")
    if is_count(row.get("query_p50_ns")) and is_count(row.get("query_p99_ns")):
        if row["query_p99_ns"] < row["query_p50_ns"]:
            errors.append(f"`{label}`: p99 below p50")


def main():
    if len(sys.argv) > 2:
        print("usage: check_scale_schema.py [BENCH_scale.json]", file=sys.stderr)
        return 1
    source = open(sys.argv[1], encoding="utf-8") if len(sys.argv) == 2 else sys.stdin
    try:
        report = json.load(source)
    except json.JSONDecodeError as err:
        print(f"check_scale_schema: not valid JSON: {err}", file=sys.stderr)
        return 1

    errors = []
    if not isinstance(report, dict) or sorted(report) != [
        "bench",
        "machines",
        "queries_per_view",
    ]:
        errors.append("top level must be exactly {bench, queries_per_view, machines}")
        report = {}
    if report.get("bench") != "scale":
        errors.append(f"`bench` must be \"scale\": {report.get('bench')!r}")
    if not is_count(report.get("queries_per_view")) or not report.get("queries_per_view"):
        errors.append("`queries_per_view` is not a positive integer")

    machines = report.get("machines")
    if not isinstance(machines, list) or not machines:
        errors.append("`machines` is not a non-empty list")
        machines = []
    seen = set()
    for i, row in enumerate(machines):
        label = f"machines[{i}]"
        if not isinstance(row, dict):
            errors.append(f"`{label}` is not an object")
            continue
        preset = row.get("preset")
        if not isinstance(preset, str) or not preset:
            errors.append(f"`{label}.preset` is not a name")
        else:
            label = preset
            if preset in seen:
                errors.append(f"duplicate machine `{preset}`")
            seen.add(preset)
        for name in MACHINE_INTS:
            if not is_count(row.get(name)):
                errors.append(f"`{label}.{name}` is not a counter: {row.get(name)!r}")
        for name in MACHINE_FLOATS:
            if not is_number(row.get(name)) or row.get(name, -1) < 0:
                errors.append(f"`{label}.{name}` is not a non-negative number")
        check_view(row.get("dense"), f"{label}.dense", errors)
        check_view(row.get("sparse"), f"{label}.sparse", errors)
        if all(is_count(row.get(n)) for n in MACHINE_INTS):
            if row["pairs_probed"] > row["pairs_exhaustive"]:
                errors.append(f"`{label}`: probed more pairs than exist")
            n = row["contexts"]
            if row["pairs_exhaustive"] != n * (n - 1) // 2:
                errors.append(f"`{label}`: pairs_exhaustive is not the triangle of {n}")
    # The headline scaling invariant the bench gates on must be visible
    # in the artifact too.
    big = next((m for m in machines if isinstance(m, dict) and m.get("preset") == "synth-mesh-256"), None)
    if big is None:
        errors.append("missing the synth-mesh-256 ladder rung")
    elif is_number(big.get("probed_frac")) and big["probed_frac"] > 0.25:
        errors.append(f"synth-mesh-256 probed_frac {big['probed_frac']} above the 25% budget")

    for err in errors:
        print(f"check_scale_schema: {err}", file=sys.stderr)
    print(f"checked scale bench report: {len(errors)} schema error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
