//! Quickstart: infer a topology, query it, persist it, reload it.
//!
//! Run with `cargo run --example quickstart`.

use mctop::alg::validate;
use mctop::backend::SimProber;
use mctop::enrich::{
    enrich_all,
    SimEnricher, //
};
use mctop::ProbeConfig;

fn main() {
    // 1. Pick a machine. On real hardware this would be the host (see
    //    the `host_inference` example); here we use the paper's Ivy
    //    Bridge model.
    let spec = mcsim::presets::ivy();

    // 2. Run MCTOP-ALG: latency probes -> clusters -> components ->
    //    topology.
    let mut prober = SimProber::new(&spec, 42);
    let mut topo = mctop::infer(&mut prober, &ProbeConfig::fast()).expect("inference");
    println!("{}", topo.summary());

    // 3. Enrich with the Section-4 plugins (memory, cache, power).
    let mut mem = SimEnricher::new(&spec);
    let mut pow = SimEnricher::new(&spec);
    enrich_all(&mut topo, &mut mem, &mut pow).expect("enrichment");

    // 4. Query the topology (the portable vocabulary of Section 5).
    println!(
        "latency(0, 20)        = {} cycles (SMT siblings)",
        topo.get_latency(0, 20)
    );
    println!(
        "latency(0, 10)        = {} cycles (cross-socket)",
        topo.get_latency(0, 10)
    );
    println!("local node of ctx 3   = {:?}", topo.get_local_node(3));
    println!("closest to socket 0   = {:?}", topo.closest_sockets(0));
    println!("max-bandwidth socket  = {}", topo.max_bandwidth_socket());
    println!("backoff quantum (all) = {} cycles", topo.max_latency());

    // 5. Validate and compare against the OS view (Section 3.6).
    validate::validate(&topo).expect("structural validation");
    let os = validate::OsTopology::from_spec(&spec);
    let divergences = validate::compare_with_os(&topo, &os);
    println!("divergences vs OS     = {divergences:?}");

    // 6. Persist the description file — with its provenance header, so
    //    anyone loading it later can see how it was produced (Section 2).
    let prov = mctop::desc::Provenance::new(&topo.name, &ProbeConfig::fast(), Some(42), true)
        .with_generator("quickstart example");
    let dir = std::env::temp_dir();
    let path = dir.join(mctop::desc::default_filename(&topo.name));
    mctop::desc::save(&topo, &prov, &path).expect("save");
    println!("description file      = {}", path.display());

    // 7. "Load everywhere": a Registry resolves descriptions by machine
    //    name and memoizes one shared TopoView per topology, so every
    //    later consumer skips both inference and index construction.
    let registry = mctop::Registry::with_dir(&dir);
    let view = registry.view(&topo.name).expect("registry load");
    assert_eq!(**view.topo(), topo);
    let again = registry.view(&topo.name).expect("cached");
    assert!(std::sync::Arc::ptr_eq(&view, &again));
    println!("registry              = same Arc<TopoView> on repeat lookup");
}
