//! All twelve MCTOP-PLACE policies on the paper's Ivy machine,
//! including the exact Fig. 7 configuration (CON_HWC, 30 threads).
//!
//! Run with `cargo run --example placement_demo`.

use mctop::Registry;
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

fn main() {
    // Ivy's topology comes from the shipped description library — no
    // inference here. One registry-cached view serves all twelve
    // placements.
    let view = Registry::shipped()
        .view("ivy")
        .expect("shipped description");

    // The Fig. 7 printout.
    let fig7 = Placement::with_view(&view, Policy::ConHwc, PlaceOpts::threads(30)).expect("place");
    println!("{}", fig7.print());

    // Every policy with 12 threads: how the first contexts differ.
    println!("First 12 contexts handed out by each policy:");
    for policy in Policy::ALL {
        match Placement::with_view(&view, policy, PlaceOpts::threads(12)) {
            Ok(p) => {
                let ids: Vec<String> = p.order().iter().map(|h| h.to_string()).collect();
                println!("  {:<17} {}", policy.name(), ids.join(" "));
            }
            Err(e) => println!("  {:<17} unavailable: {e}", policy.name()),
        }
    }

    // Pin/unpin cycle: what a pinned thread learns about itself.
    let pin = fig7.pin().expect("slot available");
    println!(
        "\npinned: hwc {} on socket {} (core {}, local node {:?})",
        pin.hwc, pin.socket, pin.core, pin.local_node
    );
    fig7.unpin(pin);
}
