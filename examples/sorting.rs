//! Topology-aware mergesort (Section 7.2): real sort on the host plus
//! the Fig. 9 prediction for every paper platform.
//!
//! Run with `cargo run --release --example sorting`.

use std::time::Instant;

use mctop::Registry;
use rand::rngs::SmallRng;
use rand::{
    Rng,
    SeedableRng, //
};

fn main() {
    // --- Real sort on the host ------------------------------------------
    // Topologies come from the shipped description library: inferred
    // once by `mct regen-descs`, loaded (and indexed) here in
    // microseconds. One shared view serves every sort below.
    let registry = Registry::shipped();
    let view = registry.view("synth-small").expect("shipped description");

    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2);
    let mut rng = SmallRng::seed_from_u64(1);
    let data: Vec<u32> = (0..4 << 20).map(|_| rng.gen()).collect();
    println!(
        "sorting {} integers with {} threads on the host:",
        data.len(),
        threads
    );

    let mut a = data.clone();
    let t = Instant::now();
    mctop_sort::baseline_sort(&mut a, threads);
    println!("  gnu-like baseline : {:?}", t.elapsed());

    let mut b = data.clone();
    let t = Instant::now();
    mctop_sort::mctop_sort_with_view(&mut b, &view, threads, 0);
    println!("  mctop_sort        : {:?}", t.elapsed());

    let mut c = data;
    let t = Instant::now();
    mctop_sort::mctop_sort_sse_with_view(&mut c, &view, threads, 0);
    println!("  mctop_sort_sse    : {:?}", t.elapsed());
    assert_eq!(a, b);
    assert_eq!(b, c);

    // --- Fig. 9 prediction over the paper platforms ----------------------
    use mctop_sort::model::{
        fig9_column,
        SortModelCfg, //
    };
    println!("\nFig. 9 model (1 GB of integers, 16 threads):");
    let cfg = SortModelCfg::default();
    for spec in mcsim::presets::all_paper_platforms() {
        let t = registry.topo(&spec.name).expect("shipped description");
        let col = fig9_column(&spec, &t, 16, &cfg);
        let cells: Vec<String> = col
            .iter()
            .map(|(a, tt)| format!("{} {:.2}s", a.name(), tt.total()))
            .collect();
        println!("  {:<9} {}", spec.name, cells.join("  "));
    }
}
