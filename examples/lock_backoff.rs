//! Educated backoffs for spinlocks (Section 7.1): real measurement on
//! the host plus the coherence-model reproduction of Fig. 8 on the
//! paper's Ivy machine.
//!
//! Run with `cargo run --release --example lock_backoff`.

use std::time::Duration;

use mctop_locks::backoff::BackoffCfg;
use mctop_locks::harness::{
    run,
    HarnessCfg, //
};
use mctop_locks::sim::{
    default_thread_counts,
    fig8_series,
    SimParams, //
};
use mctop_locks::LockAlgo;

fn main() {
    // --- Real execution on this machine --------------------------------
    // Contenders run on a placement-pinned pool over the shipped ivy
    // description (SEQUENTIAL: slot i -> context i, which maps onto the
    // host CPUs where they exist), not on bare unpinned threads.
    let view = mctop::Registry::shipped()
        .view("ivy")
        .expect("shipped description");
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(view.num_hwcs());
    let place = std::sync::Arc::new(
        mctop_place::Placement::with_view(
            &view,
            mctop_place::Policy::Sequential,
            mctop_place::PlaceOpts::threads(threads),
        )
        .expect("SEQUENTIAL placement"),
    );
    let pool = mctop_runtime::WorkerPool::new(place);
    let cfg = HarnessCfg {
        cs_work: 1000,
        noncs_work: 600,
        duration: Duration::from_millis(300),
    };
    println!("host: {threads} placement-pinned threads, 1000-cycle critical sections");
    for algo in LockAlgo::ALL {
        let base = run(&pool, algo, BackoffCfg::none(), &cfg);
        let educated = run(
            &pool,
            algo,
            BackoffCfg {
                quantum_cycles: 300,
            },
            &cfg,
        );
        println!(
            "  {:<7} pause {:>10.0} ops/s   educated {:>10.0} ops/s   ({:.2}x)",
            algo.name(),
            base.ops_per_sec,
            educated.ops_per_sec,
            educated.ops_per_sec / base.ops_per_sec
        );
    }

    // --- Fig. 8 on the simulated Ivy ------------------------------------
    let spec = mcsim::presets::ivy();
    let params = SimParams::default();
    println!(
        "\nsimulated {} (Fig. 8 series, relative throughput):",
        spec.name
    );
    for algo in LockAlgo::ALL {
        let series = fig8_series(&spec, algo, &default_thread_counts(&spec), &params);
        let pts: Vec<String> = series
            .iter()
            .map(|p| format!("{}t:{:.2}", p.threads, p.relative))
            .collect();
        println!("  {:<7} {}", algo.name(), pts.join("  "));
    }
}
