//! Educated backoffs for spinlocks (Section 7.1): real measurement on
//! the host plus the coherence-model reproduction of Fig. 8 on the
//! paper's Ivy machine.
//!
//! Run with `cargo run --release --example lock_backoff`.

use std::time::Duration;

use mctop_locks::backoff::BackoffCfg;
use mctop_locks::harness::{
    run,
    HarnessCfg, //
};
use mctop_locks::sim::{
    default_thread_counts,
    fig8_series,
    SimParams, //
};
use mctop_locks::LockAlgo;

fn main() {
    // --- Real execution on this machine --------------------------------
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2);
    let cfg = HarnessCfg {
        threads,
        cs_work: 1000,
        noncs_work: 600,
        duration: Duration::from_millis(300),
    };
    println!("host: {threads} threads, 1000-cycle critical sections");
    for algo in LockAlgo::ALL {
        let base = run(algo, BackoffCfg::none(), &cfg);
        let educated = run(
            algo,
            BackoffCfg {
                quantum_cycles: 300,
            },
            &cfg,
        );
        println!(
            "  {:<7} pause {:>10.0} ops/s   educated {:>10.0} ops/s   ({:.2}x)",
            algo.name(),
            base.ops_per_sec,
            educated.ops_per_sec,
            educated.ops_per_sec / base.ops_per_sec
        );
    }

    // --- Fig. 8 on the simulated Ivy ------------------------------------
    let spec = mcsim::presets::ivy();
    let params = SimParams::default();
    println!(
        "\nsimulated {} (Fig. 8 series, relative throughput):",
        spec.name
    );
    for algo in LockAlgo::ALL {
        let series = fig8_series(&spec, algo, &default_thread_counts(&spec), &params);
        let pts: Vec<String> = series
            .iter()
            .map(|p| format!("{}t:{:.2}", p.threads, p.relative))
            .collect();
        println!("  {:<7} {}", algo.name(), pts.join("  "));
    }
}
