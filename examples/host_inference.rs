//! Runs the *real* measurement backend on the machine executing this
//! example: two pinned threads, lock-step CAS ping-pong, wall-clock
//! timing (Linux only).
//!
//! Run with `cargo run --release --example host_inference`. On a
//! multi-socket machine this prints the genuine latency structure; on a
//! laptop or container it shows a single flat level — which is itself
//! the correct answer.

fn main() {
    #[cfg(target_os = "linux")]
    {
        use mctop::alg::probe::{
            collect,
            ProbeConfig, //
            Prober,
        };
        use mctop::host::HostProber;

        let mut prober = HostProber::new().expect("host discovery");
        let n = prober.num_hwcs();
        println!(
            "host: {} hardware contexts, {} NUMA node(s)",
            n,
            prober.num_nodes()
        );
        if n < 2 {
            println!("single context: nothing to measure");
            return;
        }
        // Keep it quick: a handful of samples per pair.
        let cfg = ProbeConfig {
            reps: 31,
            stdev_frac: 0.5,
            stdev_frac_max: 2.0,
            warmup: false,
            ..ProbeConfig::default()
        };
        match collect(&mut prober, &cfg) {
            Ok((table, stats)) => {
                println!("latency table (ns):");
                for a in 0..n.min(8) {
                    let row: Vec<String> = (0..n.min(8))
                        .map(|b| format!("{:>6}", table.get(a, b)))
                        .collect();
                    println!("  {}", row.join(" "));
                }
                println!("({} raw probes issued)", stats.probes);
                // Try the full inference; noisy cloud machines may
                // legitimately fail clustering — that is the Section 3.6
                // error path.
                match mctop::alg::cluster::cluster(&table.upper_triangle(), &Default::default()) {
                    Ok(clusters) => {
                        println!("latency clusters:");
                        for c in clusters {
                            println!(
                                "  min {:>5}  median {:>5}  max {:>5}",
                                c.min, c.median, c.max
                            );
                        }
                    }
                    Err(e) => println!("clustering failed (expected on noisy hosts): {e}"),
                }
            }
            Err(e) => println!("collection failed (noisy host): {e}"),
        }
    }
    #[cfg(not(target_os = "linux"))]
    println!("the host backend requires Linux (sched_setaffinity)");
}
