//! MapReduce Word Count under different placement policies
//! (Section 7.3), run for real on the host.
//!
//! Run with `cargo run --release --example mapreduce_wordcount`.

use std::time::Instant;

use mctop::Registry;
use mctop_mapred::engine::{
    run_job,
    EngineCfg, //
};
use mctop_mapred::workloads::{
    gen_text,
    WordCount, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

fn main() {
    // Load the topology from the shipped description library instead of
    // re-running inference (Section 2: infer once, load everywhere).
    let topo = Registry::shipped()
        .topo("synth-small")
        .expect("shipped description");

    let text = gen_text(20_000, 50, 20_000, 7);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(topo.num_hwcs());
    println!("word count: {} lines, {threads} workers", text.len());

    for policy in [
        Policy::Sequential,
        Policy::ConCoreHwc,
        Policy::RrCore,
        Policy::BalanceHwc,
    ] {
        let place = Placement::new(&topo, policy, PlaceOpts::threads(threads)).expect("place");
        let t = Instant::now();
        let out = run_job(&WordCount, &text, &place, &EngineCfg::default());
        println!(
            "  {:<13} {:>8.1} ms  ({} distinct words, top count {})",
            policy.name(),
            t.elapsed().as_secs_f64() * 1e3,
            out.len(),
            out.iter().map(|(_, c)| *c).max().unwrap_or(0)
        );
    }
}
