//! The extended-OpenMP runtime (Section 7.4): per-region binding
//! policies and automatic policy selection on graph kernels, run for
//! real on the host.
//!
//! Run with `cargo run --release --example openmp_graph`.

use std::time::Instant;

use mctop::Registry;
use mctop_omp::autoselect::auto_select;
use mctop_omp::graph::Graph;
use mctop_omp::workloads::{
    combination,
    hop_distance,
    pagerank, //
};
use mctop_omp::OmpRuntime;
use mctop_place::Policy;

fn main() {
    // The runtime loads its topology from the shipped description
    // library; inference ran once, at `mct regen-descs` time.
    let topo = Registry::shipped()
        .topo("synth-small")
        .expect("shipped description");
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .min(8);
    let rt = OmpRuntime::new(topo, threads);

    let g = Graph::synthetic(50_000, 8, 3);
    println!(
        "graph: {} nodes, {} edges, {threads} threads",
        g.num_nodes(),
        g.num_edges()
    );

    // Automatic policy selection on a sample (proof of concept).
    let (best, timings) = auto_select(&rt, |rt| {
        let _ = pagerank(rt, &g, 1);
    });
    println!("auto-selected policy: {}", best.name());
    for (p, t) in timings {
        println!("  probe {:<17} {:.1} ms", p.name(), t * 1e3);
    }

    // PageRank under the selected policy.
    let t = Instant::now();
    let ranks = pagerank(&rt, &g, 5);
    println!(
        "pagerank x5       : {:?} (max rank {:.2e})",
        t.elapsed(),
        ranks.iter().cloned().fold(0.0f64, f64::max)
    );

    // Hop distance from node 0.
    let t = Instant::now();
    let dist = hop_distance(&rt, &g, 0);
    let reachable = dist.iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "hop distance      : {:?} ({} reachable)",
        t.elapsed(),
        reachable
    );

    // The Combination application: two kernels, two policies, one run.
    let t = Instant::now();
    let (_, friends) = combination(&rt, &g, Policy::BalanceCore, Policy::ConCoreHwc);
    println!(
        "combination       : {:?} ({} common-neighbor pairs)",
        t.elapsed(),
        friends
    );
}
