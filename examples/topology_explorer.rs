//! Explore the MCTOP of any modelled platform: textual rendering plus
//! the two Graphviz graphs of Figs. 1-3.
//!
//! Run with `cargo run --example topology_explorer -- [machine]` where
//! machine is one of: ivy, opteron, haswell, westmere, sparc,
//! synth-small, synth-clustered, synth-single, synth-nosmt,
//! synth-shared-node, synth-scrambled. Default: opteron (Fig. 1).

use mctop::backend::SimProber;
use mctop::enrich::{
    enrich_all,
    SimEnricher, //
};
use mctop::ProbeConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "opteron".into());
    let Some(spec) = mcsim::presets::by_name(&name) else {
        eprintln!("unknown machine '{name}'");
        std::process::exit(1);
    };

    let mut prober = SimProber::new(&spec, 1);
    let mut topo = mctop::infer(&mut prober, &ProbeConfig::fast()).expect("inference");
    let mut mem = SimEnricher::new(&spec);
    let mut pow = SimEnricher::new(&spec);
    enrich_all(&mut topo, &mut mem, &mut pow).expect("enrichment");

    println!("{}", mctop::fmt::text::render(&topo));
    println!("--- intra-socket graph (socket 0) ---");
    println!("{}", mctop::fmt::dot::intra_socket(&topo, 0));
    if topo.num_sockets() > 1 {
        println!("--- cross-socket graph ---");
        println!("{}", mctop::fmt::dot::cross_socket(&topo));
    }
}
