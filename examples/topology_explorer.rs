//! Explore the MCTOP of any modelled platform: textual rendering plus
//! the two Graphviz graphs of Figs. 1-3.
//!
//! Run with `cargo run --example topology_explorer -- [machine]` where
//! machine is one of: ivy, opteron, haswell, westmere, sparc,
//! synth-small, synth-clustered, synth-single, synth-nosmt,
//! synth-shared-node, synth-scrambled. Default: opteron (Fig. 1).
//!
//! Topologies are loaded from the shipped description library (the
//! committed `descs/` files) through the registry — no inference runs
//! here, exactly as the paper intends for topology consumers.

use mctop::registry;
use mctop::Registry;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "opteron".into());
    let registry = Registry::shipped();
    let view = match registry.view(&name) {
        Ok(view) => view,
        Err(e) => {
            eprintln!("cannot load '{name}': {e}");
            eprintln!("known machines: {}", registry::shipped_names().join(", "));
            std::process::exit(1);
        }
    };
    let topo = view.topo();

    println!("{}", mctop::fmt::text::render(topo));
    println!("--- intra-socket graph (socket 0) ---");
    println!("{}", mctop::fmt::dot::intra_socket(topo, 0));
    if topo.num_sockets() > 1 {
        println!("--- cross-socket graph ---");
        println!("{}", mctop::fmt::dot::cross_socket(topo));
    }
}
