//! Lock-free runtime observability: relaxed-ordering counter buckets
//! for the executor, the prober, and the placement/alloc layer.
//!
//! The paper's premise is that topology-aware placement wins are
//! *measurable*; this module is what makes them measurable in
//! production rather than only in one-off benches. Every counter is a
//! plain [`AtomicU64`] written with [`Ordering::Relaxed`] — a single
//! uncontended `lock xadd` on the hot path, no locks, no allocation —
//! and compiled out entirely when the crate's `metrics` feature is
//! disabled (the recording helpers become empty `#[inline(always)]`
//! functions, so call sites cost nothing).
//!
//! # Handles
//!
//! [`Metrics`] is the bucket set. A process-global instance
//! ([`global`]) is what default-constructed executors and the
//! `mctop-alloc` plan resolver record into — one `snapshot()` of it is
//! the whole process's runtime story (the view a future `mctopd`
//! daemon will serve). Tests and benches that need isolation build
//! their own handle ([`Metrics::handle`]) and arm executors with
//! [`crate::Executor::with_metrics`].
//!
//! # Reading counters
//!
//! [`Metrics::snapshot`] loads every counter with relaxed ordering.
//! Because writers are relaxed too, a snapshot taken while workers are
//! running is a *consistent-enough* view for monitoring — each counter
//! is exact, but cross-counter invariants (e.g. "dispatch-source hits
//! sum to tasks") only hold once the executor is quiescent (all scopes
//! returned). Snapshots are plain serde-serializable data:
//! [`MetricsSnapshot::delta`] subtracts an earlier snapshot to get a
//! per-window view, and [`Metrics::reset`] zeroes the buckets (racy
//! against concurrent writers by design — reset while quiescent, as
//! `mct query metrics` does).
//!
//! ```
//! use mctop_runtime::metrics::{Metrics, MetricsSnapshot};
//!
//! let m = Metrics::handle();
//! let before = m.snapshot();
//! m.record_alloc_plan(2, &[16, 16]); // a 2-arena plan striped 16+16 pages
//! let after = m.snapshot();
//! let window = after.delta(&before);
//! // With the `metrics` feature off the recorders are no-ops, so the
//! // assertions only make sense when it is on (the default).
//! #[cfg(feature = "metrics")]
//! {
//!     assert_eq!(window.alloc.plans_resolved, 1);
//!     assert_eq!(window.alloc.pages_planned, 32);
//! }
//! m.reset();
//! assert_eq!(m.snapshot(), MetricsSnapshot::default());
//! ```
//!
//! The counter-by-counter semantics (what increments each bucket,
//! which thread owns it, and the relaxed-ordering caveats for
//! cross-thread reads) are documented in `docs/OBSERVABILITY.md`.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::sync::OnceLock;

// The counters come from the facade's `counter` module, which is a
// plain `std` `AtomicU64` in *both* personalities: metrics are
// observational (relaxed, never read back for control flow), so the
// model checker deliberately does not track them — tracking would
// multiply the explored state space per recorded event without ever
// finding a protocol bug. Model tests should record into a private
// `Metrics::handle()`; the process-global handle above stays a `std`
// `OnceLock` for the same reason.
use crate::sync::counter::AtomicU64;

use mctop::alg::probe::ProbeStats;
use serde::{
    Deserialize,
    Serialize, //
};

/// Per-node bucket capacity for the alloc stripe counters. Far above
/// the node count of any modelled machine (the largest, the 8-socket
/// Opteron/Westmere models, have 8 nodes).
pub const MAX_NODES: usize = 32;

/// Distance class of a steal victim, in the `TopoView` min-latency
/// order the executor steals in. `Local` is bucket 0 of the
/// steal-distance histogram: a pop from the worker's own deque, not a
/// steal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealClass {
    /// The victim shares the thief's socket (includes SMT siblings).
    SameSocket,
    /// The victim's socket is one interconnect hop away.
    OneHop,
    /// The victim's socket is two or more hops away.
    MultiHop,
    /// No topology view was available to classify the victim.
    Unclassified,
}

#[inline(always)]
fn add(counter: &AtomicU64, n: u64) {
    #[cfg(feature = "metrics")]
    counter.fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "metrics"))]
    {
        let _ = (counter, n);
    }
}

#[inline(always)]
fn get(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

/// Executor-traffic counters (one bucket set shared by all executors
/// recording into the same [`Metrics`] handle).
#[derive(Default)]
pub struct ExecCounters {
    pub(crate) arms: AtomicU64,
    pub(crate) rearms: AtomicU64,
    pub(crate) scopes: AtomicU64,
    pub(crate) tasks: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) targeted_pushes: AtomicU64,
    pub(crate) stealable_pushes: AtomicU64,
    pub(crate) mailbox_hits: AtomicU64,
    pub(crate) local_deque_hits: AtomicU64,
    pub(crate) injector_hits: AtomicU64,
    pub(crate) remote_injector_hits: AtomicU64,
    pub(crate) steals_same_socket: AtomicU64,
    pub(crate) steals_one_hop: AtomicU64,
    pub(crate) steals_multi_hop: AtomicU64,
    pub(crate) steals_unclassified: AtomicU64,
    pub(crate) parks: AtomicU64,
    pub(crate) unparks: AtomicU64,
}

/// Prober-activity counters, folded in from [`ProbeStats`] after a
/// collection run (the prober counts locally while measuring — see
/// [`Metrics::record_probe_stats`]).
#[derive(Default)]
pub struct ProberCounters {
    pub(crate) runs: AtomicU64,
    pub(crate) pairs: AtomicU64,
    pub(crate) probes: AtomicU64,
    pub(crate) pilot_probes: AtomicU64,
    pub(crate) refined_pairs: AtomicU64,
    pub(crate) retries: AtomicU64,
}

/// Placement/alloc counters.
pub struct AllocCounters {
    pub(crate) plans_resolved: AtomicU64,
    pub(crate) arenas_planned: AtomicU64,
    pub(crate) pages_planned: AtomicU64,
    pub(crate) stripes_per_node: [AtomicU64; MAX_NODES],
}

impl Default for AllocCounters {
    fn default() -> Self {
        AllocCounters {
            plans_resolved: AtomicU64::new(0),
            arenas_planned: AtomicU64::new(0),
            pages_planned: AtomicU64::new(0),
            stripes_per_node: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Serving-path counters for the `mctopd` daemon: connections,
/// per-kind request traffic, batching, and failure classes.
///
/// Deliberately **not** part of [`MetricsSnapshot`]: the runtime
/// snapshot schema is pinned by goldens and pre-daemon artifacts.
/// Read these via [`Metrics::server_snapshot`]; the daemon's
/// `MetricsSnapshot` request returns both views side by side.
#[derive(Default)]
pub struct ServerCounters {
    pub(crate) connections_opened: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) hellos_ok: AtomicU64,
    pub(crate) version_mismatches: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) req_list: AtomicU64,
    pub(crate) req_query: AtomicU64,
    pub(crate) req_placement: AtomicU64,
    pub(crate) req_alloc_plan: AtomicU64,
    pub(crate) req_metrics: AtomicU64,
    pub(crate) req_reload: AtomicU64,
    pub(crate) req_shutdown: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) ok_responses: AtomicU64,
    pub(crate) error_responses: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) disconnects_mid_request: AtomicU64,
    pub(crate) reloads: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
}

/// Request kinds the server counts individually (the serving wire
/// protocol's non-handshake requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRequestKind {
    /// `ListTopologies`.
    List,
    /// `Query`.
    Query,
    /// `Placement`.
    Placement,
    /// `AllocPlan`.
    AllocPlan,
    /// `MetricsSnapshot`.
    Metrics,
    /// `Reload` (admin).
    Reload,
    /// `Shutdown` (admin).
    Shutdown,
}

/// The full runtime counter set: executor traffic, prober activity,
/// alloc/placement plans, and the daemon's serving path. See the
/// module docs for the handle model and `docs/OBSERVABILITY.md` for
/// per-counter semantics.
#[derive(Default)]
pub struct Metrics {
    /// Executor-traffic buckets.
    pub exec: ExecCounters,
    /// Prober-activity buckets.
    pub prober: ProberCounters,
    /// Alloc/placement buckets.
    pub alloc: AllocCounters,
    /// Serving-path buckets (`mctopd`).
    pub server: ServerCounters,
}

/// The process-global metrics handle: what default-constructed
/// executors and `mctop_alloc::AllocPlan::resolve` record into.
pub fn global() -> &'static Arc<Metrics> {
    static GLOBAL: OnceLock<Arc<Metrics>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Metrics::default()))
}

impl Metrics {
    /// A fresh, isolated handle (for tests and benches that must not
    /// see other executors' traffic).
    pub fn handle() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    // --- executor recording (crate-internal call sites) ---

    pub(crate) fn exec_armed(&self) {
        add(&self.exec.arms, 1);
    }

    pub(crate) fn exec_rearmed(&self) {
        add(&self.exec.rearms, 1);
    }

    pub(crate) fn scope_opened(&self) {
        add(&self.exec.scopes, 1);
    }

    pub(crate) fn task_spawned(&self) {
        add(&self.exec.tasks, 1);
    }

    pub(crate) fn task_panicked(&self) {
        add(&self.exec.panics, 1);
    }

    pub(crate) fn targeted_push(&self) {
        add(&self.exec.targeted_pushes, 1);
    }

    pub(crate) fn stealable_push(&self) {
        add(&self.exec.stealable_pushes, 1);
    }

    pub(crate) fn mailbox_hit(&self) {
        add(&self.exec.mailbox_hits, 1);
    }

    pub(crate) fn local_deque_hit(&self) {
        add(&self.exec.local_deque_hits, 1);
    }

    pub(crate) fn injector_hit(&self) {
        add(&self.exec.injector_hits, 1);
    }

    pub(crate) fn remote_injector_hit(&self) {
        add(&self.exec.remote_injector_hits, 1);
    }

    pub(crate) fn steal(&self, class: StealClass) {
        let bucket = match class {
            StealClass::SameSocket => &self.exec.steals_same_socket,
            StealClass::OneHop => &self.exec.steals_one_hop,
            StealClass::MultiHop => &self.exec.steals_multi_hop,
            StealClass::Unclassified => &self.exec.steals_unclassified,
        };
        add(bucket, 1);
    }

    pub(crate) fn parked(&self) {
        add(&self.exec.parks, 1);
    }

    pub(crate) fn unparked(&self) {
        add(&self.exec.unparks, 1);
    }

    // --- prober and alloc recording (public: called from other
    // crates and harnesses) ---

    /// Folds one collection run's [`ProbeStats`] into the prober
    /// buckets. The prober counts locally while measuring (its inner
    /// loop is the measurement — an atomic per sample would perturb
    /// it); callers fold the totals in once per run.
    pub fn record_probe_stats(&self, stats: &ProbeStats) {
        add(&self.prober.runs, 1);
        add(&self.prober.pairs, stats.pairs);
        add(&self.prober.probes, stats.probes);
        add(&self.prober.pilot_probes, stats.pilot_probes);
        add(&self.prober.refined_pairs, stats.refined_pairs);
        add(&self.prober.retries, stats.retries);
    }

    /// Records one resolved allocation plan: `arenas` per-worker
    /// arenas whose first-touch stripes put `pages_per_node[n]` pages
    /// on node `n`. Nodes beyond [`MAX_NODES`] are folded into the
    /// last bucket.
    pub fn record_alloc_plan(&self, arenas: u64, pages_per_node: &[u64]) {
        add(&self.alloc.plans_resolved, 1);
        add(&self.alloc.arenas_planned, arenas);
        for (node, &pages) in pages_per_node.iter().enumerate() {
            add(&self.alloc.pages_planned, pages);
            if pages > 0 {
                add(&self.alloc.stripes_per_node[node.min(MAX_NODES - 1)], pages);
            }
        }
    }

    // --- serving recording (public: called from the mctopd crate) ---

    /// A connection was accepted.
    pub fn record_conn_opened(&self) {
        add(&self.server.connections_opened, 1);
    }

    /// A connection handler finished (any reason).
    pub fn record_conn_closed(&self) {
        add(&self.server.connections_closed, 1);
    }

    /// A `Hello` handshake succeeded.
    pub fn record_hello_ok(&self) {
        add(&self.server.hellos_ok, 1);
    }

    /// A `Hello` carried an unsupported protocol version.
    pub fn record_version_mismatch(&self) {
        add(&self.server.version_mismatches, 1);
    }

    /// One decoded request of `kind` entered execution.
    pub fn record_server_request(&self, kind: ServerRequestKind) {
        add(&self.server.requests, 1);
        let bucket = match kind {
            ServerRequestKind::List => &self.server.req_list,
            ServerRequestKind::Query => &self.server.req_query,
            ServerRequestKind::Placement => &self.server.req_placement,
            ServerRequestKind::AllocPlan => &self.server.req_alloc_plan,
            ServerRequestKind::Metrics => &self.server.req_metrics,
            ServerRequestKind::Reload => {
                add(&self.server.reloads, 1);
                &self.server.req_reload
            }
            ServerRequestKind::Shutdown => &self.server.req_shutdown,
        };
        add(bucket, 1);
    }

    /// One batch of pipelined requests was executed together.
    pub fn record_server_batch(&self) {
        add(&self.server.batches, 1);
    }

    /// An `Ok` response frame was written.
    pub fn record_ok_response(&self) {
        add(&self.server.ok_responses, 1);
    }

    /// A typed error response frame was written.
    pub fn record_error_response(&self) {
        add(&self.server.error_responses, 1);
    }

    /// A connection broke the framing (malformed frame, mid-frame EOF)
    /// and was closed.
    pub fn record_protocol_error(&self) {
        add(&self.server.protocol_errors, 1);
    }

    /// A client vanished while a request (or its response) was in
    /// flight; the request was abandoned, the server unaffected.
    pub fn record_disconnect_mid_request(&self) {
        add(&self.server.disconnects_mid_request, 1);
    }

    /// Frame bytes read from clients (payload + length prefixes).
    pub fn record_bytes_read(&self, n: u64) {
        add(&self.server.bytes_read, n);
    }

    /// Frame bytes written to clients (payload + length prefixes).
    pub fn record_bytes_written(&self, n: u64) {
        add(&self.server.bytes_written, n);
    }

    /// Loads the serving-path counters (relaxed) into a serializable
    /// snapshot. Kept separate from [`Metrics::snapshot`] so the
    /// runtime schema (and its goldens) stay byte-stable.
    pub fn server_snapshot(&self) -> ServerSnapshot {
        let s = &self.server;
        ServerSnapshot {
            connections_opened: get(&s.connections_opened),
            connections_closed: get(&s.connections_closed),
            hellos_ok: get(&s.hellos_ok),
            version_mismatches: get(&s.version_mismatches),
            requests: get(&s.requests),
            req_list: get(&s.req_list),
            req_query: get(&s.req_query),
            req_placement: get(&s.req_placement),
            req_alloc_plan: get(&s.req_alloc_plan),
            req_metrics: get(&s.req_metrics),
            req_reload: get(&s.req_reload),
            req_shutdown: get(&s.req_shutdown),
            batches: get(&s.batches),
            ok_responses: get(&s.ok_responses),
            error_responses: get(&s.error_responses),
            protocol_errors: get(&s.protocol_errors),
            disconnects_mid_request: get(&s.disconnects_mid_request),
            reloads: get(&s.reloads),
            bytes_read: get(&s.bytes_read),
            bytes_written: get(&s.bytes_written),
        }
    }

    /// Loads every counter (relaxed) into a plain, serializable
    /// snapshot. Exact per counter; cross-counter invariants hold only
    /// when the recording executors are quiescent.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let e = &self.exec;
        let p = &self.prober;
        let a = &self.alloc;
        let steals_same_socket = get(&e.steals_same_socket);
        let steals_one_hop = get(&e.steals_one_hop);
        let steals_multi_hop = get(&e.steals_multi_hop);
        let steals_unclassified = get(&e.steals_unclassified);
        let mut stripes_per_node: Vec<u64> = a.stripes_per_node.iter().map(get).collect();
        while stripes_per_node.last() == Some(&0) {
            stripes_per_node.pop();
        }
        MetricsSnapshot {
            executor: ExecutorSnapshot {
                arms: get(&e.arms),
                rearms: get(&e.rearms),
                scopes: get(&e.scopes),
                tasks: get(&e.tasks),
                panics: get(&e.panics),
                targeted_pushes: get(&e.targeted_pushes),
                stealable_pushes: get(&e.stealable_pushes),
                mailbox_hits: get(&e.mailbox_hits),
                local_deque_hits: get(&e.local_deque_hits),
                injector_hits: get(&e.injector_hits),
                remote_injector_hits: get(&e.remote_injector_hits),
                steals_same_socket,
                steals_one_hop,
                steals_multi_hop,
                steals_unclassified,
                steals_total: steals_same_socket
                    + steals_one_hop
                    + steals_multi_hop
                    + steals_unclassified,
                parks: get(&e.parks),
                unparks: get(&e.unparks),
            },
            prober: ProberSnapshot {
                runs: get(&p.runs),
                pairs: get(&p.pairs),
                probes: get(&p.probes),
                pilot_probes: get(&p.pilot_probes),
                refined_pairs: get(&p.refined_pairs),
                retries: get(&p.retries),
            },
            alloc: AllocSnapshot {
                plans_resolved: get(&a.plans_resolved),
                arenas_planned: get(&a.arenas_planned),
                pages_planned: get(&a.pages_planned),
                stripes_per_node,
            },
        }
    }

    /// Zeroes every bucket. Racy against concurrent writers (a write
    /// in flight during the reset survives it); reset while the
    /// recording executors are quiescent.
    pub fn reset(&self) {
        let e = &self.exec;
        for c in [
            &e.arms,
            &e.rearms,
            &e.scopes,
            &e.tasks,
            &e.panics,
            &e.targeted_pushes,
            &e.stealable_pushes,
            &e.mailbox_hits,
            &e.local_deque_hits,
            &e.injector_hits,
            &e.remote_injector_hits,
            &e.steals_same_socket,
            &e.steals_one_hop,
            &e.steals_multi_hop,
            &e.steals_unclassified,
            &e.parks,
            &e.unparks,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        let p = &self.prober;
        for c in [
            &p.runs,
            &p.pairs,
            &p.probes,
            &p.pilot_probes,
            &p.refined_pairs,
            &p.retries,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        let a = &self.alloc;
        a.plans_resolved.store(0, Ordering::Relaxed);
        a.arenas_planned.store(0, Ordering::Relaxed);
        a.pages_planned.store(0, Ordering::Relaxed);
        for c in &a.stripes_per_node {
            c.store(0, Ordering::Relaxed);
        }
        let s = &self.server;
        for c in [
            &s.connections_opened,
            &s.connections_closed,
            &s.hellos_ok,
            &s.version_mismatches,
            &s.requests,
            &s.req_list,
            &s.req_query,
            &s.req_placement,
            &s.req_alloc_plan,
            &s.req_metrics,
            &s.req_reload,
            &s.req_shutdown,
            &s.batches,
            &s.ok_responses,
            &s.error_responses,
            &s.protocol_errors,
            &s.disconnects_mid_request,
            &s.reloads,
            &s.bytes_read,
            &s.bytes_written,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of the serving-path buckets, as returned by
/// [`Metrics::server_snapshot`]. Served (next to the runtime
/// [`MetricsSnapshot`]) by the daemon's `MetricsSnapshot` request;
/// schema documented in `docs/OBSERVABILITY.md` and `docs/SERVING.md`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connection handlers finished (any reason).
    pub connections_closed: u64,
    /// Successful `Hello` handshakes.
    pub hellos_ok: u64,
    /// `Hello` frames rejected for an unsupported protocol version.
    pub version_mismatches: u64,
    /// Decoded requests entering execution (all kinds).
    pub requests: u64,
    /// `ListTopologies` requests.
    pub req_list: u64,
    /// `Query` requests.
    pub req_query: u64,
    /// `Placement` requests.
    pub req_placement: u64,
    /// `AllocPlan` requests.
    pub req_alloc_plan: u64,
    /// `MetricsSnapshot` requests.
    pub req_metrics: u64,
    /// `Reload` admin requests.
    pub req_reload: u64,
    /// `Shutdown` admin requests.
    pub req_shutdown: u64,
    /// Pipelined batches executed (a batch is >= 1 request).
    pub batches: u64,
    /// `Ok` response frames written.
    pub ok_responses: u64,
    /// Typed error response frames written.
    pub error_responses: u64,
    /// Connections closed for broken framing (malformed frame,
    /// mid-frame EOF).
    pub protocol_errors: u64,
    /// Clients that vanished with a request or response in flight.
    pub disconnects_mid_request: u64,
    /// Topology-cache reloads performed.
    pub reloads: u64,
    /// Frame bytes read from clients.
    pub bytes_read: u64,
    /// Frame bytes written to clients.
    pub bytes_written: u64,
}

/// A point-in-time copy of the executor buckets. All fields are plain
/// totals since the handle's creation (or last [`Metrics::reset`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorSnapshot {
    /// Executors armed (constructions, including each re-arm's fresh
    /// team).
    pub arms: u64,
    /// Graceful placement changes ([`crate::Executor::rearm`]).
    pub rearms: u64,
    /// Fork-join scopes opened (`run`/`run_each` count one per call).
    pub scopes: u64,
    /// Tasks submitted (targeted + stealable).
    pub tasks: u64,
    /// Tasks whose closure panicked (the panic is captured and
    /// re-thrown at the scope).
    pub panics: u64,
    /// Tasks pushed to a specific worker's mailbox (`spawn_on`,
    /// `run_each`).
    pub targeted_pushes: u64,
    /// Tasks pushed to a socket injector (`spawn`, `join`).
    pub stealable_pushes: u64,
    /// Tasks a worker took from its own mailbox.
    pub mailbox_hits: u64,
    /// Tasks a worker popped from its own deque (bucket 0 of the
    /// steal-distance histogram).
    pub local_deque_hits: u64,
    /// Tasks taken directly off an injector by a home-socket batch
    /// refill (the batch surplus lands in the local deque and is later
    /// counted under `local_deque_hits` or the steal buckets).
    pub injector_hits: u64,
    /// Tasks taken one-at-a-time from another socket's injector.
    pub remote_injector_hits: u64,
    /// Steals from a victim on the thief's own socket (incl. SMT
    /// siblings).
    pub steals_same_socket: u64,
    /// Steals from a victim one interconnect hop away.
    pub steals_one_hop: u64,
    /// Steals from a victim two or more hops away.
    pub steals_multi_hop: u64,
    /// Steals whose distance could not be classified (executor armed
    /// without a topology view).
    pub steals_unclassified: u64,
    /// Sum of the four steal buckets (maintained by `snapshot()`, so
    /// the histogram always sums to the total).
    pub steals_total: u64,
    /// Times a worker went to sleep after an empty scan. Timing-
    /// dependent: two identical runs may park differently.
    pub parks: u64,
    /// Times a sleeping worker was woken by a push or shutdown (not by
    /// its defensive timeout). Timing-dependent.
    pub unparks: u64,
}

/// A point-in-time copy of the prober buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProberSnapshot {
    /// Collection runs folded in via [`Metrics::record_probe_stats`].
    pub runs: u64,
    /// Context pairs measured.
    pub pairs: u64,
    /// Raw probes issued (including retries and adaptive pilots).
    pub probes: u64,
    /// Probes issued by the adaptive pilot pass.
    pub pilot_probes: u64,
    /// Pairs re-measured with full repetitions by adaptive refinement.
    pub refined_pairs: u64,
    /// Pair-level retries due to unstable stdev.
    pub retries: u64,
}

/// A point-in-time copy of the alloc buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocSnapshot {
    /// Allocation plans resolved (`AllocPlan::resolve`).
    pub plans_resolved: u64,
    /// Per-worker arenas across all resolved plans.
    pub arenas_planned: u64,
    /// Pages across all resolved plans.
    pub pages_planned: u64,
    /// First-touch stripe pages per memory node, trailing zeros
    /// trimmed (`stripes_per_node[n]` = pages planned onto node `n`).
    pub stripes_per_node: Vec<u64>,
}

/// A point-in-time copy of every bucket group, as returned by
/// [`Metrics::snapshot`]. Serializes to the stable JSON schema
/// documented in `docs/OBSERVABILITY.md` (also emitted by `mct query
/// <desc> metrics` and the `BENCH_executor.json` /
/// `BENCH_throughput.json` artifacts).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Executor traffic.
    pub executor: ExecutorSnapshot,
    /// Prober activity.
    pub prober: ProberSnapshot,
    /// Alloc/placement plans.
    pub alloc: AllocSnapshot,
}

impl MetricsSnapshot {
    /// The counters accumulated since `earlier`: field-wise saturating
    /// subtraction (a reset between the two snapshots clamps to zero
    /// instead of wrapping).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let e = &self.executor;
        let eo = &earlier.executor;
        let p = &self.prober;
        let po = &earlier.prober;
        let a = &self.alloc;
        let ao = &earlier.alloc;
        let mut stripes_per_node: Vec<u64> = a
            .stripes_per_node
            .iter()
            .enumerate()
            .map(|(n, &v)| v.saturating_sub(ao.stripes_per_node.get(n).copied().unwrap_or(0)))
            .collect();
        while stripes_per_node.last() == Some(&0) {
            stripes_per_node.pop();
        }
        MetricsSnapshot {
            executor: ExecutorSnapshot {
                arms: e.arms.saturating_sub(eo.arms),
                rearms: e.rearms.saturating_sub(eo.rearms),
                scopes: e.scopes.saturating_sub(eo.scopes),
                tasks: e.tasks.saturating_sub(eo.tasks),
                panics: e.panics.saturating_sub(eo.panics),
                targeted_pushes: e.targeted_pushes.saturating_sub(eo.targeted_pushes),
                stealable_pushes: e.stealable_pushes.saturating_sub(eo.stealable_pushes),
                mailbox_hits: e.mailbox_hits.saturating_sub(eo.mailbox_hits),
                local_deque_hits: e.local_deque_hits.saturating_sub(eo.local_deque_hits),
                injector_hits: e.injector_hits.saturating_sub(eo.injector_hits),
                remote_injector_hits: e
                    .remote_injector_hits
                    .saturating_sub(eo.remote_injector_hits),
                steals_same_socket: e.steals_same_socket.saturating_sub(eo.steals_same_socket),
                steals_one_hop: e.steals_one_hop.saturating_sub(eo.steals_one_hop),
                steals_multi_hop: e.steals_multi_hop.saturating_sub(eo.steals_multi_hop),
                steals_unclassified: e.steals_unclassified.saturating_sub(eo.steals_unclassified),
                steals_total: e.steals_total.saturating_sub(eo.steals_total),
                parks: e.parks.saturating_sub(eo.parks),
                unparks: e.unparks.saturating_sub(eo.unparks),
            },
            prober: ProberSnapshot {
                runs: p.runs.saturating_sub(po.runs),
                pairs: p.pairs.saturating_sub(po.pairs),
                probes: p.probes.saturating_sub(po.probes),
                pilot_probes: p.pilot_probes.saturating_sub(po.pilot_probes),
                refined_pairs: p.refined_pairs.saturating_sub(po.refined_pairs),
                retries: p.retries.saturating_sub(po.retries),
            },
            alloc: AllocSnapshot {
                plans_resolved: a.plans_resolved.saturating_sub(ao.plans_resolved),
                arenas_planned: a.arenas_planned.saturating_sub(ao.arenas_planned),
                pages_planned: a.pages_planned.saturating_sub(ao.pages_planned),
                stripes_per_node,
            },
        }
    }

    /// This snapshot with the timing-dependent counters (`parks`,
    /// `unparks`) zeroed — the view `mct query metrics` prints, so its
    /// deterministic workload golden-tests byte-for-byte. Every other
    /// counter of that workload is exact by construction.
    pub fn without_timing_noise(&self) -> MetricsSnapshot {
        let mut s = self.clone();
        s.executor.parks = 0;
        s.executor.unparks = 0;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_starts_zeroed() {
        let m = Metrics::handle();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn steal_buckets_sum_to_total() {
        let m = Metrics::handle();
        m.steal(StealClass::SameSocket);
        m.steal(StealClass::SameSocket);
        m.steal(StealClass::OneHop);
        m.steal(StealClass::MultiHop);
        m.steal(StealClass::Unclassified);
        let s = m.snapshot().executor;
        assert_eq!(s.steals_total, 5);
        assert_eq!(
            s.steals_total,
            s.steals_same_socket + s.steals_one_hop + s.steals_multi_hop + s.steals_unclassified
        );
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn alloc_plan_recording_trims_trailing_nodes() {
        let m = Metrics::handle();
        m.record_alloc_plan(4, &[100, 0, 50, 0, 0]);
        let a = m.snapshot().alloc;
        assert_eq!(a.plans_resolved, 1);
        assert_eq!(a.arenas_planned, 4);
        assert_eq!(a.pages_planned, 150);
        assert_eq!(a.stripes_per_node, vec![100, 0, 50]);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn probe_stats_fold_in() {
        let m = Metrics::handle();
        let stats = ProbeStats {
            pairs: 10,
            probes: 510,
            pilot_probes: 150,
            refined_pairs: 3,
            retries: 1,
            ..ProbeStats::default()
        };
        m.record_probe_stats(&stats);
        m.record_probe_stats(&stats);
        let p = m.snapshot().prober;
        assert_eq!(p.runs, 2);
        assert_eq!(p.pairs, 20);
        assert_eq!(p.probes, 1020);
        assert_eq!(p.pilot_probes, 300);
        assert_eq!(p.refined_pairs, 6);
        assert_eq!(p.retries, 2);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn delta_and_reset_round_trip() {
        let m = Metrics::handle();
        m.task_spawned();
        m.mailbox_hit();
        let first = m.snapshot();
        m.task_spawned();
        m.steal(StealClass::OneHop);
        let second = m.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.executor.tasks, 1);
        assert_eq!(d.executor.mailbox_hits, 0);
        assert_eq!(d.executor.steals_one_hop, 1);
        assert_eq!(d.executor.steals_total, 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn server_bucket_counts_and_resets() {
        let m = Metrics::handle();
        m.record_conn_opened();
        m.record_hello_ok();
        m.record_server_batch();
        for kind in [
            ServerRequestKind::List,
            ServerRequestKind::Query,
            ServerRequestKind::Query,
            ServerRequestKind::Placement,
            ServerRequestKind::AllocPlan,
            ServerRequestKind::Metrics,
            ServerRequestKind::Reload,
            ServerRequestKind::Shutdown,
        ] {
            m.record_server_request(kind);
        }
        m.record_ok_response();
        m.record_error_response();
        m.record_bytes_read(100);
        m.record_bytes_written(250);
        m.record_conn_closed();
        let s = m.server_snapshot();
        assert_eq!(s.requests, 8);
        assert_eq!(
            s.requests,
            s.req_list
                + s.req_query
                + s.req_placement
                + s.req_alloc_plan
                + s.req_metrics
                + s.req_reload
                + s.req_shutdown
        );
        assert_eq!(s.req_query, 2);
        assert_eq!(s.reloads, 1);
        assert_eq!(s.bytes_written, 250);
        // The serving bucket never leaks into the pinned runtime schema.
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        m.reset();
        assert_eq!(m.server_snapshot(), ServerSnapshot::default());
    }

    #[test]
    fn server_snapshot_serde_round_trips() {
        let m = Metrics::handle();
        m.record_conn_opened();
        let snap = m.server_snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: ServerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let m = Metrics::handle();
        m.record_alloc_plan(2, &[8, 4]);
        let snap = m.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
