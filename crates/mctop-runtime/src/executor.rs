//! The persistent topology-aware fork-join executor.
//!
//! MCTOP's thesis is that one topology abstraction should drive every
//! policy — yet for a long time each parallel workload in this
//! repository (sort, MapReduce, OpenMP regions, the alloc first-touch
//! path) opened its own `std::thread::scope`, re-pinned workers and
//! tore everything down again per call. [`Executor`] consolidates
//! them: workers are spawned **once**, pinned to the slots of an
//! [`mctop_place::Placement`], and kept alive across calls; work
//! arrives through per-socket [`Injector`]s and flows into per-worker
//! deques, with idle workers stealing in the `TopoView` min-latency
//! victim order of [`crate::steal`].
//!
//! # Lifecycle
//!
//! `arm` (construction) → any number of [`Executor::scope`] /
//! [`Executor::run_each`] calls → [`Executor::rearm`] on placement
//! change (graceful: outstanding tasks drain first) →
//! [`Executor::shutdown`] (also run on drop).
//!
//! # Scheduling
//!
//! Each worker looks for work in this order:
//!
//! 1. its **mailbox** — targeted tasks from [`Scope::spawn_on`] /
//!    [`Executor::run_each`]; never stolen by anyone else (this is
//!    what first-touch allocation and per-worker arenas rely on);
//! 2. its **local deque**, then the other workers' deques in the
//!    min-latency victim order ([`crate::steal::StealPool::next`]);
//! 3. its own socket's injector — drained in batches
//!    (`steal_batch_and_pop`), so surplus tasks land in the local
//!    deque where neighbours can steal them — then the remaining
//!    sockets' injectors, closest first.
//!
//! # Determinism contract
//!
//! The executor never decides *what* a task computes, only *where* it
//! runs. Every consumer in this workspace writes results into
//! caller-owned slots that are combined in program order, so outputs
//! are byte-identical for any worker count and any steal schedule
//! (`tests/executor_equivalence.rs` enforces this).
//!
//! # Restrictions
//!
//! Tasks must not open a nested [`Executor::scope`] on the same
//! executor: with every worker busy, the inner scope could wait on
//! tasks that no one is left to run. Flatten phases into one scope
//! instead (see `mctop-sort` for the pattern).

use std::any::Any;
use std::fmt;
use std::panic::{
    catch_unwind,
    resume_unwind,
    AssertUnwindSafe, //
};
use std::sync::Arc;
use std::time::Duration;

use mctop::view::TopoView;
use mctop_place::{
    PinHandle,
    Placement, //
};

use crate::host;
use crate::metrics::{
    self,
    Metrics,
    StealClass, //
};
use crate::steal::{
    steal_classes_with_view,
    steal_queues_with_order,
    steal_queues_with_view,
    StealOrder,
    StealPool, //
};
// Every synchronization primitive comes from the cfg-switched facade:
// plain `std`/`crossbeam` re-exports by default, tracked model-checker
// shims under `--features model-check` (see `crate::sync`).
use crate::sync::atomic::{
    AtomicBool,
    AtomicUsize,
    Ordering, //
};
use crate::sync::deque::{
    Injector,
    Steal, //
};
use crate::sync::thread::JoinHandle;
use crate::sync::{
    thread,
    Condvar,
    Mutex, //
};

/// What a worker knows about itself inside a task.
#[derive(Debug, Clone, Copy)]
pub struct WorkerCtx {
    /// Worker index (0-based, dense).
    pub id: usize,
    /// Total workers in this executor.
    pub n_workers: usize,
    /// The placement slot this worker occupies.
    pub pin: PinHandle,
}

impl WorkerCtx {
    /// The worker's hardware context OS id.
    pub fn hwc(&self) -> usize {
        self.pin.hwc
    }

    /// The worker's socket.
    pub fn socket(&self) -> usize {
        self.pin.socket
    }
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecCfg {
    /// Workers to arm (default: one per placement slot).
    pub workers: Option<usize>,
    /// Whether workers may bind to real host CPUs (still gated on the
    /// placement's policy actually pinning and the context existing on
    /// the host).
    pub os_pin: bool,
}

impl Default for ExecCfg {
    fn default() -> Self {
        ExecCfg {
            workers: None,
            os_pin: true,
        }
    }
}

/// A queued unit of work. Scopes erase the borrow lifetime on the way
/// in; `Executor::scope` waiting for completion is what makes that
/// sound.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// One worker's private parking spot: pushes bump the epoch (the
/// worker re-checks it before sleeping, which makes the park/notify
/// handshake lost-wakeup-free) and only wake *this* worker — a
/// targeted push never causes a thundering herd across the team.
struct WorkerSleep {
    state: Mutex<WorkerSleepState>,
    cv: Condvar,
}

struct WorkerSleepState {
    epoch: u64,
    parked: bool,
}

impl WorkerSleep {
    fn new() -> Self {
        WorkerSleep {
            state: Mutex::new(WorkerSleepState {
                epoch: 0,
                parked: false,
            }),
            cv: Condvar::new(),
        }
    }
}

struct Shared {
    ctxs: Vec<WorkerCtx>,
    /// One targeted queue per worker; only its owner pops.
    mailboxes: Vec<Injector<Task>>,
    /// One shared injector per socket used by the placement.
    injectors: Vec<Injector<Task>>,
    /// For each worker, the injector scan order: own socket first,
    /// then the others by min communication latency.
    injector_order: Vec<Vec<usize>>,
    /// Round-robin cursor distributing untargeted spawns over sockets.
    next_injector: AtomicUsize,
    /// Round-robin cursor choosing which worker a stealable push wakes.
    next_wake: AtomicUsize,
    sleeps: Vec<WorkerSleep>,
    shutdown: AtomicBool,
    /// Scopes currently open. Paired with `shutdown` in a SeqCst
    /// Dekker handshake: [`ScopeTicket::acquire`] increments *then*
    /// loads `shutdown`, [`Executor::shutdown`] stores *then* the
    /// workers load both — so a scope either observes the shutdown and
    /// backs out, or the workers observe the scope and keep serving
    /// until it closes. Workers only exit when `shutdown` is set *and*
    /// this is zero.
    active_scopes: AtomicUsize,
    /// Observability buckets (the process-global handle unless the
    /// executor was armed with [`Executor::with_metrics`]).
    metrics: Arc<Metrics>,
}

/// Test-only fault injection for the model checker's negative tests:
/// deliberately break a protocol step and assert the explorer finds
/// the resulting bug with a replayable trace.
#[cfg(feature = "model-check")]
pub mod faults {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard};

    static LOST_WAKEUP: AtomicBool = AtomicBool::new(false);
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    /// Whether the lost-wakeup fault is active (checked by
    /// `Shared::bump`).
    pub(super) fn lost_wakeup_active() -> bool {
        LOST_WAKEUP.load(Ordering::Relaxed)
    }

    /// While held, `Shared::bump` notifies *without* bumping the
    /// epoch — re-introducing the classic lost-wakeup bug the epoch
    /// protocol exists to prevent. Tests injecting faults serialize on
    /// an internal lock so concurrent tests cannot observe each
    /// other's faults.
    pub struct BrokenBumpGuard {
        _serial: MutexGuard<'static, ()>,
    }

    /// Serializes the caller against fault-injecting tests without
    /// activating any fault: model tests in one binary run in
    /// parallel, and a fault left active by a concurrent test would
    /// leak into their executions.
    pub fn exclusive() -> MutexGuard<'static, ()> {
        FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Activates the lost-wakeup fault until the guard drops.
    pub fn break_bump() -> BrokenBumpGuard {
        let serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        LOST_WAKEUP.store(true, Ordering::Relaxed);
        BrokenBumpGuard { _serial: serial }
    }

    impl Drop for BrokenBumpGuard {
        fn drop(&mut self) {
            LOST_WAKEUP.store(false, Ordering::Relaxed);
        }
    }
}

/// Whether the injected lost-wakeup fault is active (constant `false`
/// outside model-check builds; the branch folds away).
#[inline(always)]
fn fault_lost_wakeup() -> bool {
    #[cfg(feature = "model-check")]
    {
        faults::lost_wakeup_active()
    }
    #[cfg(not(feature = "model-check"))]
    {
        false
    }
}

impl Shared {
    /// Bumps one worker's epoch and wakes it if parked. After a bump,
    /// that worker is guaranteed to run a fresh queue scan before it
    /// can park (or park again), which is what makes a single wake
    /// sufficient for liveness.
    fn bump(&self, worker: usize) {
        {
            let mut g = self.sleeps[worker]
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if !fault_lost_wakeup() {
                g.epoch = g.epoch.wrapping_add(1);
            }
        }
        self.sleeps[worker].cv.notify_all();
    }

    /// Whether the workers are allowed to exit: shutdown requested and
    /// no scope still open (SeqCst pairs with [`ScopeTicket::acquire`]).
    fn draining_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) && self.active_scopes.load(Ordering::SeqCst) == 0
    }

    fn push_stealable(&self, task: Task) {
        self.metrics.stealable_push();
        let i = self.next_injector.fetch_add(1, Ordering::Relaxed) % self.injectors.len();
        self.injectors[i].push(task);
        // Wake one parked worker if there is one (lowest latency to
        // pick the task up); otherwise bump a round-robin victim — it
        // is busy or mid-scan and will rescan before parking, so the
        // task cannot be stranded.
        let n = self.sleeps.len();
        let start = self.next_wake.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let w = (start + k) % n;
            let parked = {
                self.sleeps[w]
                    .state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .parked
            };
            if parked {
                self.bump(w);
                return;
            }
        }
        self.bump(start % n);
    }

    fn push_targeted(&self, worker: usize, task: Task) {
        self.metrics.targeted_push();
        self.mailboxes[worker].push(task);
        self.bump(worker);
    }
}

/// Drains one task from an injector, absorbing `Retry`.
fn injector_take(injector: &Injector<Task>) -> Option<Task> {
    loop {
        match injector.steal() {
            Steal::Success(task) => return Some(task),
            Steal::Empty => return None,
            Steal::Retry => continue,
        }
    }
}

/// One worker's search for work, in mailbox → deques → injectors order.
fn next_task(shared: &Shared, idx: usize, queue: &StealPool<Task>) -> Option<Task> {
    if let Some(task) = injector_take(&shared.mailboxes[idx]) {
        shared.metrics.mailbox_hit();
        return Some(task);
    }
    // Local pops and steals are recorded inside the pool (it knows the
    // victim distance classes).
    if let Some((task, _src)) = queue.next() {
        return Some(task);
    }
    for (rank, &i) in shared.injector_order[idx].iter().enumerate() {
        let injector = &shared.injectors[i];
        // Batch from the home socket (surplus lands in our deque, where
        // neighbours steal it latency-first); single steals elsewhere.
        // The batch refill records its own injector hit; the surplus
        // shows up later as local-deque hits or steals.
        let got = if rank == 0 {
            queue.steal_batch_from(injector)
        } else {
            let got = injector_take(injector);
            if got.is_some() {
                shared.metrics.remote_injector_hit();
            }
            got
        };
        if got.is_some() {
            return got;
        }
    }
    None
}

fn worker_loop(shared: Arc<Shared>, idx: usize, queue: StealPool<Task>, pin: Option<usize>) {
    if let Some(hwc) = pin {
        let _ = host::pin_if_host(hwc);
    }
    let my = &shared.sleeps[idx];
    loop {
        let epoch = { my.state.lock().unwrap_or_else(|e| e.into_inner()).epoch };
        if shared.draining_down() {
            // Graceful exit: shutdown was requested, no scope is still
            // open (a racing `try_scope` either lost and returned the
            // error, or won and we keep serving until its ticket
            // drops), so drain everything already queued and leave.
            while let Some(task) = next_task(&shared, idx, &queue) {
                task();
            }
            break;
        }
        let mut ran = false;
        while let Some(task) = next_task(&shared, idx, &queue) {
            task();
            ran = true;
        }
        if ran {
            continue;
        }
        let mut g = my.state.lock().unwrap_or_else(|e| e.into_inner());
        if g.epoch == epoch {
            // Nothing arrived since the scan started; park. Every
            // event this worker must see — a push, a shutdown, the
            // last scope ticket dropping during shutdown — bumps our
            // epoch under this lock, so a plain wait cannot lose a
            // wakeup; the long timeout is purely a defensive backstop
            // (an idle team costs ~2 wakeups/s/worker, not a poll
            // loop).
            g.parked = true;
            shared.metrics.parked();
            let (mut g, timeout) = my
                .cv
                .wait_timeout(g, Duration::from_millis(500))
                .unwrap_or_else(|e| e.into_inner());
            g.parked = false;
            if !timeout.timed_out() {
                // Woken by a push or shutdown bump, not the defensive
                // backstop timer.
                shared.metrics.unparked();
            }
        }
    }
}

/// State of one fork-join scope: a pending-task latch plus the first
/// captured panic.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done: Mutex<()>,
    cv: Condvar,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            cv: Condvar::new(),
        }
    }
}

/// Error returned by [`Executor::try_scope`] when the executor has
/// been shut down: its workers are gone (or leaving), so spawned tasks
/// could never run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorShutdown;

impl fmt::Display for ExecutorShutdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("executor has been shut down")
    }
}

impl std::error::Error for ExecutorShutdown {}

/// RAII half of the shutdown-vs-scope handshake: while a ticket is
/// live, workers refuse to exit even if `shutdown` was requested.
struct ScopeTicket<'a> {
    shared: &'a Shared,
}

impl<'a> ScopeTicket<'a> {
    /// Registers an open scope, unless shutdown already started.
    ///
    /// Increment-then-check against the shutdown flag (both SeqCst):
    /// in every interleaving with [`Executor::shutdown`]'s
    /// store-then-bump, either this sees the store (backs out, caller
    /// gets [`ExecutorShutdown`]) or the workers' exit check
    /// ([`Shared::draining_down`]) sees the increment and the team
    /// outlives the scope. Checking before incrementing would leave a
    /// window where both sides proceed and the scope's tasks are
    /// stranded — `tests/model_check.rs` explores exactly this race.
    fn acquire(shared: &'a Shared) -> Option<ScopeTicket<'a>> {
        shared.active_scopes.fetch_add(1, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::SeqCst) {
            let ticket = ScopeTicket { shared };
            drop(ticket); // decrement + re-wake via the Drop impl
            return None;
        }
        Some(ScopeTicket { shared })
    }
}

impl Drop for ScopeTicket<'_> {
    fn drop(&mut self) {
        self.shared.active_scopes.fetch_sub(1, Ordering::SeqCst);
        if self.shared.shutdown.load(Ordering::SeqCst) {
            // A shutdown waited for this scope: re-wake every worker
            // so the exit check runs again.
            for w in 0..self.shared.sleeps.len() {
                self.shared.bump(w);
            }
        }
    }
}

/// A fork-join scope over a running [`Executor`]. Closures spawned
/// here may borrow from the caller's stack; [`Executor::scope`] does
/// not return before every one of them has finished.
pub struct Scope<'scope> {
    shared: &'scope Shared,
    state: Arc<ScopeState>,
    /// Invariance over `'scope`: prevents the lifetime from being
    /// shortened under the spawned closures.
    _invariant: std::marker::PhantomData<std::cell::Cell<&'scope ()>>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a stealable task: it enters a socket injector and runs
    /// on whichever worker gets to it first.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let task = self.wrap(f);
        self.shared.push_stealable(task);
    }

    /// Spawns a task targeted at one worker: it goes into that
    /// worker's mailbox and is never stolen. This is how per-worker
    /// resources (arenas, first-touch windows, placement-ordered
    /// chunks) reach the thread pinned where the resource lives.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn spawn_on<F>(&self, worker: usize, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        assert!(
            worker < self.shared.ctxs.len(),
            "spawn_on: worker index out of range"
        );
        let task = self.wrap(f);
        self.shared.push_targeted(worker, task);
    }

    fn wrap<F>(&self, f: F) -> Task
    where
        F: FnOnce() + Send + 'scope,
    {
        self.shared.metrics.task_spawned();
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let metrics = Arc::clone(&self.shared.metrics);
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                metrics.task_panicked();
                let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = state.done.lock().unwrap_or_else(|e| e.into_inner());
                state.cv.notify_all();
            }
        });
        // SAFETY: the queues require `'static`, but `Executor::scope`
        // blocks until `pending` reaches zero before returning, so
        // every borrow captured by `f` strictly outlives the task.
        unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(boxed) }
    }
}

/// The persistent executor: long-lived placement-pinned workers,
/// per-socket injectors, per-worker deques, latency-ordered stealing.
pub struct Executor {
    shared: Arc<Shared>,
    /// Worker handles, behind a lock so [`Executor::shutdown`] works
    /// through `&self` (and can therefore race a `scope` from another
    /// thread — the handshake the model checker verifies).
    threads: Mutex<Vec<JoinHandle<()>>>,
    cfg: ExecCfg,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.shared.ctxs.len())
            .field("sockets", &self.shared.injectors.len())
            .field("os_pin", &self.cfg.os_pin)
            .finish()
    }
}

impl Executor {
    /// Arms an executor over a placement, with victim orders computed
    /// from the topology view's latencies.
    pub fn new(view: &TopoView, placement: &Placement) -> Executor {
        Self::with_cfg(Some(view), placement, ExecCfg::default())
    }

    /// Arms an executor from a placement alone (no view): workers and
    /// sockets still follow the placement slots, but steal orders fall
    /// back to worker-index order.
    pub fn from_placement(placement: &Placement) -> Executor {
        Self::with_cfg(None, placement, ExecCfg::default())
    }

    /// Arms an executor with explicit configuration. Counters are
    /// recorded into the process-global [`metrics::global`] handle; use
    /// [`Executor::with_metrics`] to record into a private one.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero or exceeds the placement
    /// capacity.
    pub fn with_cfg(view: Option<&TopoView>, placement: &Placement, cfg: ExecCfg) -> Executor {
        Self::with_metrics(view, placement, cfg, Arc::clone(metrics::global()))
    }

    /// Like [`Executor::with_cfg`], but records observability counters
    /// into the given [`Metrics`] handle instead of the process-global
    /// one — this is how tests and benchmarks get isolated counts
    /// (`Metrics::handle()` returns a fresh zeroed instance).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero or exceeds the placement
    /// capacity.
    pub fn with_metrics(
        view: Option<&TopoView>,
        placement: &Placement,
        cfg: ExecCfg,
        metrics: Arc<Metrics>,
    ) -> Executor {
        let capacity = placement.capacity();
        let n = cfg.workers.unwrap_or(capacity);
        assert!(n > 0 && n <= capacity, "worker count out of range");
        let slots: Vec<PinHandle> = placement.slots()[..n].to_vec();
        let hwcs: Vec<usize> = slots.iter().map(|h| h.hwc).collect();
        let ctxs: Vec<WorkerCtx> = slots
            .iter()
            .enumerate()
            .map(|(id, &pin)| WorkerCtx {
                id,
                n_workers: n,
                pin,
            })
            .collect();

        // One injector per socket, in slot-first-use order.
        let mut socket_ids: Vec<usize> = Vec::new();
        for h in &slots {
            if !socket_ids.contains(&h.socket) {
                socket_ids.push(h.socket);
            }
        }
        let home: Vec<usize> = slots
            .iter()
            .map(|h| {
                socket_ids
                    .iter()
                    .position(|&s| s == h.socket)
                    .expect("socket recorded above")
            })
            .collect();
        let injector_order: Vec<Vec<usize>> = (0..n)
            .map(|w| {
                let mut order: Vec<usize> = (0..socket_ids.len()).collect();
                order.sort_by_key(|&i| {
                    if i == home[w] {
                        return (false, 0, i);
                    }
                    // Distance to a socket: the closest worker on it.
                    let lat = match view {
                        Some(v) => (0..n)
                            .filter(|&j| home[j] == i)
                            .map(|j| v.get_latency(hwcs[w], hwcs[j]))
                            .min()
                            .unwrap_or(u32::MAX),
                        None => 0,
                    };
                    (true, lat, i)
                });
                order
            })
            .collect();

        let mut queues: Vec<StealPool<Task>> = match view {
            Some(v) => steal_queues_with_view(v, &hwcs),
            None => steal_queues_with_order(StealOrder::sequential(n)),
        };
        // Victim distance classes for the steal histogram: derived from
        // the view's socket map when we have one, otherwise every steal
        // lands in the `unclassified` bucket.
        let classes: Vec<Vec<StealClass>> = match view {
            Some(v) => steal_classes_with_view(v, &hwcs),
            None => vec![vec![StealClass::Unclassified; n]; n],
        };
        for (queue, row) in queues.iter_mut().zip(classes) {
            queue.attach_metrics(Arc::clone(&metrics), row);
        }

        metrics.exec_armed();
        let shared = Arc::new(Shared {
            ctxs,
            mailboxes: (0..n).map(|_| Injector::new()).collect(),
            injectors: (0..socket_ids.len()).map(|_| Injector::new()).collect(),
            injector_order,
            next_injector: AtomicUsize::new(0),
            next_wake: AtomicUsize::new(0),
            sleeps: (0..n).map(|_| WorkerSleep::new()).collect(),
            shutdown: AtomicBool::new(false),
            active_scopes: AtomicUsize::new(0),
            metrics,
        });

        let os_pin = cfg.os_pin && placement.pins();
        let threads = queues
            .into_iter()
            .enumerate()
            .map(|(i, queue)| {
                let shared = Arc::clone(&shared);
                let pin = os_pin.then_some(hwcs[i]);
                thread::Builder::new()
                    .name(format!("mctop-exec-{i}"))
                    .spawn(move || worker_loop(shared, i, queue, pin))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            shared,
            threads: Mutex::new(threads),
            cfg,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.shared.ctxs.len()
    }

    /// Whether the executor has no workers (never after arming; kept
    /// for idiom).
    pub fn is_empty(&self) -> bool {
        self.shared.ctxs.is_empty()
    }

    /// Per-worker contexts, in worker order.
    pub fn worker_ctxs(&self) -> &[WorkerCtx] {
        &self.shared.ctxs
    }

    /// Runs a fork-join scope: `f` may spawn any number of tasks that
    /// borrow from the caller's stack; the call returns only after all
    /// of them completed. A task panic is propagated to the caller
    /// after the remaining tasks finish.
    ///
    /// ```
    /// use mctop_place::{PlaceOpts, Placement, Policy};
    /// use mctop_runtime::{ExecCfg, Executor};
    ///
    /// let spec = mcsim::presets::synthetic_small();
    /// let mut prober = mctop::backend::SimProber::noiseless(&spec);
    /// let topo = mctop::infer(&mut prober, &mctop::ProbeConfig::fast()).unwrap();
    /// let view = mctop::view::TopoView::new(std::sync::Arc::new(topo));
    /// let placement =
    ///     Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(2)).unwrap();
    /// let exec = Executor::with_cfg(
    ///     Some(&view),
    ///     &placement,
    ///     ExecCfg { workers: None, os_pin: false },
    /// );
    ///
    /// // Tasks may borrow the caller's stack; the scope waits for all.
    /// let mut out = vec![0u64; 4];
    /// exec.scope(|s| {
    ///     for (i, slot) in out.iter_mut().enumerate() {
    ///         s.spawn(move || *slot = (i as u64) * 10);
    ///     }
    /// });
    /// assert_eq!(out, vec![0, 10, 20, 30]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the executor was explicitly shut down — there are no
    /// workers left, so spawned tasks could never run and the scope
    /// would hang instead. Use [`Executor::try_scope`] for a
    /// non-panicking variant (e.g. when racing a shutdown from another
    /// thread is expected).
    pub fn scope<'scope, R>(&'scope self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        match self.try_scope(f) {
            Ok(r) => r,
            Err(ExecutorShutdown) => panic!("scope on a shut-down executor"),
        }
    }

    /// Like [`Executor::scope`], but returns [`ExecutorShutdown`]
    /// instead of panicking when the executor has been shut down.
    ///
    /// Safe against a *concurrent* [`Executor::shutdown`]: the scope
    /// either loses the race and returns the error without having
    /// spawned anything, or wins and every task it spawns runs to
    /// completion before the workers exit (the shutdown-vs-spawn
    /// handshake is exhaustively explored in `tests/model_check.rs`).
    pub fn try_scope<'scope, R>(
        &'scope self,
        f: impl FnOnce(&Scope<'scope>) -> R,
    ) -> Result<R, ExecutorShutdown> {
        let ticket = match ScopeTicket::acquire(&self.shared) {
            Some(t) => t,
            None => return Err(ExecutorShutdown),
        };
        self.shared.metrics.scope_opened();
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            shared: &self.shared,
            state: Arc::clone(&state),
            _invariant: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait for every spawned task — even when `f` panicked, the
        // tasks still borrow the caller's stack and must drain first.
        // The last task notifies `state.cv` under `state.done`, and the
        // pending re-check below holds that lock, so a plain wait
        // cannot miss the completion; the timeout is a defensive
        // backstop only.
        while state.pending.load(Ordering::Acquire) > 0 {
            let g = state.done.lock().unwrap_or_else(|e| e.into_inner());
            if state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            let _ = state
                .cv
                .wait_timeout(g, Duration::from_millis(100))
                .map_err(|e| e.into_inner());
        }
        drop(ticket);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(r) => {
                let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(payload) = slot.take() {
                    resume_unwind(payload);
                }
                Ok(r)
            }
        }
    }

    /// Runs two closures in parallel and returns both results.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let mut ra = None;
        let mut rb = None;
        self.scope(|s| {
            s.spawn(|| ra = Some(a()));
            s.spawn(|| rb = Some(b()));
        });
        (
            ra.expect("join arm completed"),
            rb.expect("join arm completed"),
        )
    }

    /// Runs `f` once on every worker (targeted, in parallel) and
    /// collects the results in worker order.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(WorkerCtx) -> R + Sync,
        R: Send,
    {
        self.run_each(vec![(); self.len()], |ctx, ()| f(ctx))
    }

    /// Like [`Executor::run`], but moves one owned input into each
    /// worker: `inputs[i]` is processed by worker `i` on the thread
    /// pinned to placement slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the worker count.
    pub fn run_each<T, F, R>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        F: Fn(WorkerCtx, T) -> R + Sync,
        R: Send,
    {
        let n = self.len();
        assert_eq!(inputs.len(), n, "one input per worker required");
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        self.scope(|s| {
            for ((w, slot), input) in results.iter_mut().enumerate().zip(inputs) {
                let f = &f;
                let ctx = self.shared.ctxs[w];
                s.spawn_on(w, move || {
                    *slot = Some(f(ctx, input));
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("worker wrote its slot"))
            .collect()
    }

    /// Gracefully re-arms the executor over a new placement (e.g.
    /// after an OpenMP binding-policy switch): outstanding tasks
    /// drain, the old workers exit, and a fresh set is pinned to the
    /// new placement's slots. The original `ExecCfg` and [`Metrics`]
    /// handle are kept; a rearm bumps `rearms` and, because a fresh
    /// worker team is armed, `arms` as well.
    pub fn rearm(&mut self, view: Option<&TopoView>, placement: &Placement) {
        let cfg = self.cfg;
        let metrics = Arc::clone(&self.shared.metrics);
        self.shutdown();
        metrics.exec_rearmed();
        *self = Executor::with_metrics(view, placement, cfg, metrics);
    }

    /// The metrics handle this executor records into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// Graceful shutdown: workers finish everything already queued —
    /// including every task of a scope that won the race against this
    /// call — then exit and are joined. Idempotent, callable through
    /// `&self` from any thread; also runs on drop. A `scope` that
    /// starts after (or loses the race to) this call panics; a
    /// [`Executor::try_scope`] returns [`ExecutorShutdown`].
    pub fn shutdown(&self) {
        // Store-then-bump pairs with `ScopeTicket::acquire`'s
        // increment-then-load (both SeqCst): see that method.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in 0..self.shared.sleeps.len() {
            self.shared.bump(w);
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut g = self.threads.lock().unwrap_or_else(|e| e.into_inner());
            g.drain(..).collect()
        };
        for t in drained {
            let _ = t.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop_place::{
        PlaceOpts,
        Policy, //
    };
    use std::sync::atomic::AtomicU64;

    fn view() -> Arc<TopoView> {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        Arc::new(TopoView::new(Arc::new(topo)))
    }

    fn executor(threads: usize, policy: Policy) -> (Executor, Arc<TopoView>) {
        let v = view();
        let placement = Placement::with_view(&v, policy, PlaceOpts::threads(threads)).unwrap();
        let exec = Executor::with_cfg(
            Some(&v),
            &placement,
            ExecCfg {
                workers: None,
                os_pin: false,
            },
        );
        (exec, v)
    }

    #[test]
    fn scope_runs_every_task() {
        let (exec, _v) = executor(4, Policy::RrCore);
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        exec.scope(|s| {
            for h in &hits {
                s.spawn(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scope_tasks_borrow_the_stack() {
        let (exec, _v) = executor(2, Policy::ConHwc);
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        exec.scope(|s| {
            for (slot, &x) in out.iter_mut().zip(&data) {
                s.spawn(move || *slot = x * 10);
            }
        });
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn spawn_on_runs_on_the_right_worker() {
        let (exec, _v) = executor(4, Policy::RrCore);
        for _round in 0..3 {
            let mut seen = vec![usize::MAX; 4];
            let names: Vec<Option<String>> = {
                let mut names = vec![None; 4];
                exec.scope(|s| {
                    for (w, (slot, name)) in seen.iter_mut().zip(names.iter_mut()).enumerate() {
                        s.spawn_on(w, move || {
                            *slot = w;
                            *name = std::thread::current().name().map(str::to_owned);
                        });
                    }
                });
                names
            };
            assert_eq!(seen, vec![0, 1, 2, 3]);
            for (w, name) in names.iter().enumerate() {
                assert_eq!(
                    name.as_deref(),
                    Some(format!("mctop-exec-{w}").as_str()),
                    "targeted task ran on the wrong thread"
                );
            }
        }
    }

    #[test]
    fn run_each_moves_inputs_and_keeps_order() {
        let (exec, _v) = executor(4, Policy::ConHwc);
        let inputs: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64; i + 1]).collect();
        let out = exec.run_each(inputs, |ctx, v| {
            assert_eq!(v.len(), ctx.id + 1);
            v.iter().sum::<u64>()
        });
        assert_eq!(out, vec![0, 2, 6, 12]);
    }

    #[test]
    fn join_runs_both_sides() {
        let (exec, _v) = executor(2, Policy::RrCore);
        let (a, b) = exec.join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn single_worker_executor_completes_fanout() {
        let (exec, _v) = executor(1, Policy::ConHwc);
        let total = AtomicU64::new(0);
        exec.scope(|s| {
            for i in 0..50u64 {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.into_inner(), 49 * 50 / 2);
    }

    #[test]
    fn workers_see_placement_slots() {
        let v = view();
        let placement = Placement::with_view(&v, Policy::RrCore, PlaceOpts::threads(4)).unwrap();
        let expected: Vec<usize> = placement.order().to_vec();
        let exec = Executor::with_cfg(
            Some(&v),
            &placement,
            ExecCfg {
                workers: None,
                os_pin: false,
            },
        );
        let hwcs = exec.run(|ctx| ctx.hwc());
        assert_eq!(hwcs, expected);
    }

    #[test]
    fn executor_is_reusable_across_scopes() {
        let (exec, _v) = executor(3, Policy::BalanceHwc);
        for round in 0..10 {
            let out = exec.run(|ctx| ctx.n_workers + round);
            assert_eq!(out, vec![3 + round; 3]);
        }
    }

    #[test]
    fn rearm_switches_placement() {
        let v = view();
        let con = Placement::with_view(&v, Policy::ConHwc, PlaceOpts::threads(4)).unwrap();
        let rr = Placement::with_view(&v, Policy::RrCore, PlaceOpts::threads(4)).unwrap();
        let mut exec = Executor::with_cfg(
            Some(&v),
            &con,
            ExecCfg {
                workers: None,
                os_pin: false,
            },
        );
        assert_eq!(exec.run(|c| c.hwc()), con.order().to_vec());
        exec.rearm(Some(&v), &rr);
        assert_eq!(exec.run(|c| c.hwc()), rr.order().to_vec());
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let (exec, _v) = executor(2, Policy::ConHwc);
        let out = exec.run(|ctx| ctx.id);
        assert_eq!(out, vec![0, 1]);
        exec.shutdown();
        exec.shutdown();
    }

    #[test]
    #[should_panic(expected = "scope on a shut-down executor")]
    fn scope_after_shutdown_fails_fast() {
        let (exec, _v) = executor(2, Policy::ConHwc);
        exec.shutdown();
        // No workers are left; hanging forever would be the only other
        // outcome.
        let _ = exec.run(|ctx| ctx.id);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let (exec, _v) = executor(2, Policy::ConHwc);
        let done = AtomicU64::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                for i in 0..10 {
                    let done = &done;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(r.is_err());
        // All non-panicking siblings still ran.
        assert_eq!(done.into_inner(), 9);
        // And the executor survives for the next scope.
        assert_eq!(exec.run(|c| c.id), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "worker count out of range")]
    fn oversized_executor_rejected() {
        let v = view();
        let placement = Placement::with_view(&v, Policy::ConHwc, PlaceOpts::threads(2)).unwrap();
        let _ = Executor::with_cfg(
            Some(&v),
            &placement,
            ExecCfg {
                workers: Some(3),
                os_pin: false,
            },
        );
    }

    #[test]
    fn from_placement_without_view_works() {
        let v = view();
        let placement = Placement::with_view(&v, Policy::RrCore, PlaceOpts::threads(4)).unwrap();
        let exec = Executor::from_placement(&placement);
        let ids = exec.run(|ctx| ctx.id);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stealable_work_is_shared_under_contention() {
        // One slow task must not serialize the rest: with 4 workers,
        // 40 tasks of mixed cost finish even though they all enter
        // through the injectors.
        let (exec, _v) = executor(4, Policy::RrCore);
        let done = AtomicU64::new(0);
        exec.scope(|s| {
            for i in 0..40u64 {
                let done = &done;
                s.spawn(move || {
                    let mut x = i | 1;
                    let reps = if i == 0 { 200_000 } else { 200 };
                    for j in 0..reps {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(j);
                    }
                    std::hint::black_box(x);
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.into_inner(), 40);
    }
}
