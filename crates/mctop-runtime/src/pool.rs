//! A fork-join worker pool driven by an MCTOP placement.
//!
//! Each worker owns one placement slot: it knows its hardware context,
//! socket, core, and local node (the information Fig. 7's pinned
//! threads "have access to"), and — when the context id exists on the
//! host and the placement policy pins — the worker thread is bound to
//! that CPU with `sched_setaffinity`.

use std::sync::Arc;

use mctop_place::{
    pin_os_thread,
    PinHandle,
    Placement, //
};

/// What a worker knows about itself inside [`WorkerPool::run`].
#[derive(Debug, Clone, Copy)]
pub struct WorkerCtx {
    /// Worker index (0-based, dense).
    pub id: usize,
    /// Total workers in this pool.
    pub n_workers: usize,
    /// The placement slot this worker occupies.
    pub pin: PinHandle,
}

impl WorkerCtx {
    /// The worker's hardware context OS id.
    pub fn hwc(&self) -> usize {
        self.pin.hwc
    }

    /// The worker's socket.
    pub fn socket(&self) -> usize {
        self.pin.socket
    }
}

/// A placement-backed fork-join pool.
///
/// `run` spawns one scoped thread per placement slot, each virtually
/// pinned to its hardware context (and OS-pinned when possible), and
/// returns all results in worker order. Spawning per call keeps the
/// pool safe for borrowed closures; the workloads in this repository
/// run long enough that spawn cost is noise.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    placement: Arc<Placement>,
    n_workers: usize,
    os_pin: bool,
}

impl WorkerPool {
    /// A pool with one worker per placement slot.
    pub fn new(placement: Arc<Placement>) -> Self {
        let n = placement.capacity();
        WorkerPool {
            placement,
            n_workers: n,
            os_pin: true,
        }
    }

    /// A pool with the first `n` slots of the placement.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the placement capacity or is zero.
    pub fn with_workers(placement: Arc<Placement>, n: usize) -> Self {
        assert!(
            n > 0 && n <= placement.capacity(),
            "worker count out of range"
        );
        WorkerPool {
            placement,
            n_workers: n,
            os_pin: true,
        }
    }

    /// Disables OS-level pinning (virtual placement only). Useful when
    /// the simulated machine has more contexts than the host.
    pub fn without_os_pinning(mut self) -> Self {
        self.os_pin = false;
        self
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.n_workers
    }

    /// Whether the pool has no workers (never true; kept for idiom).
    pub fn is_empty(&self) -> bool {
        self.n_workers == 0
    }

    /// The placement backing this pool.
    pub fn placement(&self) -> &Arc<Placement> {
        &self.placement
    }

    /// Runs `f` on every worker and collects the results in worker
    /// order. The closure may borrow from the caller's stack.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(WorkerCtx) -> R + Sync,
        R: Send,
    {
        self.run_each(vec![(); self.n_workers], |ctx, ()| f(ctx))
    }

    /// Like [`WorkerPool::run`], but moves one owned input into each
    /// worker: `inputs[i]` goes to worker `i`. This is how per-worker
    /// resources — most importantly the memory arenas provisioned by
    /// `mctop-alloc` — reach the thread that is pinned where the
    /// resource lives, without shared-state synchronization.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the worker count.
    pub fn run_each<T, F, R>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        F: Fn(WorkerCtx, T) -> R + Sync,
        R: Send,
    {
        assert_eq!(
            inputs.len(),
            self.n_workers,
            "one input per worker required"
        );
        let handles: Vec<PinHandle> = (0..self.n_workers)
            .map(|_| {
                self.placement
                    .pin()
                    .expect("pool sized to placement capacity")
            })
            .collect();
        let n = self.n_workers;
        let os_pin = self.os_pin && self.placement.pins();
        let host_cpus = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        std::thread::scope(|scope| {
            let mut join = Vec::with_capacity(n);
            for (id, ((pin, slot), input)) in handles
                .iter()
                .zip(results.iter_mut())
                .zip(inputs)
                .enumerate()
            {
                let f = &f;
                let pin = *pin;
                join.push(scope.spawn(move || {
                    // OS pinning is best-effort: simulated machines can
                    // have more contexts than the host has CPUs.
                    if os_pin && pin.hwc < host_cpus {
                        let _ = pin_os_thread(pin.hwc);
                    }
                    *slot = Some(f(
                        WorkerCtx {
                            id,
                            n_workers: n,
                            pin,
                        },
                        input,
                    ));
                }));
            }
            for j in join {
                j.join().expect("worker panicked");
            }
        });
        for pin in handles {
            self.placement.unpin(pin);
        }
        results
            .into_iter()
            .map(|r| r.expect("worker wrote its slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop_place::{
        PlaceOpts,
        Policy, //
    };

    fn placement(threads: usize, policy: Policy) -> Arc<Placement> {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        Arc::new(Placement::new(&topo, policy, PlaceOpts::threads(threads)).unwrap())
    }

    #[test]
    fn run_returns_results_in_worker_order() {
        let pool = WorkerPool::new(placement(4, Policy::ConHwc)).without_os_pinning();
        let out = pool.run(|ctx| ctx.id * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn workers_see_their_placement_slots() {
        let p = placement(4, Policy::ConHwc);
        let expected: Vec<usize> = p.order().to_vec();
        let pool = WorkerPool::new(Arc::clone(&p)).without_os_pinning();
        let hwcs = pool.run(|ctx| ctx.hwc());
        // Workers collectively occupy exactly the placement order.
        let mut sorted = hwcs.clone();
        sorted.sort_unstable();
        let mut exp_sorted = expected;
        exp_sorted.sort_unstable();
        assert_eq!(sorted, exp_sorted);
    }

    #[test]
    fn pool_is_reusable_and_releases_slots() {
        let p = placement(2, Policy::RrCore);
        let pool = WorkerPool::new(Arc::clone(&p)).without_os_pinning();
        for _ in 0..5 {
            let out = pool.run(|ctx| ctx.n_workers);
            assert_eq!(out, vec![2, 2]);
        }
        // All slots free afterwards.
        let h = p.pin().unwrap();
        p.unpin(h);
    }

    #[test]
    fn borrowed_state_is_visible() {
        let pool = WorkerPool::new(placement(4, Policy::BalanceHwc)).without_os_pinning();
        let data = [1u64, 2, 3, 4];
        let sums = pool.run(|ctx| data[ctx.id]);
        assert_eq!(sums.iter().sum::<u64>(), 10);
    }

    #[test]
    fn with_workers_subset() {
        let pool = WorkerPool::with_workers(placement(4, Policy::ConHwc), 2).without_os_pinning();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.run(|c| c.id).len(), 2);
    }

    #[test]
    #[should_panic(expected = "worker count out of range")]
    fn oversized_pool_rejected() {
        let _ = WorkerPool::with_workers(placement(2, Policy::ConHwc), 3);
    }

    #[test]
    fn run_each_moves_one_input_per_worker() {
        let pool = WorkerPool::new(placement(4, Policy::ConHwc)).without_os_pinning();
        let inputs: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64; i + 1]).collect();
        let out = pool.run_each(inputs, |ctx, v| {
            assert_eq!(v.len(), ctx.id + 1);
            v.iter().sum::<u64>()
        });
        assert_eq!(out, vec![0, 2, 6, 12]);
    }

    #[test]
    #[should_panic(expected = "one input per worker")]
    fn run_each_rejects_wrong_input_count() {
        let pool = WorkerPool::new(placement(2, Policy::ConHwc)).without_os_pinning();
        let _ = pool.run_each(vec![1u8], |_, _| ());
    }
}
