//! A fork-join worker pool driven by an MCTOP placement.
//!
//! Each worker owns one placement slot: it knows its hardware context,
//! socket, core, and local node (the information Fig. 7's pinned
//! threads "have access to"), and — when the context id exists on the
//! host and the placement policy pins — the worker thread is bound to
//! that CPU with `sched_setaffinity`.
//!
//! Since the executor refactor, `WorkerPool` is a thin facade over the
//! persistent [`crate::executor::Executor`]: the first `run`/`run_each`
//! arms long-lived pinned workers, and every later call dispatches to
//! them instead of spawning a fresh `std::thread::scope`. The API (and
//! its determinism: results in worker order, `inputs[i]` to worker
//! `i`) is unchanged.

use std::sync::Arc;

// `OnceLock` comes from the cfg-switched facade: `std::sync::OnceLock`
// by default, a tracked shim under `--features model-check` (the std
// one would block losers of the init race in the OS, invisibly to the
// model's scheduler — see `crate::sync`).
use crate::sync::OnceLock;

use mctop_place::Placement;

use crate::executor::{
    ExecCfg,
    Executor, //
};

pub use crate::executor::WorkerCtx;

/// A placement-backed fork-join pool.
///
/// `run` executes one task per placement slot on the pool's persistent
/// executor workers (each virtually pinned to its hardware context,
/// and OS-pinned when possible) and returns all results in worker
/// order. Clones share the same executor.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    placement: Arc<Placement>,
    n_workers: usize,
    os_pin: bool,
    exec: Arc<OnceLock<Executor>>,
}

impl WorkerPool {
    /// A pool with one worker per placement slot.
    pub fn new(placement: Arc<Placement>) -> Self {
        let n = placement.capacity();
        WorkerPool {
            placement,
            n_workers: n,
            os_pin: true,
            exec: Arc::new(OnceLock::new()),
        }
    }

    /// A pool with the first `n` slots of the placement.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the placement capacity or is zero.
    pub fn with_workers(placement: Arc<Placement>, n: usize) -> Self {
        assert!(
            n > 0 && n <= placement.capacity(),
            "worker count out of range"
        );
        WorkerPool {
            placement,
            n_workers: n,
            os_pin: true,
            exec: Arc::new(OnceLock::new()),
        }
    }

    /// Disables OS-level pinning (virtual placement only). Useful when
    /// the simulated machine has more contexts than the host.
    pub fn without_os_pinning(mut self) -> Self {
        self.os_pin = false;
        // Any already-armed executor was pinned; detach from it (its
        // workers shut down when the last clone drops).
        self.exec = Arc::new(OnceLock::new());
        self
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.n_workers
    }

    /// Whether the pool has no workers (never true; kept for idiom).
    pub fn is_empty(&self) -> bool {
        self.n_workers == 0
    }

    /// The placement backing this pool.
    pub fn placement(&self) -> &Arc<Placement> {
        &self.placement
    }

    /// The persistent executor behind this pool, armed on first use.
    /// Workload crates that want the full `scope`/`spawn` API (instead
    /// of the `run`/`run_each` facade) reach it here.
    pub fn executor(&self) -> &Executor {
        self.exec.get_or_init(|| {
            Executor::with_cfg(
                None,
                &self.placement,
                ExecCfg {
                    workers: Some(self.n_workers),
                    os_pin: self.os_pin,
                },
            )
        })
    }

    /// Runs `f` on every worker and collects the results in worker
    /// order. The closure may borrow from the caller's stack.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(WorkerCtx) -> R + Sync,
        R: Send,
    {
        self.run_each(vec![(); self.n_workers], |ctx, ()| f(ctx))
    }

    /// Like [`WorkerPool::run`], but moves one owned input into each
    /// worker: `inputs[i]` goes to worker `i`. This is how per-worker
    /// resources — most importantly the memory arenas provisioned by
    /// `mctop-alloc` — reach the thread that is pinned where the
    /// resource lives, without shared-state synchronization.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the worker count.
    pub fn run_each<T, F, R>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        F: Fn(WorkerCtx, T) -> R + Sync,
        R: Send,
    {
        assert_eq!(
            inputs.len(),
            self.n_workers,
            "one input per worker required"
        );
        self.executor().run_each(inputs, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop_place::{
        PlaceOpts,
        Policy, //
    };

    fn placement(threads: usize, policy: Policy) -> Arc<Placement> {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        Arc::new(Placement::new(&topo, policy, PlaceOpts::threads(threads)).unwrap())
    }

    #[test]
    fn run_returns_results_in_worker_order() {
        let pool = WorkerPool::new(placement(4, Policy::ConHwc)).without_os_pinning();
        let out = pool.run(|ctx| ctx.id * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn workers_see_their_placement_slots() {
        let p = placement(4, Policy::ConHwc);
        let expected: Vec<usize> = p.order().to_vec();
        let pool = WorkerPool::new(Arc::clone(&p)).without_os_pinning();
        let hwcs = pool.run(|ctx| ctx.hwc());
        // Workers collectively occupy exactly the placement order.
        let mut sorted = hwcs.clone();
        sorted.sort_unstable();
        let mut exp_sorted = expected;
        exp_sorted.sort_unstable();
        assert_eq!(sorted, exp_sorted);
    }

    #[test]
    fn pool_is_reusable_and_releases_slots() {
        let p = placement(2, Policy::RrCore);
        let pool = WorkerPool::new(Arc::clone(&p)).without_os_pinning();
        for _ in 0..5 {
            let out = pool.run(|ctx| ctx.n_workers);
            assert_eq!(out, vec![2, 2]);
        }
        // The executor reads slot data without claiming, so the
        // placement's pin/unpin slots stay free for other users.
        let h = p.pin().unwrap();
        p.unpin(h);
    }

    #[test]
    fn clones_share_one_executor() {
        let pool = WorkerPool::new(placement(2, Policy::ConHwc)).without_os_pinning();
        let a: *const Executor = pool.executor();
        let clone = pool.clone();
        let b: *const Executor = clone.executor();
        assert_eq!(a, b);
        assert_eq!(clone.run(|c| c.id), vec![0, 1]);
    }

    #[test]
    fn borrowed_state_is_visible() {
        let pool = WorkerPool::new(placement(4, Policy::BalanceHwc)).without_os_pinning();
        let data = [1u64, 2, 3, 4];
        let sums = pool.run(|ctx| data[ctx.id]);
        assert_eq!(sums.iter().sum::<u64>(), 10);
    }

    #[test]
    fn with_workers_subset() {
        let pool = WorkerPool::with_workers(placement(4, Policy::ConHwc), 2).without_os_pinning();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.run(|c| c.id).len(), 2);
    }

    #[test]
    #[should_panic(expected = "worker count out of range")]
    fn oversized_pool_rejected() {
        let _ = WorkerPool::with_workers(placement(2, Policy::ConHwc), 3);
    }

    #[test]
    fn run_each_moves_one_input_per_worker() {
        let pool = WorkerPool::new(placement(4, Policy::ConHwc)).without_os_pinning();
        let inputs: Vec<Vec<u64>> = (0..4).map(|i| vec![i as u64; i + 1]).collect();
        let out = pool.run_each(inputs, |ctx, v| {
            assert_eq!(v.len(), ctx.id + 1);
            v.iter().sum::<u64>()
        });
        assert_eq!(out, vec![0, 2, 6, 12]);
    }

    #[test]
    #[should_panic(expected = "one input per worker")]
    fn run_each_rejects_wrong_input_count() {
        let pool = WorkerPool::new(placement(2, Policy::ConHwc)).without_os_pinning();
        let _ = pool.run_each(vec![1u8], |_, _| ());
    }
}
