//! A deterministic-interleaving explorer for the runtime's
//! synchronization protocols (compiled only under the `model-check`
//! feature).
//!
//! This is an in-repo, dependency-free model checker in the shape of
//! `loom`/`shuttle`: code under test runs on real OS threads, but a
//! cooperative token scheduler admits exactly **one** thread at a time,
//! and every operation on a tracked primitive ([`shim`]) is a *choice
//! point* where the scheduler may hand the token to a different thread.
//! A whole execution is therefore reproducible from the sequence of
//! scheduling decisions alone, which enables:
//!
//! - [`explore`]: **bounded exhaustive DFS** over schedules. Every
//!   decision records how many threads were runnable; after each
//!   execution the controller backtracks to the deepest decision with
//!   an untried alternative (subject to the preemption bound) and
//!   replays. With a preemption bound of `k`, every schedule that
//!   differs from run-to-completion by at most `k` forced context
//!   switches is explored — the CHESS result: almost all real
//!   concurrency bugs manifest within 2 preemptions.
//! - [`explore_random`]: **seed-replayable random walks** for state
//!   spaces too large to exhaust. Each walk draws every decision from
//!   a deterministic LCG; a failure reports the walk's seed *and* its
//!   decision trace, either of which reproduces the interleaving
//!   exactly.
//! - [`replay`]: re-run one decision trace (as printed by a failure)
//!   under a debugger or with extra logging.
//!
//! # Failure detection
//!
//! An execution fails when (a) any thread panics (the first real panic
//! message is the verdict), (b) **deadlock**: every live thread is
//! blocked — this is how a lost wakeup surfaces, because the shim's
//! `Condvar::wait_timeout` never times out, or (c) the per-execution
//! step bound trips (livelock). On failure the model is poisoned:
//! blocked threads are woken and unwind with a private [`TearDown`]
//! panic so every OS thread exits before the failure is reported.
//!
//! # What is explored
//!
//! Interleavings at sequential consistency (like `shuttle`): lost
//! wakeups, lost tasks, double execution, ordering races between
//! protocol steps. Weak-memory reorderings are out of scope. Spin
//! loops are handled by deprioritizing a thread that executes a
//! [`shim::spin_loop`] hint until every other runnable thread has had
//! the token.

pub mod shim;

use std::any::Any;
use std::cell::RefCell;
use std::sync::{
    Arc,
    Condvar as StdCondvar,
    Mutex as StdMutex, //
};

/// Sentinel panic payload used to unwind threads of a poisoned
/// (already-failed) execution; never reported as a failure itself.
pub(crate) struct TearDown;

/// What a live thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wait {
    /// Blocked acquiring the tracked mutex with this key.
    Mutex(usize),
    /// Blocked in a wait on the tracked condvar with this key.
    Condvar(usize),
    /// Blocked joining the model thread with this id.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Run {
    Runnable,
    Blocked(Wait),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    run: Run,
    /// Set by a spin hint: the thread is not rescheduled until every
    /// other runnable thread has had the token (spin-loop fairness).
    yielded: bool,
}

/// One scheduling decision of an execution: which of the enabled
/// threads got the token.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    /// Index into the enabled list that was chosen.
    chosen: usize,
    /// How many threads were enabled.
    n_enabled: usize,
    /// Whether the previously-running thread was *not* among the
    /// enabled (a forced switch: choosing any thread costs nothing).
    free: bool,
}

struct Inner {
    threads: Vec<ThreadState>,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    /// Token holder (usize::MAX once every thread finished).
    current: usize,
    steps: usize,
    max_steps: usize,
    /// Replayed decision prefix (indices into each enabled list).
    prefix: Vec<usize>,
    cursor: usize,
    /// LCG state for random-walk mode (`None` = DFS/replay mode).
    rng: Option<u64>,
    trace: Vec<Decision>,
    failure: Option<String>,
    poisoned: bool,
}

/// Shared state of one execution; every model thread holds an Arc.
pub(crate) struct Model {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Model>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it is a model thread.
pub(crate) fn ctx() -> Option<(Arc<Model>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(model: Arc<Model>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((model, tid)));
}

fn lcg_next(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Model {
    fn new(prefix: Vec<usize>, rng: Option<u64>, max_steps: usize) -> Arc<Model> {
        Arc::new(Model {
            inner: StdMutex::new(Inner {
                threads: Vec::new(),
                os_handles: Vec::new(),
                current: 0,
                steps: 0,
                max_steps,
                prefix,
                cursor: 0,
                rng,
                trace: Vec::new(),
                failure: None,
                poisoned: false,
            }),
            cv: StdCondvar::new(),
        })
    }

    /// Registers a new model thread (Runnable, no OS handle yet).
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.threads.push(ThreadState {
            run: Run::Runnable,
            yielded: false,
        });
        g.os_handles.push(None);
        g.threads.len() - 1
    }

    pub(crate) fn store_handle(&self, tid: usize, h: std::thread::JoinHandle<()>) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.os_handles[tid] = Some(h);
    }

    /// Marks a registered thread that never got an OS thread (spawn
    /// failure) as finished, so the execution can still complete.
    pub(crate) fn mark_finished_stillborn(&self, tid: usize) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.threads[tid].run = Run::Finished;
    }

    /// Blocks a *non-model* thread until model thread `tid` finishes.
    pub(crate) fn wait_finished_external(&self, tid: usize) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while g.threads[tid].run != Run::Finished {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks every thread blocked on `wait` runnable (the waker keeps
    /// the token; the woken threads become schedulable at the next
    /// choice point). With `only_one`, wakes at most the lowest tid.
    pub(crate) fn mark_runnable(&self, wait: Wait, only_one: bool) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for t in g.threads.iter_mut() {
            if t.run == Run::Blocked(wait) {
                t.run = Run::Runnable;
                if only_one {
                    break;
                }
            }
        }
    }

    /// Whether the model thread `tid` has finished.
    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.threads[tid].run == Run::Finished
    }

    fn fail_locked(g: &mut Inner, msg: String) {
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        g.poisoned = true;
        // Unblock everything so the execution can tear itself down:
        // each woken thread panics `TearDown` at its next choice point.
        for t in g.threads.iter_mut() {
            if matches!(t.run, Run::Blocked(_)) {
                t.run = Run::Runnable;
            }
        }
    }

    /// The scheduler: records `me`'s new state, picks the next token
    /// holder, and (unless `me` keeps the token or finished) blocks
    /// until the token comes back. Every call is one model step and at
    /// most one recorded decision.
    pub(crate) fn transfer(self: &Arc<Model>, me: usize, new_run: Run, set_yielded: bool) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(g.current, me, "transfer by a thread without the token");
        g.threads[me].run = new_run;
        if set_yielded {
            g.threads[me].yielded = true;
        }
        g.steps += 1;
        if g.steps > g.max_steps && !g.poisoned {
            let max = g.max_steps;
            Model::fail_locked(
                &mut g,
                format!("execution exceeded {max} scheduler steps (livelock?)"),
            );
        }

        // Enabled set: runnable threads, preferring ones that have not
        // spin-yielded; `me` first (index 0 = "continue, no preemption").
        let mut enabled = Model::enabled_locked(&mut g, me);
        if enabled.is_empty() {
            if g.threads.iter().all(|t| t.run == Run::Finished) {
                // Execution over: release every waiter (the controller
                // waits for this state too).
                g.current = usize::MAX;
                drop(g);
                self.cv.notify_all();
                return;
            }
            let states: Vec<String> = g
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("t{i}:{:?}", t.run))
                .collect();
            Model::fail_locked(
                &mut g,
                format!(
                    "deadlock: every live thread is blocked [{}]",
                    states.join(" ")
                ),
            );
            enabled = Model::enabled_locked(&mut g, me);
            if enabled.is_empty() {
                // Nothing left to wake (all finished racing the poison).
                g.current = usize::MAX;
                drop(g);
                self.cv.notify_all();
                return;
            }
        }

        // Decide who runs next. Forced moves (one candidate) are not
        // decisions: they are skipped identically on record and replay.
        let free = enabled[0] != me || g.threads[me].run != Run::Runnable;
        let idx = if enabled.len() == 1 {
            0
        } else if g.cursor < g.prefix.len() {
            let i = g.prefix[g.cursor];
            if i >= enabled.len() {
                let msg = format!(
                    "replay diverged: decision {} chose {} of {} enabled \
                     (nondeterministic execution?)",
                    g.cursor,
                    i,
                    enabled.len()
                );
                Model::fail_locked(&mut g, msg);
                0
            } else {
                i
            }
        } else if let Some(rng) = g.rng.as_mut() {
            (lcg_next(rng) as usize) % enabled.len()
        } else {
            0
        };
        if enabled.len() > 1 {
            let n_enabled = enabled.len();
            g.trace.push(Decision {
                chosen: idx,
                n_enabled,
                free,
            });
            g.cursor += 1;
        }
        let next = enabled[idx];
        g.current = next;
        let poisoned = g.poisoned;
        drop(g);
        self.cv.notify_all();

        if next == me {
            if poisoned && !std::thread::panicking() {
                std::panic::panic_any(TearDown);
            }
            return;
        }
        if new_run == Run::Finished {
            return;
        }
        self.wait_for_token(me);
    }

    fn enabled_locked(g: &mut Inner, me: usize) -> Vec<usize> {
        let runnable: Vec<usize> = (0..g.threads.len())
            .filter(|&i| g.threads[i].run == Run::Runnable)
            .collect();
        let fresh: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&i| !g.threads[i].yielded)
            .collect();
        let mut set = if fresh.is_empty() {
            // Every runnable thread has spin-yielded: clear the flags
            // and let them all compete again.
            for t in g.threads.iter_mut() {
                t.yielded = false;
            }
            runnable
        } else {
            fresh
        };
        if let Some(pos) = set.iter().position(|&i| i == me) {
            set.swap(0, pos);
            set[1..].sort_unstable();
        }
        set
    }

    /// Blocks the OS thread until `tid` holds the token again (or the
    /// model is poisoned, in which case the thread unwinds).
    pub(crate) fn wait_for_token(self: &Arc<Model>, tid: usize) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while g.current != tid {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        let poisoned = g.poisoned;
        drop(g);
        if poisoned && !std::thread::panicking() {
            std::panic::panic_any(TearDown);
        }
    }

    /// Marks `me` finished, records a real panic as the execution's
    /// failure, wakes joiners, and passes the token on.
    pub(crate) fn finish_thread(self: &Arc<Model>, me: usize, real_panic: Option<String>) {
        {
            let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = real_panic {
                if g.failure.is_none() {
                    Model::fail_locked(&mut g, format!("thread t{me} panicked: {msg}"));
                } else {
                    g.poisoned = true;
                }
            }
            for t in g.threads.iter_mut() {
                if t.run == Run::Blocked(Wait::Join(me)) {
                    t.run = Run::Runnable;
                }
            }
        }
        self.transfer(me, Run::Finished, false);
    }

    fn wait_all_finished(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while !g.threads.iter().all(|t| t.run == Run::Finished) {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A model thread's handle on the scheduler, used by the [`shim`]
/// primitives.
pub(crate) struct Ctx {
    pub(crate) model: Arc<Model>,
    pub(crate) tid: usize,
}

impl Ctx {
    /// The calling thread's context, if it is a model thread.
    pub(crate) fn current() -> Option<Ctx> {
        ctx().map(|(model, tid)| Ctx { model, tid })
    }

    /// A plain choice point: the scheduler may switch threads here.
    pub(crate) fn yield_point(&self) {
        self.model.transfer(self.tid, Run::Runnable, false);
    }

    /// A spin hint: like [`Ctx::yield_point`], but the thread is
    /// deprioritized until other runnable threads have had the token.
    pub(crate) fn spin_yield(&self) {
        self.model.transfer(self.tid, Run::Runnable, true);
    }

    /// Blocks the model thread on `wait`; returns once some event has
    /// marked it runnable and the scheduler handed the token back.
    pub(crate) fn block_on(&self, wait: Wait) {
        self.model.transfer(self.tid, Run::Blocked(wait), false);
    }
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelCfg {
    /// DFS: maximum forced context switches away from a still-runnable
    /// thread per schedule (`None` = unbounded — only tractable for
    /// tiny programs). Random walks ignore the bound.
    pub preemption_bound: Option<usize>,
    /// DFS: stop (with [`Coverage::CapReached`]) after this many
    /// schedules even if alternatives remain.
    pub max_schedules: usize,
    /// Per-execution scheduler-step bound; exceeding it fails the
    /// schedule as a livelock.
    pub max_steps: usize,
}

impl Default for ModelCfg {
    fn default() -> Self {
        ModelCfg {
            preemption_bound: Some(2),
            max_schedules: 50_000,
            max_steps: 20_000,
        }
    }
}

/// How an [`explore`] call ended (it panics instead on any failing
/// schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Every schedule within the preemption bound was explored.
    Exhaustive {
        /// Number of schedules executed.
        schedules: usize,
    },
    /// The schedule cap was hit with alternatives still unexplored.
    CapReached {
        /// Number of schedules executed.
        schedules: usize,
    },
}

impl Coverage {
    /// Number of schedules executed.
    pub fn schedules(&self) -> usize {
        match *self {
            Coverage::Exhaustive { schedules } | Coverage::CapReached { schedules } => schedules,
        }
    }
}

fn trace_string(trace: &[Decision]) -> String {
    trace
        .iter()
        .map(|d| d.chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Runs the closure once under the scheduler with the given decision
/// prefix (DFS/replay) or RNG seed (random walk); returns the full
/// decision trace and the failure, if any.
fn run_one(
    f: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    rng: Option<u64>,
    max_steps: usize,
) -> (Vec<Decision>, Option<String>) {
    let model = Model::new(prefix, rng, max_steps);
    let root = model.register_thread();
    debug_assert_eq!(root, 0);
    let os = {
        let model = Arc::clone(&model);
        let f = Arc::clone(f);
        std::thread::Builder::new()
            .name("mctop-model-root".into())
            .spawn(move || {
                set_ctx(Arc::clone(&model), root);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    model.wait_for_token(root);
                    f();
                }));
                let real_panic = match &result {
                    Ok(()) => None,
                    Err(p) if p.is::<TearDown>() => None,
                    Err(p) => Some(panic_message(p.as_ref())),
                };
                model.finish_thread(root, real_panic);
            })
            .expect("spawn model root thread")
    };
    model.store_handle(root, os);
    model.wait_all_finished();
    // Join every OS thread of this execution before reporting, so no
    // stale thread leaks into the next schedule.
    let handles: Vec<std::thread::JoinHandle<()>> = {
        let mut g = model.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.os_handles.iter_mut().filter_map(Option::take).collect()
    };
    for h in handles {
        let _ = h.join();
    }
    let g = model.inner.lock().unwrap_or_else(|e| e.into_inner());
    (g.trace.clone(), g.failure.clone())
}

fn preemptions_used(trace: &[Decision]) -> usize {
    trace.iter().filter(|d| !d.free && d.chosen != 0).count()
}

fn fail(kind: &str, schedules: usize, trace: &[Decision], failure: &str, seed: Option<u64>) -> ! {
    let trace = trace_string(trace);
    let seed_line = match seed {
        Some(s) => format!("\n  seed: {s}"),
        None => String::new(),
    };
    panic!(
        "model check failed ({kind}, schedule {schedules}): {failure}{seed_line}\n  \
         decision trace: \"{trace}\"\n  \
         reproduce with mctop_runtime::sync::model::replay(cfg, \"{trace}\", f)"
    );
}

/// Bounded exhaustive DFS over schedules of `f`.
///
/// Panics on the first failing schedule with the failure, the decision
/// trace, and replay instructions. Returns how much of the bounded
/// space was covered. The closure runs many times and must be
/// self-contained: build the system under test inside it, tear it down
/// before returning, and keep shared captures read-only.
pub fn explore(cfg: &ModelCfg, f: impl Fn() + Send + Sync + 'static) -> Coverage {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let bound = cfg.preemption_bound.unwrap_or(usize::MAX);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let (trace, failure) = run_one(&f, prefix.clone(), None, cfg.max_steps);
        schedules += 1;
        if let Some(msg) = failure {
            fail("exhaustive DFS", schedules, &trace, &msg, None);
        }
        if schedules >= cfg.max_schedules {
            return Coverage::CapReached { schedules };
        }
        // Backtrack: deepest decision with an untried alternative that
        // the preemption budget along its prefix still allows.
        let mut i = trace.len();
        let next = loop {
            if i == 0 {
                break None;
            }
            i -= 1;
            let d = trace[i];
            let j = d.chosen + 1;
            if j < d.n_enabled && (d.free || preemptions_used(&trace[..i]) < bound) {
                break Some((i, j));
            }
        };
        match next {
            None => return Coverage::Exhaustive { schedules },
            Some((i, j)) => {
                prefix = trace[..i].iter().map(|d| d.chosen).collect();
                prefix.push(j);
            }
        }
    }
}

/// `walks` seed-replayable random schedules of `f` (decisions drawn
/// from an LCG seeded with `seed`, `seed+1`, ...). The fallback for
/// state spaces too large for [`explore`]: no preemption bound, broad
/// coverage, and a failure panics with both the walk's seed and its
/// decision trace.
pub fn explore_random(
    cfg: &ModelCfg,
    seed: u64,
    walks: usize,
    f: impl Fn() + Send + Sync + 'static,
) {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    for walk in 0..walks {
        let s = seed.wrapping_add(walk as u64);
        let (trace, failure) = run_one(&f, Vec::new(), Some(s), cfg.max_steps);
        if let Some(msg) = failure {
            fail("random walk", walk + 1, &trace, &msg, Some(s));
        }
    }
}

/// Re-runs one schedule from a failure's printed decision trace (e.g.
/// `"0.2.1"`). Panics with the reproduced failure; completes silently
/// if the trace no longer fails.
pub fn replay(cfg: &ModelCfg, trace: &str, f: impl Fn() + Send + Sync + 'static) {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let prefix: Vec<usize> = trace
        .split('.')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .expect("decision traces are dot-separated integers")
        })
        .collect();
    let (got, failure) = run_one(&f, prefix, None, cfg.max_steps);
    if let Some(msg) = failure {
        fail("replay", 1, &got, &msg, None);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::Arc;

    use super::shim;
    use super::*;

    /// Extracts the printed decision trace from a failure panic.
    fn trace_of(panic_msg: &str) -> String {
        let start = panic_msg
            .find("decision trace: \"")
            .expect("failure prints a decision trace")
            + "decision trace: \"".len();
        let end = panic_msg[start..].find('"').unwrap() + start;
        panic_msg[start..end].to_string()
    }

    fn catch_failure(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(f).expect_err("model check should fail");
        panic_message(err.as_ref())
    }

    /// Two threads doing a racy load-then-store increment: exhaustive
    /// DFS must find the lost update.
    fn racy_increment() {
        let a = Arc::new(shim::AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                shim::spawn(move || {
                    let v = a.load(SeqCst);
                    a.store(v + 1, SeqCst);
                })
            })
            .collect();
        for t in ts {
            t.join().unwrap();
        }
        assert_eq!(a.load(SeqCst), 2, "lost update");
    }

    #[test]
    fn exhaustive_finds_lost_update() {
        let msg = catch_failure(|| {
            explore(&ModelCfg::default(), racy_increment);
        });
        assert!(msg.contains("lost update"), "unexpected failure: {msg}");
        assert!(msg.contains("decision trace"), "no trace in: {msg}");
    }

    #[test]
    fn replay_reproduces_failure() {
        let msg = catch_failure(|| {
            explore(&ModelCfg::default(), racy_increment);
        });
        let trace = trace_of(&msg);
        let msg2 = catch_failure(move || {
            replay(&ModelCfg::default(), &trace, racy_increment);
        });
        assert!(msg2.contains("lost update"), "replay diverged: {msg2}");
    }

    #[test]
    fn random_walks_find_lost_update() {
        let msg = catch_failure(|| {
            explore_random(&ModelCfg::default(), 42, 500, racy_increment);
        });
        assert!(msg.contains("lost update"), "unexpected failure: {msg}");
        assert!(msg.contains("seed:"), "no seed in: {msg}");
    }

    /// The same increment with a proper RMW passes exhaustively.
    #[test]
    fn atomic_increment_is_exhaustively_clean() {
        let cov = explore(&ModelCfg::default(), || {
            let a = Arc::new(shim::AtomicUsize::new(0));
            let ts: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    shim::spawn(move || {
                        a.fetch_add(1, SeqCst);
                    })
                })
                .collect();
            for t in ts {
                t.join().unwrap();
            }
            assert_eq!(a.load(SeqCst), 2);
        });
        assert!(
            matches!(cov, Coverage::Exhaustive { .. }),
            "expected exhaustive coverage, got {cov:?}"
        );
    }

    /// Classic ABBA lock ordering: the explorer must detect the
    /// deadlock schedule.
    #[test]
    fn detects_lock_order_deadlock() {
        let msg = catch_failure(|| {
            explore(&ModelCfg::default(), || {
                let m1 = Arc::new(shim::Mutex::new(0u32));
                let m2 = Arc::new(shim::Mutex::new(0u32));
                let (a1, a2) = (Arc::clone(&m1), Arc::clone(&m2));
                let t1 = shim::spawn(move || {
                    let _g1 = a1.lock().unwrap();
                    let _g2 = a2.lock().unwrap();
                });
                let (b1, b2) = (Arc::clone(&m1), Arc::clone(&m2));
                let t2 = shim::spawn(move || {
                    let _g2 = b2.lock().unwrap();
                    let _g1 = b1.lock().unwrap();
                });
                let _ = t1.join();
                let _ = t2.join();
            });
        });
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    /// A notify that can race ahead of the wait: flag outside the
    /// mutex, so the wakeup can be lost — and because the model ignores
    /// wait timeouts, the loss surfaces as a deadlock.
    #[test]
    fn detects_lost_wakeup_as_deadlock() {
        let msg = catch_failure(|| {
            explore(&ModelCfg::default(), || {
                let m = Arc::new(shim::Mutex::new(()));
                let cv = Arc::new(shim::Condvar::new());
                let flag = Arc::new(shim::AtomicBool::new(false));
                let (m2, cv2, flag2) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&flag));
                let waiter = shim::spawn(move || {
                    let mut g = m2.lock().unwrap();
                    while !flag2.load(SeqCst) {
                        // Broken protocol: the flag is not protected by
                        // the mutex, so the notify can land between the
                        // load and the wait.
                        g = cv2.wait(g).unwrap();
                    }
                });
                flag.store(true, SeqCst);
                cv.notify_all();
                let _ = waiter.join();
            });
        });
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    /// The fixed protocol (flag under the mutex) passes exhaustively.
    #[test]
    fn correct_wakeup_protocol_is_clean() {
        let cov = explore(&ModelCfg::default(), || {
            let m = Arc::new(shim::Mutex::new(false));
            let cv = Arc::new(shim::Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let waiter = shim::spawn(move || {
                let mut g = m2.lock().unwrap();
                while !*g {
                    g = cv2.wait(g).unwrap();
                }
            });
            *m.lock().unwrap() = true;
            cv.notify_all();
            waiter.join().unwrap();
        });
        assert!(
            matches!(cov, Coverage::Exhaustive { .. }),
            "expected exhaustive coverage, got {cov:?}"
        );
    }

    /// Spin loops terminate under the yield deprioritization.
    #[test]
    fn spin_loop_is_explorable() {
        let cov = explore(&ModelCfg::default(), || {
            let flag = Arc::new(shim::AtomicBool::new(false));
            let flag2 = Arc::clone(&flag);
            let t = shim::spawn(move || {
                while !flag2.load(SeqCst) {
                    shim::spin_loop();
                }
            });
            flag.store(true, SeqCst);
            t.join().unwrap();
        });
        assert!(cov.schedules() > 0);
    }
}
