//! Tracked drop-in replacements for the `std::sync` / `std::thread` /
//! `crossbeam_deque` types the runtime uses, compiled in by the
//! `model-check` feature via [`crate::sync`].
//!
//! Every type here has two behaviors, decided per call:
//!
//! - **On a model thread** (inside [`super::explore`] /
//!   [`super::explore_random`] / [`super::replay`]): each operation is
//!   a scheduling choice point — the explorer may hand the token to a
//!   different thread before the operation takes effect — and blocking
//!   operations (mutex acquisition, condvar waits, joins) suspend the
//!   thread *in the model* rather than in the OS, so the explorer sees
//!   exactly which threads are runnable and can detect deadlocks.
//! - **Anywhere else**: straight passthrough to the wrapped `std` /
//!   `crossbeam_deque` original. This is what lets the entire regular
//!   test suite run unchanged under `--features model-check`.
//!
//! Two deliberate modeling choices (also documented in
//! `docs/CONCURRENCY.md`): [`Condvar::wait_timeout`] on a model thread
//! never times out, so a lost wakeup that a defensive timeout would
//! paper over surfaces as a deadlock; and [`spin_loop`] deprioritizes
//! the calling thread instead of burning schedules re-running a spin
//! iteration that cannot make progress.

use std::cell::UnsafeCell;
use std::io;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{
    Arc,
    Condvar as StdCondvar,
    LockResult,
    Mutex as StdMutex,
    MutexGuard as StdMutexGuard,
    PoisonError,
    TryLockError, //
};
use std::time::Duration;

use super::{
    panic_message,
    set_ctx,
    Ctx,
    TearDown,
    Wait, //
};

fn key_of<T: ?Sized>(p: &T) -> usize {
    p as *const T as *const () as usize
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

macro_rules! tracked_atomic {
    ($(#[$doc:meta])* $name:ident, $std:path, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self { inner: <$std>::new(v) }
            }

            /// Tracked load (choice point on a model thread).
            pub fn load(&self, order: Ordering) -> $prim {
                point();
                self.inner.load(order)
            }

            /// Tracked store (choice point on a model thread).
            pub fn store(&self, v: $prim, order: Ordering) {
                point();
                self.inner.store(v, order)
            }

            /// Tracked swap (choice point on a model thread).
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                point();
                self.inner.swap(v, order)
            }
        }
    };
}

tracked_atomic!(
    /// A tracked `AtomicBool`: every operation is a scheduling choice
    /// point on a model thread, a plain `std` atomic op otherwise.
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);

tracked_atomic!(
    /// A tracked `AtomicUsize`: every operation is a scheduling choice
    /// point on a model thread, a plain `std` atomic op otherwise.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

impl AtomicUsize {
    /// Tracked `fetch_add` (choice point on a model thread).
    pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        point();
        self.inner.fetch_add(v, order)
    }

    /// Tracked `fetch_sub` (choice point on a model thread).
    pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
        point();
        self.inner.fetch_sub(v, order)
    }
}

/// A scheduling choice point if the caller is a model thread, a no-op
/// otherwise.
fn point() {
    if let Some(ctx) = Ctx::current() {
        ctx.yield_point();
    }
}

/// Spin-loop hint: deprioritizes a model thread (it will not be
/// rescheduled until every other runnable thread has held the token);
/// `std::hint::spin_loop` otherwise.
pub fn spin_loop() {
    match Ctx::current() {
        Some(ctx) => ctx.spin_yield(),
        None => std::hint::spin_loop(),
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------

/// A tracked mutex. Acquisition by a model thread is a choice point;
/// contention blocks the thread in the model (never in the OS), so the
/// explorer can schedule around it and detect deadlocks.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new tracked mutex.
    pub const fn new(v: T) -> Self {
        Mutex {
            inner: StdMutex::new(v),
        }
    }

    fn wait_key(&self) -> Wait {
        Wait::Mutex(key_of(&self.inner))
    }

    /// Acquires the mutex, like `std::sync::Mutex::lock`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match Ctx::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(self.wrap(g)),
                Err(p) => Err(PoisonError::new(self.wrap(p.into_inner()))),
            },
            Some(ctx) => {
                ctx.yield_point();
                loop {
                    match self.inner.try_lock() {
                        Ok(g) => return Ok(self.wrap(g)),
                        Err(TryLockError::Poisoned(p)) => {
                            return Err(PoisonError::new(self.wrap(p.into_inner())));
                        }
                        Err(TryLockError::WouldBlock) => ctx.block_on(self.wait_key()),
                    }
                }
            }
        }
    }

    fn wrap<'a>(&'a self, real: StdMutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            real: Some(real),
            mutex: self,
        }
    }
}

/// The guard of a tracked [`Mutex`]. Releasing it from a model thread
/// wakes model-blocked waiters and is itself a choice point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    real: Option<StdMutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

impl<T> MutexGuard<'_, T> {
    /// Releases the lock *without* a trailing choice point, for the
    /// atomic release-and-block inside [`Condvar::wait`].
    fn release_for_wait(mut self) {
        if let Some(ctx) = Ctx::current() {
            ctx.model.mark_runnable(self.mutex.wait_key(), false);
        }
        drop(self.real.take());
        // Drop of `self` sees `real == None` and does nothing more.
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(real) = self.real.take() {
            match Ctx::current() {
                None => drop(real),
                Some(ctx) => {
                    // Wake model waiters, then make the release visible
                    // as a choice point.
                    ctx.model.mark_runnable(self.mutex.wait_key(), false);
                    drop(real);
                    ctx.yield_point();
                }
            }
        }
    }
}

/// Mirror of `std::sync::WaitTimeoutResult` (which has no public
/// constructor) for [`Condvar::wait_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A tracked condition variable.
///
/// On a model thread, waits are modeled *without* timeouts: the thread
/// stays blocked until a notification marks it runnable. A protocol
/// that loses a wakeup therefore deadlocks under the model — exactly
/// the signal we want — instead of being rescued by a defensive
/// `wait_timeout` backstop.
#[derive(Debug, Default)]
pub struct Condvar {
    std: StdCondvar,
}

impl Condvar {
    /// Creates a new tracked condvar.
    pub const fn new() -> Self {
        Condvar {
            std: StdCondvar::new(),
        }
    }

    fn wait_key(&self) -> Wait {
        Wait::Condvar(key_of(self))
    }

    /// Blocks until notified, like `std::sync::Condvar::wait`.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match Ctx::current() {
            None => {
                let mutex = guard.mutex;
                let mut inner = guard;
                let real = inner.real.take().expect("guard holds the lock");
                drop(inner);
                match self.std.wait(real) {
                    Ok(g) => Ok(mutex.wrap(g)),
                    Err(p) => Err(PoisonError::new(mutex.wrap(p.into_inner()))),
                }
            }
            Some(ctx) => {
                // Choice point *before* the wait (the race window where
                // a notify can be lost is between the caller's last
                // operation and this call)...
                ctx.yield_point();
                let mutex = guard.mutex;
                // ...but release and block under one scheduler step:
                // like std, no notification can slip between unlocking
                // the mutex and registering as a waiter.
                guard.release_for_wait();
                ctx.block_on(self.wait_key());
                mutex.lock()
            }
        }
    }

    /// Like `std::sync::Condvar::wait_timeout`; on a model thread the
    /// timeout is ignored (the wait never times out — see type docs).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match Ctx::current() {
            None => {
                let mutex = guard.mutex;
                let mut inner = guard;
                let real = inner.real.take().expect("guard holds the lock");
                drop(inner);
                match self.std.wait_timeout(real, dur) {
                    Ok((g, wtr)) => Ok((mutex.wrap(g), WaitTimeoutResult(wtr.timed_out()))),
                    Err(p) => {
                        let (g, wtr) = p.into_inner();
                        Err(PoisonError::new((
                            mutex.wrap(g),
                            WaitTimeoutResult(wtr.timed_out()),
                        )))
                    }
                }
            }
            Some(_) => match self.wait(guard) {
                Ok(g) => Ok((g, WaitTimeoutResult(false))),
                Err(p) => Err(PoisonError::new((p.into_inner(), WaitTimeoutResult(false)))),
            },
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if let Some(ctx) = Ctx::current() {
            ctx.model.mark_runnable(self.wait_key(), true);
            self.std.notify_one();
            ctx.yield_point();
        } else {
            self.std.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some(ctx) = Ctx::current() {
            ctx.model.mark_runnable(self.wait_key(), false);
            self.std.notify_all();
            ctx.yield_point();
        } else {
            self.std.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------

/// A tracked `OnceLock`: initialization races are resolved through a
/// tracked [`Mutex`], so a model thread losing the race blocks in the
/// model instead of in the OS parking lot (which would wedge the
/// explorer's token).
#[derive(Debug, Default)]
pub struct OnceLock<T> {
    init: Mutex<bool>,
    value: UnsafeCell<Option<T>>,
}

unsafe impl<T: Send> Send for OnceLock<T> {}
unsafe impl<T: Send + Sync> Sync for OnceLock<T> {}

impl<T> OnceLock<T> {
    /// Creates an empty `OnceLock`.
    pub const fn new() -> Self {
        OnceLock {
            init: Mutex::new(false),
            value: UnsafeCell::new(None),
        }
    }

    /// Returns the value if initialized.
    pub fn get(&self) -> Option<&T> {
        let g = self.init.lock().unwrap_or_else(|e| e.into_inner());
        if *g {
            drop(g);
            // Initialized exactly once and never written again.
            unsafe { (*self.value.get()).as_ref() }
        } else {
            None
        }
    }

    /// Returns the value, initializing it with `f` if empty.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        let mut g = self.init.lock().unwrap_or_else(|e| e.into_inner());
        if !*g {
            let v = f();
            unsafe { *self.value.get() = Some(v) };
            *g = true;
        }
        drop(g);
        unsafe { (*self.value.get()).as_ref().expect("initialized above") }
    }
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

enum Repr<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        model: Arc<super::Model>,
        tid: usize,
        slot: Slot<T>,
    },
}

/// A facade `JoinHandle`: either a real `std::thread::JoinHandle` or a
/// handle on a model-registered cooperative thread.
pub struct JoinHandle<T>(Repr<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (the
    /// panic payload as `Err`, like `std::thread::JoinHandle::join`).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Repr::Std(h) => h.join(),
            Repr::Model { model, tid, slot } => {
                if let Some(ctx) = Ctx::current() {
                    while !model.is_finished(tid) {
                        ctx.block_on(Wait::Join(tid));
                    }
                } else {
                    model.wait_finished_external(tid);
                }
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("finished model thread stored its result")
            }
        }
    }
}

/// A facade `std::thread::Builder`: thread names pass through to the
/// OS thread in both personalities.
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a new builder.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Names the thread-to-be.
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns the thread. Called from a model thread, the child is
    /// registered with the explorer and only runs when scheduled;
    /// otherwise this is `std::thread::Builder::spawn`.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut b = std::thread::Builder::new();
        if let Some(n) = self.name.clone() {
            b = b.name(n);
        }
        match Ctx::current() {
            None => Ok(JoinHandle(Repr::Std(b.spawn(f)?))),
            Some(ctx) => {
                let tid = ctx.model.register_thread();
                let slot: Slot<T> = Arc::new(StdMutex::new(None));
                let model = Arc::clone(&ctx.model);
                let slot2 = Arc::clone(&slot);
                let os = match b.spawn(move || {
                    set_ctx(Arc::clone(&model), tid);
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        model.wait_for_token(tid);
                        f()
                    }));
                    let real_panic = match &result {
                        Ok(_) => None,
                        Err(p) if p.is::<TearDown>() => None,
                        Err(p) => Some(panic_message(p.as_ref())),
                    };
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                    model.finish_thread(tid, real_panic);
                }) {
                    Ok(h) => h,
                    Err(e) => {
                        ctx.model.mark_finished_stillborn(tid);
                        return Err(e);
                    }
                };
                ctx.model.store_handle(tid, os);
                // The spawn is a choice point: the child may run first.
                ctx.yield_point();
                Ok(JoinHandle(Repr::Model {
                    model: Arc::clone(&ctx.model),
                    tid,
                    slot,
                }))
            }
        }
    }
}

/// Facade `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

// ---------------------------------------------------------------------
// Work-stealing deques
// ---------------------------------------------------------------------

use crossbeam_deque::Steal;

/// A tracked `crossbeam_deque::Worker`: every queue operation is a
/// choice point on a model thread.
pub struct Worker<T> {
    inner: crossbeam_deque::Worker<T>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker deque.
    pub fn new_fifo() -> Self {
        Worker {
            inner: crossbeam_deque::Worker::new_fifo(),
        }
    }

    /// Pushes a task (choice point on a model thread).
    pub fn push(&self, task: T) {
        point();
        self.inner.push(task)
    }

    /// Pops a task (choice point on a model thread).
    pub fn pop(&self) -> Option<T> {
        point();
        self.inner.pop()
    }

    /// Whether the deque looks empty (choice point on a model thread).
    pub fn is_empty(&self) -> bool {
        point();
        self.inner.is_empty()
    }

    /// A stealer handle onto this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: self.inner.stealer(),
        }
    }
}

/// A tracked `crossbeam_deque::Stealer`.
pub struct Stealer<T> {
    inner: crossbeam_deque::Stealer<T>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task (choice point on a model thread).
    pub fn steal(&self) -> Steal<T> {
        point();
        self.inner.steal()
    }
}

/// A tracked `crossbeam_deque::Injector`.
pub struct Injector<T> {
    inner: crossbeam_deque::Injector<T>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            inner: crossbeam_deque::Injector::new(),
        }
    }

    /// Pushes a task (choice point on a model thread).
    pub fn push(&self, task: T) {
        point();
        self.inner.push(task)
    }

    /// Steals one task (choice point on a model thread).
    pub fn steal(&self) -> Steal<T> {
        point();
        self.inner.steal()
    }

    /// Batch-steals into `dest` and pops one task (choice point on a
    /// model thread).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        point();
        self.inner.steal_batch_and_pop(&dest.inner)
    }

    /// Whether the injector looks empty (choice point on a model
    /// thread).
    pub fn is_empty(&self) -> bool {
        point();
        self.inner.is_empty()
    }

    /// Number of queued tasks (choice point on a model thread).
    pub fn len(&self) -> usize {
        point();
        self.inner.len()
    }
}
