//! The cfg-switched synchronization facade of the runtime.
//!
//! Every atomic, mutex, condvar, thread spawn, and work queue used by
//! the executor substrate ([`crate::executor`], [`crate::steal`],
//! [`crate::barrier`], [`crate::pool`]) is imported from *this* module
//! instead of `std::sync` / `crossbeam_deque` directly. The module has
//! two personalities:
//!
//! - **Default build** (no `model-check` feature): every name here is a
//!   plain re-export of the `std` / `crossbeam_deque` original. The
//!   facade is zero-cost — the compiled executor is byte-for-byte the
//!   code it was before the facade existed.
//! - **`--features model-check`**: the same names resolve to the
//!   tracked shim types of `model` (this crate's in-repo
//!   deterministic-interleaving explorer, shaped after `loom` /
//!   `shuttle`). Each operation becomes a *choice point* where the
//!   explorer may switch threads, `model::explore` drives a
//!   preemption-bounded exhaustive DFS over those schedules, and
//!   `model::explore_random` drives seed-replayable random walks for
//!   larger state spaces. Outside an active exploration the shim types
//!   pass straight through to the `std` originals, so the rest of the
//!   test suite behaves identically under either feature set.
//!
//! The facade is the pattern of `rust_atomics_and_locks`' `cfg(loom)`
//! re-export module; the contract of each protocol built on top of it
//! (epoch parking, the scope latch, the shutdown handshake) is written
//! down in `docs/CONCURRENCY.md`.
//!
//! # What the model explores (and what it does not)
//!
//! The explorer interleaves threads at *sequential consistency* — like
//! `shuttle`, it finds ordering and lost-wakeup bugs in the protocol
//! logic, not weak-memory bugs (that would need a `loom`-style memory
//! model). `Condvar::wait_timeout` is modeled as a plain wait: the
//! defensive timeouts in the executor can mask a lost wakeup in
//! production, so under the model they are removed and a genuinely
//! lost wakeup surfaces as a detected deadlock.

#[cfg(feature = "model-check")]
pub mod model;

/// Tracked atomics: each load/store/RMW is a scheduling choice point
/// under the model, a plain `std` atomic otherwise.
#[cfg(not(feature = "model-check"))]
pub mod atomic {
    pub use std::sync::atomic::{
        AtomicBool,
        AtomicUsize,
        Ordering, //
    };
}

/// Tracked atomics: each load/store/RMW is a scheduling choice point
/// under the model, a plain `std` atomic otherwise.
#[cfg(feature = "model-check")]
pub mod atomic {
    pub use super::model::shim::{
        AtomicBool,
        AtomicUsize, //
    };
    pub use std::sync::atomic::Ordering;
}

/// Untracked monotone counters, always the plain `std` atomic.
///
/// The [`crate::metrics`] buckets are deliberately *not* choice points:
/// they are observational (relaxed-ordering, no protocol reads them
/// back for control flow), and tracking them would multiply the model's
/// state space by a factor per recorded event without ever finding a
/// bug. Routing them through the facade anyway keeps the rule simple —
/// runtime code imports all of its atomics from `crate::sync`.
pub mod counter {
    pub use std::sync::atomic::AtomicU64;
}

#[cfg(not(feature = "model-check"))]
pub use std::sync::{
    Condvar,
    Mutex,
    MutexGuard,
    OnceLock,
    WaitTimeoutResult, //
};

#[cfg(feature = "model-check")]
pub use model::shim::{
    Condvar,
    Mutex,
    MutexGuard,
    OnceLock,
    WaitTimeoutResult, //
};

/// Thread spawning through the facade: model-registered cooperative
/// threads under an active exploration, `std::thread` otherwise.
#[cfg(not(feature = "model-check"))]
pub mod thread {
    pub use std::thread::{
        spawn,
        Builder,
        JoinHandle, //
    };
}

/// Thread spawning through the facade: model-registered cooperative
/// threads under an active exploration, `std::thread` otherwise.
#[cfg(feature = "model-check")]
pub mod thread {
    pub use super::model::shim::{
        spawn,
        Builder,
        JoinHandle, //
    };
}

/// Spin-loop hints: under the model a hint *deprioritizes* the calling
/// thread (it is not rescheduled until every other runnable thread has
/// had a chance to run), which is what keeps spin loops explorable
/// instead of infinite.
#[cfg(not(feature = "model-check"))]
pub mod hint {
    pub use std::hint::spin_loop;
}

/// Spin-loop hints: under the model a hint *deprioritizes* the calling
/// thread (it is not rescheduled until every other runnable thread has
/// had a chance to run), which is what keeps spin loops explorable
/// instead of infinite.
#[cfg(feature = "model-check")]
pub mod hint {
    pub use super::model::shim::spin_loop;
}

/// Work queues through the facade: `crossbeam_deque` re-exports by
/// default, tracked wrappers (one choice point per queue operation)
/// under the model.
#[cfg(not(feature = "model-check"))]
pub mod deque {
    pub use crossbeam_deque::{
        Injector,
        Steal,
        Stealer,
        Worker, //
    };
}

/// Work queues through the facade: `crossbeam_deque` re-exports by
/// default, tracked wrappers (one choice point per queue operation)
/// under the model.
#[cfg(feature = "model-check")]
pub mod deque {
    pub use super::model::shim::{
        Injector,
        Stealer,
        Worker, //
    };
    pub use crossbeam_deque::Steal;
}
