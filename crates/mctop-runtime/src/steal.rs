//! Topology-aware work stealing (Section 5 of the paper).
//!
//! The policy: "If the local work queue is empty, steal from the queue
//! of worker threads that are the closest in terms of latency. If
//! unsuccessful, continue with the contexts that are the next closest."
//! [`StealOrder`] computes those victim orders from MCTOP;
//! [`steal_queues`] builds a deque-per-worker set of handles — each
//! handle is moved into its worker thread — that follow them.

use std::sync::Arc;

// Deques come from the cfg-switched facade: `crossbeam_deque`
// re-exports by default, tracked model-checker wrappers under
// `--features model-check` (see `crate::sync`).
use crate::sync::deque::{
    Injector,
    Steal,
    Stealer,
    Worker as Deque, //
};
use mctop::view::TopoView;
use mctop::Mctop;

use crate::metrics::{
    Metrics,
    StealClass, //
};

/// Per-worker victim orders derived from communication latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StealOrder {
    orders: Vec<Vec<usize>>,
}

impl StealOrder {
    /// Computes victim orders for workers occupying the given hardware
    /// contexts: for worker `i`, other workers sorted by
    /// `latency(hwc_i, hwc_j)` ascending (ties toward lower worker id).
    pub fn compute(topo: &Mctop, hwcs: &[usize]) -> Self {
        Self::orders_from(|a, b| topo.get_latency(a, b), hwcs)
    }

    /// Like [`StealOrder::compute`], over a prebuilt topology view
    /// (what placement-backed pools already hold).
    pub fn with_view(view: &TopoView, hwcs: &[usize]) -> Self {
        Self::orders_from(|a, b| view.get_latency(a, b), hwcs)
    }

    /// A victim order that ignores the topology: every worker tries
    /// the other workers in ascending index order. The fallback when
    /// only a [`mctop_place::Placement`] (no view) is available.
    pub fn sequential(n: usize) -> Self {
        StealOrder {
            orders: (0..n)
                .map(|i| (0..n).filter(|&j| j != i).collect())
                .collect(),
        }
    }

    fn orders_from(latency: impl Fn(usize, usize) -> u32, hwcs: &[usize]) -> Self {
        let orders = hwcs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut victims: Vec<usize> = (0..hwcs.len()).filter(|&j| j != i).collect();
                victims.sort_by_key(|&j| (latency(a, hwcs[j]), j));
                victims
            })
            .collect();
        StealOrder { orders }
    }

    /// Victim order (worker indices) for worker `i`.
    pub fn victims(&self, i: usize) -> &[usize] {
        &self.orders[i]
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }
}

/// Classifies every worker's distance to every other worker for the
/// steal-distance histogram of [`crate::metrics`]: same socket
/// (including SMT siblings), one interconnect hop, or two-plus hops.
/// `classes[i][j]` is worker `i`'s class for victim `j` (`SameSocket`
/// on the diagonal, vacuously).
pub fn steal_classes_with_view(view: &TopoView, hwcs: &[usize]) -> Vec<Vec<StealClass>> {
    let sockets: Vec<usize> = hwcs.iter().map(|&h| view.socket_of(h)).collect();
    sockets
        .iter()
        .map(|&si| {
            sockets
                .iter()
                .map(|&sj| {
                    if si == sj {
                        StealClass::SameSocket
                    } else {
                        match view.socket_hops(si, sj) {
                            0 | 1 => StealClass::OneHop,
                            usize::MAX => StealClass::Unclassified,
                            _ => StealClass::MultiHop,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// One worker's end of the work-stealing structure. Owned by (moved
/// into) its worker thread; the stealers inside reference every other
/// worker's queue.
pub struct StealPool<T> {
    id: usize,
    local: Deque<T>,
    stealers: Vec<Stealer<T>>,
    victims: Vec<usize>,
    /// Optional observability: when attached, local pops and steals
    /// are recorded into these buckets ([`StealPool::attach_metrics`]).
    metrics: Option<Arc<Metrics>>,
    /// Per-victim distance classes, indexed by worker id (parallel to
    /// `stealers`, not `victims`).
    classes: Vec<StealClass>,
}

/// Where a work item came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The worker's own queue.
    Local,
    /// Stolen from this worker's queue.
    Stolen(usize),
}

impl<T> StealPool<T> {
    /// This worker's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Attaches a metrics handle: from here on, local pops, batch
    /// refills and steals through this pool are recorded (steals into
    /// the distance bucket `classes[victim]` — one class per worker,
    /// e.g. from [`steal_classes_with_view`]). Detached pools record
    /// nothing and cost nothing.
    ///
    /// # Panics
    ///
    /// Panics if `classes` does not have one entry per worker.
    pub fn attach_metrics(&mut self, metrics: Arc<Metrics>, classes: Vec<StealClass>) {
        assert_eq!(
            classes.len(),
            self.stealers.len(),
            "one steal class per worker required"
        );
        self.metrics = Some(metrics);
        self.classes = classes;
    }

    /// Pushes work onto the local queue.
    pub fn push(&self, item: T) {
        self.local.push(item);
    }

    /// Moves a batch of tasks from a shared [`Injector`] into the
    /// local deque and returns one of them (crossbeam's
    /// `steal_batch_and_pop` hand-off): the executor's workers drain
    /// their socket injector this way, so surplus tasks land in a
    /// deque that other workers can then steal from in latency order.
    pub fn steal_batch_from(&self, injector: &Injector<T>) -> Option<T> {
        loop {
            match injector.steal_batch_and_pop(&self.local) {
                Steal::Success(item) => {
                    if let Some(m) = &self.metrics {
                        m.injector_hit();
                    }
                    return Some(item);
                }
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    /// Next work item: the local queue first, then the victims in
    /// latency order.
    pub fn next(&self) -> Option<(T, Source)> {
        if let Some(item) = self.local.pop() {
            if let Some(m) = &self.metrics {
                m.local_deque_hit();
            }
            return Some((item, Source::Local));
        }
        for &v in &self.victims {
            loop {
                match self.stealers[v].steal() {
                    Steal::Success(item) => {
                        if let Some(m) = &self.metrics {
                            m.steal(self.classes[v]);
                        }
                        return Some((item, Source::Stolen(v)));
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }
}

/// Builds one [`StealPool`] handle per worker, with victim orders from
/// the topology.
pub fn steal_queues<T>(topo: &Mctop, hwcs: &[usize]) -> Vec<StealPool<T>> {
    steal_queues_with_order(StealOrder::compute(topo, hwcs))
}

/// Like [`steal_queues`], over a prebuilt topology view.
pub fn steal_queues_with_view<T>(view: &TopoView, hwcs: &[usize]) -> Vec<StealPool<T>> {
    steal_queues_with_order(StealOrder::with_view(view, hwcs))
}

/// Builds one [`StealPool`] handle per worker from an explicit victim
/// order (one per worker in `order`).
pub fn steal_queues_with_order<T>(order: StealOrder) -> Vec<StealPool<T>> {
    let n = order.len();
    let deques: Vec<Deque<T>> = (0..n).map(|_| Deque::new_fifo()).collect();
    let stealers: Vec<Stealer<T>> = deques.iter().map(|d| d.stealer()).collect();
    deques
        .into_iter()
        .enumerate()
        .map(|(id, local)| StealPool {
            id,
            local,
            stealers: stealers.clone(),
            victims: order.victims(id).to_vec(),
            metrics: None,
            classes: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Mctop {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        mctop::infer(&mut p, &cfg).unwrap()
    }

    #[test]
    fn victims_sorted_by_latency() {
        let t = topo();
        // Workers on: ctx 0 (socket 0 core 0), ctx 8 (SMT sibling of 0),
        // ctx 1 (socket 0 core 1), ctx 4 (socket 1).
        let order = StealOrder::compute(&t, &[0, 8, 1, 4]);
        // Worker 0's closest victim is its SMT sibling, then the
        // same-socket core, then the remote socket.
        assert_eq!(order.victims(0), &[1, 2, 3]);
        // Worker 3 (remote socket) sees all others at the same
        // cross-socket latency: tie-break by worker id.
        assert_eq!(order.victims(3), &[0, 1, 2]);
    }

    #[test]
    fn view_based_queues_share_the_naive_victim_orders() {
        let t = topo();
        let workers = [0usize, 8, 1, 4];
        let naive = StealOrder::compute(&t, &workers);
        let view = TopoView::new(std::sync::Arc::new(t));
        assert_eq!(StealOrder::with_view(&view, &workers), naive);
        let queues: Vec<StealPool<u8>> = steal_queues_with_view(&view, &workers);
        queues[1].push(9);
        // Worker 0 steals from its SMT sibling (worker 1) first.
        assert_eq!(queues[0].next(), Some((9, Source::Stolen(1))));
    }

    #[test]
    fn local_work_first_then_closest_victim() {
        let t = topo();
        let queues: Vec<StealPool<u32>> = steal_queues(&t, &[0, 8, 4]);
        queues[0].push(1);
        queues[1].push(2);
        queues[2].push(3);
        // Worker 0 takes its own item first.
        assert_eq!(queues[0].next(), Some((1, Source::Local)));
        // Then steals from its SMT sibling (worker 1), not the remote
        // socket (worker 2).
        assert_eq!(queues[0].next(), Some((2, Source::Stolen(1))));
        assert_eq!(queues[0].next(), Some((3, Source::Stolen(2))));
        assert_eq!(queues[0].next(), None);
    }

    #[test]
    fn all_items_consumed_exactly_once_concurrently() {
        let t = topo();
        let workers = vec![0usize, 8, 1, 9, 4, 12];
        let mut queues: Vec<StealPool<usize>> = steal_queues(&t, &workers);
        const ITEMS: usize = 3000;
        // All work starts on worker 0: everyone else must steal.
        for i in 0..ITEMS {
            queues[0].push(i);
        }
        let seen = std::sync::Mutex::new(vec![0u8; ITEMS]);
        std::thread::scope(|s| {
            for q in queues.drain(..) {
                let seen = &seen;
                s.spawn(move || {
                    while let Some((item, _)) = q.next() {
                        seen.lock().unwrap()[item] += 1;
                    }
                });
            }
        });
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn steal_sources_reported() {
        let t = topo();
        let queues: Vec<StealPool<u8>> = steal_queues(&t, &[0, 1]);
        queues[1].push(7);
        let (v, src) = queues[0].next().unwrap();
        assert_eq!(v, 7);
        assert_eq!(src, Source::Stolen(1));
    }
}
