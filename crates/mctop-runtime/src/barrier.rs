//! A sense-reversing spin barrier.
//!
//! The paper's measurement harness keeps "even the thread barriers of
//! libmctop spin-based" so cores never leave their maximum DVFS state
//! (Section 3.5). This is that barrier.

// Atomics and the spin hint come from the cfg-switched facade: plain
// `std` by default, tracked model-checker shims under
// `--features model-check` (see `crate::sync`).
use crate::sync::atomic::{
    AtomicBool,
    AtomicUsize,
    Ordering, //
};
use crate::sync::hint;

/// A reusable spin barrier for a fixed number of participants.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use mctop_runtime::SpinBarrier;
///
/// let b = Arc::new(SpinBarrier::new(2));
/// let b2 = Arc::clone(&b);
/// let t = std::thread::spawn(move || {
///     b2.wait();
/// });
/// b.wait();
/// t.join().unwrap();
/// ```
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// A barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks (spinning) until all `n` participants arrive. Reusable:
    /// the sense flips each round.
    pub fn wait(&self) {
        let sense = self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            // Last arrival resets the count and releases the round.
            self.count.store(0, Ordering::Release);
            self.sense.store(!sense, Ordering::Release);
        } else {
            while self.sense.load(Ordering::Acquire) == sense {
                hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn rounds_are_totally_ordered() {
        // Each thread increments a phase counter between barriers; after
        // each barrier every thread must observe the same phase.
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let phase = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    for r in 0..ROUNDS as u64 {
                        if i == 0 {
                            phase.store(r, Ordering::Release);
                        }
                        barrier.wait();
                        assert_eq!(phase.load(Ordering::Acquire), r);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SpinBarrier::new(0);
    }
}
