//! # mctop-runtime — placement-aware parallel runtime substrate
//!
//! The application studies of the MCTOP paper (mergesort, MapReduce,
//! the extended OpenMP runtime) all need the same building blocks,
//! provided here:
//!
//! - [`executor::Executor`]: the **persistent** topology-aware
//!   fork-join executor — long-lived workers pinned per
//!   [`mctop_place::Placement`], per-socket injectors, per-worker
//!   deques, idle workers stealing in the min-latency victim order,
//!   a `scope`/`join` API plus targeted per-worker dispatch, and
//!   graceful shutdown/re-arm on placement change. Every parallel
//!   workload in this workspace runs on it;
//! - [`pool::WorkerPool`]: the `run`/`run_each` facade over the
//!   executor (kept for the per-worker arena hand-off API of
//!   `mctop-alloc`);
//! - [`barrier::SpinBarrier`]: the spin-based barrier the paper's
//!   measurement threads use (no blocking, keeps DVFS at max);
//! - [`steal`]: topology-aware work stealing (Section 5): idle workers
//!   steal from the victim that is closest in communication latency
//!   first;
//! - [`metrics`]: lock-free runtime observability — relaxed-ordering
//!   counter buckets for executor traffic (dispatch sources, steals by
//!   victim distance, park/unpark churn), prober activity and alloc
//!   plans, with `snapshot()`/`reset()`/`delta()` and a stable serde
//!   serialization (see `docs/OBSERVABILITY.md`);
//! - [`host`]: the shared host-CPU clamp (bind only when the context
//!   exists on the host).

#![deny(missing_docs)]

pub mod barrier;
pub mod executor;
pub mod host;
pub mod metrics;
pub mod pool;
pub mod steal;
pub mod sync;

pub use barrier::SpinBarrier;
pub use executor::{
    ExecCfg,
    Executor,
    ExecutorShutdown,
    Scope,
    WorkerCtx, //
};
pub use metrics::{
    Metrics,
    MetricsSnapshot,
    ServerRequestKind,
    ServerSnapshot,
    StealClass, //
};
pub use pool::WorkerPool;
pub use steal::{
    steal_queues,
    steal_queues_with_order,
    steal_queues_with_view,
    StealOrder,
    StealPool, //
};
