//! # mctop-runtime — placement-aware parallel runtime substrate
//!
//! The application studies of the MCTOP paper (mergesort, MapReduce,
//! the extended OpenMP runtime) all need the same three building
//! blocks, provided here:
//!
//! - [`pool::WorkerPool`]: a fork-join pool whose workers are assigned
//!   hardware contexts by an [`mctop_place::Placement`] (and optionally
//!   pinned to the real OS CPUs when the context ids exist on the host);
//! - [`barrier::SpinBarrier`]: the spin-based barrier the paper's
//!   measurement threads use (no blocking, keeps DVFS at max);
//! - [`steal`]: topology-aware work stealing (Section 5): idle workers
//!   steal from the victim that is closest in communication latency
//!   first.

pub mod barrier;
pub mod pool;
pub mod steal;

pub use barrier::SpinBarrier;
pub use pool::{
    WorkerCtx,
    WorkerPool, //
};
pub use steal::{
    steal_queues,
    steal_queues_with_view,
    StealOrder,
    StealPool, //
};
