//! Host-capability helpers shared by the executor and its consumers.
//!
//! Simulated machines routinely have more hardware contexts than the
//! host running the experiments has CPUs, so every place that pins a
//! thread needs the same clamp: bind only when the context id exists
//! on the host, stay virtual otherwise. This module is the single
//! home of that logic (it used to be duplicated between the worker
//! pool and the OpenMP runtime).

/// Number of CPUs actually available on the host (1 if unknown).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Best-effort OS pinning: binds the calling thread to `hwc` when that
/// CPU exists on the host, and reports whether the bind happened.
/// Contexts beyond the host's CPU count are left virtual.
pub fn pin_if_host(hwc: usize) -> bool {
    hwc < host_cpus() && mctop_place::pin_os_thread(hwc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cpus_is_positive() {
        assert!(host_cpus() >= 1);
    }

    #[test]
    fn absurd_context_is_never_pinned() {
        assert!(!pin_if_host(usize::MAX));
    }
}
