//! Shutdown edge cases over the two committed machine descriptions
//! (`ivy`, `westmere`) at 1, 2 and 8 workers:
//!
//! - `shutdown` twice (and once more via `Drop`) is idempotent;
//! - `shutdown` with every worker parked wakes and joins them all;
//! - `rearm` after an explicit `shutdown` yields a working team;
//! - `scope`/`try_scope` on a shut-down executor fail cleanly —
//!   `Err(ExecutorShutdown)` from `try_scope`, a documented panic from
//!   `scope` — and run zero tasks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mctop::view::TopoView;
use mctop_place::{PlaceOpts, Placement, Policy};
use mctop_runtime::metrics::Metrics;
use mctop_runtime::{ExecCfg, Executor, ExecutorShutdown};

const WORKERS: [usize; 3] = [1, 2, 8];

/// Counter assertions only hold with the `metrics` feature (default);
/// the shutdown/rearm/error behavior is asserted in both configs.
const METRICS: bool = cfg!(feature = "metrics");

/// Runs `f` once per (committed desc, worker count) combination.
fn for_each_config(f: impl Fn(&str, usize, Executor, Arc<Metrics>)) {
    let reg = mctop::Registry::shipped();
    for name in ["ivy", "westmere"] {
        let view: Arc<TopoView> = reg.view(name).unwrap();
        for &workers in &WORKERS {
            let placement =
                Placement::with_view(&view, Policy::ConHwc, PlaceOpts::threads(workers)).unwrap();
            let metrics = Metrics::handle();
            let exec = Executor::with_metrics(
                Some(&view),
                &placement,
                ExecCfg {
                    workers: Some(workers),
                    os_pin: false,
                },
                Arc::clone(&metrics),
            );
            f(name, workers, exec, metrics);
        }
    }
}

fn count_tasks(exec: &Executor, n: usize) -> usize {
    let hits = AtomicUsize::new(0);
    exec.scope(|s| {
        for _ in 0..n {
            s.spawn(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    hits.load(Ordering::Relaxed)
}

#[test]
fn double_shutdown_is_idempotent() {
    for_each_config(|name, workers, exec, _metrics| {
        assert_eq!(count_tasks(&exec, workers), workers, "{name}/{workers}");
        exec.shutdown();
        exec.shutdown();
        drop(exec); // third round via Drop
    });
}

#[test]
fn shutdown_with_parked_workers_joins_them_all() {
    for_each_config(|name, workers, exec, metrics| {
        // Run one scope, then wait until every worker has parked at
        // least once (they go idle right after the scope drains).
        assert_eq!(count_tasks(&exec, workers), workers, "{name}/{workers}");
        if METRICS {
            let deadline = Instant::now() + Duration::from_secs(10);
            while (metrics.snapshot().executor.parks as usize) < workers {
                assert!(
                    Instant::now() < deadline,
                    "{name}/{workers}: workers never parked (parks = {})",
                    metrics.snapshot().executor.parks
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        } else {
            // Without counters, give the team a moment to go idle so
            // the shutdown below still exercises the parked path.
            std::thread::sleep(Duration::from_millis(20));
        }
        // Must wake every parked worker and join; a lost shutdown
        // wakeup would hang here (the harness timeout would trip).
        exec.shutdown();
    });
}

#[test]
fn rearm_after_shutdown_yields_a_working_team() {
    let reg = mctop::Registry::shipped();
    for name in ["ivy", "westmere"] {
        let view: Arc<TopoView> = reg.view(name).unwrap();
        for &workers in &WORKERS {
            let placement =
                Placement::with_view(&view, Policy::ConHwc, PlaceOpts::threads(workers)).unwrap();
            let metrics = Metrics::handle();
            let mut exec = Executor::with_metrics(
                Some(&view),
                &placement,
                ExecCfg {
                    workers: Some(workers),
                    os_pin: false,
                },
                Arc::clone(&metrics),
            );
            exec.shutdown();
            // `rearm` is documented to work on an already-shut-down
            // executor (it shuts down again, idempotently, first).
            exec.rearm(Some(&view), &placement);
            assert_eq!(count_tasks(&exec, workers), workers, "{name}/{workers}");
            if METRICS {
                assert_eq!(
                    metrics.snapshot().executor.rearms,
                    1,
                    "{name}/{workers}: rearm recorded"
                );
            }
        }
    }
}

#[test]
fn scope_after_shutdown_fails_cleanly_and_runs_nothing() {
    for_each_config(|name, workers, exec, metrics| {
        assert_eq!(count_tasks(&exec, workers), workers, "{name}/{workers}");
        exec.shutdown();
        let hits = AtomicUsize::new(0);
        let r = exec.try_scope(|s| {
            s.spawn(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(r, Err(ExecutorShutdown), "{name}/{workers}");
        assert_eq!(
            ExecutorShutdown.to_string(),
            "executor has been shut down",
            "stable operator-facing error text"
        );
        assert_eq!(hits.load(Ordering::Relaxed), 0, "{name}/{workers}");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        }))
        .expect_err("scope on a shut-down executor must panic");
        assert_eq!(
            panicked.downcast_ref::<&str>().copied(),
            Some("scope on a shut-down executor"),
            "{name}/{workers}"
        );
        assert_eq!(hits.load(Ordering::Relaxed), 0, "{name}/{workers}");
        if METRICS {
            assert_eq!(
                metrics.snapshot().executor.tasks,
                workers as u64,
                "{name}/{workers}: only the pre-shutdown scope ran tasks"
            );
        }
    });
}
