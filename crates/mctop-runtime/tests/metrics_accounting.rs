//! Accounting invariants of the runtime metrics: after a quiescent
//! mixed workload, every submitted task is counted exactly once at its
//! acquisition point, so the dispatch-source buckets reconcile with
//! the submission counters — per worker count, per machine.

#![cfg(feature = "metrics")]

use std::sync::atomic::{
    AtomicU64,
    Ordering, //
};
use std::sync::Arc;

use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctop_runtime::{
    ExecCfg,
    Executor,
    Metrics,
    MetricsSnapshot, //
};
use proptest::prelude::*;

const MACHINES: &[&str] = &["ivy", "westmere"];
const WORKER_COUNTS: &[usize] = &[1, 2, 8];

/// Targeted rounds per run (each one scope + one task per worker).
const TARGETED_ROUNDS: usize = 4;
/// Stealable tasks per fan-out scope.
const FANOUT: usize = 64;
/// Fan-out scopes per run.
const FANOUT_ROUNDS: usize = 3;

#[test]
fn dispatch_sources_reconcile_with_submissions() {
    let registry = mctop::Registry::shipped();
    for machine in MACHINES {
        let view = registry.view(machine).expect("shipped description");
        for &workers in WORKER_COUNTS {
            let metrics = Metrics::handle();
            let placement =
                Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(workers))
                    .expect("RR placement");
            let exec = Executor::with_metrics(
                Some(&view),
                &placement,
                ExecCfg {
                    workers: None,
                    os_pin: false,
                },
                Arc::clone(&metrics),
            );

            let ran = AtomicU64::new(0);
            for _ in 0..TARGETED_ROUNDS {
                exec.run(|_ctx| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            for _ in 0..FANOUT_ROUNDS {
                exec.scope(|s| {
                    for _ in 0..FANOUT {
                        let ran = &ran;
                        s.spawn(move || {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
            drop(exec);

            let targeted = (TARGETED_ROUNDS * workers) as u64;
            let stealable = (FANOUT_ROUNDS * FANOUT) as u64;
            let e = metrics.snapshot().executor;
            let ctx = format!("{machine}/{workers} workers: {e:?}");

            assert_eq!(ran.into_inner(), targeted + stealable, "{ctx}");
            assert_eq!(e.arms, 1, "{ctx}");
            assert_eq!(e.scopes, (TARGETED_ROUNDS + FANOUT_ROUNDS) as u64, "{ctx}");
            assert_eq!(e.tasks, targeted + stealable, "{ctx}");
            assert_eq!(e.panics, 0, "{ctx}");
            assert_eq!(e.targeted_pushes, targeted, "{ctx}");
            assert_eq!(e.stealable_pushes, stealable, "{ctx}");
            // Every targeted task is taken from its owner's mailbox,
            // nowhere else.
            assert_eq!(e.mailbox_hits, targeted, "{ctx}");
            // Conservation: every task was acquired exactly once, so
            // the source buckets sum to the tasks submitted.
            assert_eq!(
                e.mailbox_hits
                    + e.local_deque_hits
                    + e.injector_hits
                    + e.remote_injector_hits
                    + e.steals_total,
                e.tasks,
                "{ctx}"
            );
            // The histogram is internally consistent.
            assert_eq!(
                e.steals_same_socket
                    + e.steals_one_hop
                    + e.steals_multi_hop
                    + e.steals_unclassified,
                e.steals_total,
                "{ctx}"
            );
            // A topology view was supplied, so no steal is unclassified.
            assert_eq!(e.steals_unclassified, 0, "{ctx}");
        }
    }
}

#[test]
fn rearm_keeps_the_metrics_handle_and_counts() {
    let view = mctop::Registry::shipped().view("ivy").expect("ivy ships");
    let placement =
        Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(4)).expect("RR placement");
    let metrics = Metrics::handle();
    let mut exec = Executor::with_metrics(
        Some(&view),
        &placement,
        ExecCfg {
            workers: None,
            os_pin: false,
        },
        Arc::clone(&metrics),
    );
    exec.run(|ctx| ctx.id);
    exec.rearm(Some(&view), &placement);
    exec.run(|ctx| ctx.id);
    drop(exec);

    let e = metrics.snapshot().executor;
    assert_eq!(e.rearms, 1);
    assert_eq!(e.arms, 2, "the re-armed team counts as a fresh arm");
    assert_eq!(e.tasks, 8, "both runs recorded into the same handle");
    assert!(Arc::strong_count(&metrics) >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `reset()` returns the handle to the zero snapshot, and `delta()`
    /// isolates exactly the window between two snapshots — including
    /// across a reset, where it saturates instead of wrapping.
    #[test]
    fn reset_then_delta_round_trips(
        arenas_a in 1u64..64,
        pages_a in prop::collection::vec(0u64..10_000, 1..8),
        arenas_b in 1u64..64,
        pages_b in prop::collection::vec(0u64..10_000, 1..8),
    ) {
        let m = Metrics::handle();
        m.record_alloc_plan(arenas_a, &pages_a);
        let first = m.snapshot();
        m.record_alloc_plan(arenas_b, &pages_b);
        let second = m.snapshot();

        let window = second.delta(&first);
        prop_assert_eq!(window.alloc.plans_resolved, 1);
        prop_assert_eq!(window.alloc.arenas_planned, arenas_b);
        prop_assert_eq!(window.alloc.pages_planned, pages_b.iter().sum::<u64>());

        // A snapshot against itself is the zero window.
        prop_assert_eq!(second.delta(&second), MetricsSnapshot::default());

        // Reset returns to the zero snapshot...
        m.reset();
        prop_assert_eq!(m.snapshot(), MetricsSnapshot::default());

        // ...and a delta taken across the reset saturates to zero
        // instead of wrapping around.
        m.record_alloc_plan(1, &[1]);
        let across = m.snapshot().delta(&first);
        prop_assert_eq!(across.alloc.plans_resolved, 0);
        prop_assert!(across.alloc.pages_planned <= 1);
    }
}
