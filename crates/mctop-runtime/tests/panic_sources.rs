//! A task panic must propagate to the scope join from *every* dispatch
//! source — mailbox, local deque, home-socket injector, remote steal —
//! and must leave the worker team alive and re-armable, with the
//! `panics` metrics bucket bumped exactly once.
//!
//! The choreography leans on two executor facts: task search order is
//! mailbox → local deque → steals → injectors, and a home-socket batch
//! refill (`steal_batch_and_pop`) pops the front task and moves half
//! of the *remainder* into the local deque. Gate tasks (barriers) hold
//! workers busy so queue contents are deterministic when the panicking
//! task is dispatched.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier};

use mctop::view::TopoView;
use mctop_place::{PlaceOpts, Placement, Policy};
use mctop_runtime::metrics::Metrics;
use mctop_runtime::{ExecCfg, Executor};

/// Counter assertions only hold with the `metrics` feature (default);
/// without it the buckets compile to no-ops and stay zero. Panic
/// propagation and worker liveness are asserted in both configs.
const METRICS: bool = cfg!(feature = "metrics");

fn view() -> Arc<TopoView> {
    let spec = mcsim::presets::synthetic_small();
    let mut p = mctop::backend::SimProber::noiseless(&spec);
    let cfg = mctop::ProbeConfig {
        reps: 3,
        ..mctop::ProbeConfig::fast()
    };
    let topo = mctop::infer(&mut p, &cfg).unwrap();
    Arc::new(TopoView::new(Arc::new(topo)))
}

/// A `ConHwc` executor (all workers on one socket → one injector, so
/// stealable pushes land in a known queue), with private metrics.
fn exec(workers: usize) -> (Executor, Arc<Metrics>) {
    let v = view();
    let placement = Placement::with_view(&v, Policy::ConHwc, PlaceOpts::threads(workers)).unwrap();
    let metrics = Metrics::handle();
    let e = Executor::with_metrics(
        Some(&v),
        &placement,
        ExecCfg {
            workers: Some(workers),
            os_pin: false,
        },
        Arc::clone(&metrics),
    );
    (e, metrics)
}

/// Runs `f` expecting the scope to rethrow a `&str` panic payload.
fn expect_panic(f: impl FnOnce() + std::panic::UnwindSafe, expected: &str) {
    let payload = catch_unwind(f).expect_err("scope must rethrow the task panic");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .expect("payload is the task's &str");
    assert_eq!(msg, expected);
}

/// After a panic, the team must still work (scope + targeted run) and
/// the panic bucket must hold exactly one hit.
fn assert_alive_after_panic(exec: &Executor, metrics: &Metrics) {
    if METRICS {
        assert_eq!(metrics.snapshot().executor.panics, 1, "one panic recorded");
    }
    let doubled = exec.run(|ctx| ctx.id * 2);
    assert_eq!(doubled, (0..exec.len()).map(|i| i * 2).collect::<Vec<_>>());
}

#[test]
fn panic_from_mailbox_propagates() {
    let (exec, metrics) = exec(2);
    expect_panic(
        AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn_on(1, || panic!("boom-mailbox"));
            });
        }),
        "boom-mailbox",
    );
    assert_alive_after_panic(&exec, &metrics);
    if METRICS {
        assert!(
            metrics.snapshot().executor.mailbox_hits >= 1,
            "panicking task must have been dispatched from a mailbox"
        );
    }
}

#[test]
fn panic_from_home_injector_propagates() {
    let (exec, metrics) = exec(1);
    // A single stealable task on a single worker: the batch refill
    // pops it straight off the home injector (nothing left to move
    // into the deque).
    expect_panic(
        AssertUnwindSafe(|| {
            exec.scope(|s| {
                s.spawn(|| panic!("boom-injector"));
            });
        }),
        "boom-injector",
    );
    assert_alive_after_panic(&exec, &metrics);
    if METRICS {
        let snap = metrics.snapshot().executor;
        assert!(
            snap.injector_hits >= 1,
            "panicking task must have come from the home injector"
        );
        assert_eq!(snap.local_deque_hits, 0, "nothing should reach the deque");
    }
}

#[test]
fn panic_from_local_deque_propagates() {
    let (exec, metrics) = exec(1);
    let entered = Barrier::new(2);
    let release = Barrier::new(2);
    expect_panic(
        AssertUnwindSafe(|| {
            exec.scope(|s| {
                // Hold the worker inside a task so the next three
                // spawns pile up in the injector: [benign, panicker,
                // filler]. The batch refill then pops `benign` and
                // moves half of the remainder — exactly the panicker —
                // into the local deque.
                s.spawn(|| {
                    entered.wait();
                    release.wait();
                });
                entered.wait();
                s.spawn(|| {});
                s.spawn(|| panic!("boom-deque"));
                s.spawn(|| {});
                release.wait();
            });
        }),
        "boom-deque",
    );
    assert_alive_after_panic(&exec, &metrics);
    if METRICS {
        assert!(
            metrics.snapshot().executor.local_deque_hits >= 1,
            "panicking task must have been popped from the local deque"
        );
    }
}

#[test]
fn panic_from_remote_steal_propagates() {
    let (exec, metrics) = exec(2);
    let w0_busy = Barrier::new(2);
    let w0_hold = Barrier::new(2);
    let w1_busy = Barrier::new(2);
    let w1_release = Barrier::new(2);
    let w0_batched = Barrier::new(2);
    let w0_release = Barrier::new(2);
    let stolen = Barrier::new(2);
    expect_panic(
        AssertUnwindSafe(|| {
            exec.scope(|s| {
                // Wedge both workers inside targeted gate tasks so the
                // stealables below all queue up before anyone scans.
                s.spawn_on(0, || {
                    w0_busy.wait();
                    w0_hold.wait();
                });
                s.spawn_on(1, || {
                    w1_busy.wait();
                    w1_release.wait();
                });
                w0_busy.wait();
                w1_busy.wait();
                // Three stealables pile up in the injector: [gate,
                // panicker, filler]. Releasing worker 0 makes it
                // batch-refill — it pops `gate` (which blocks it
                // again), and moves the panicker into ITS deque.
                s.spawn(|| {
                    w0_batched.wait();
                    w0_release.wait();
                });
                s.spawn(|| {
                    stolen.wait();
                    panic!("boom-steal");
                });
                s.spawn(|| {});
                w0_hold.wait();
                w0_batched.wait();
                // Worker 0 is pinned inside the batch's first task with
                // the panicker sitting in its deque; release worker 1,
                // whose search (mailbox → own deque → steal) takes the
                // panicker by stealing from worker 0. Only once the
                // theft is confirmed (`stolen` trips — worker 0 is
                // still wedged, so nobody else can be running the
                // panicker) is worker 0 released to finish up.
                w1_release.wait();
                stolen.wait();
                w0_release.wait();
            });
        }),
        "boom-steal",
    );
    assert_alive_after_panic(&exec, &metrics);
    if METRICS {
        let snap = metrics.snapshot().executor;
        assert!(
            snap.steals_total >= 1,
            "panicking task must have been remote-stolen (got {snap:?})"
        );
    }
}
