//! Exhaustive interleaving exploration of the executor's three core
//! protocols, via the `model-check` facade (`mctop_runtime::sync`):
//!
//! - **park/unpark**: a targeted (mailbox) or stealable (injector)
//!   push can never be missed by a worker that is about to park — the
//!   epoch protocol makes the wakeup lost-free;
//! - **shutdown-vs-spawn**: `shutdown` racing `try_scope` from another
//!   thread never loses a task and never hangs — either the scope
//!   backs out with `ExecutorShutdown`, or every task it spawned runs
//!   before the workers exit;
//! - **rearm/shutdown-vs-in-flight-steal**: tasks mid-flight through
//!   injectors, deques, and steals when a shutdown lands run exactly
//!   once, and a rearm afterwards yields a working team.
//!
//! Each test drives [`model::explore`] (preemption-bounded exhaustive
//! DFS over schedules) and asserts `Coverage::Exhaustive`; the
//! negative test injects a deliberately broken bump (notify without
//! epoch increment) and asserts the explorer catches the lost wakeup
//! with a replayable decision trace. A failing schedule panics with
//! that trace; reproduce it with
//! `model::replay(&cfg, "<trace>", f)` (see `docs/CONCURRENCY.md`).
#![cfg(feature = "model-check")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use mctop::view::TopoView;
use mctop_place::{PlaceOpts, Placement, Policy};
use mctop_runtime::executor::faults;
use mctop_runtime::metrics::Metrics;
use mctop_runtime::sync::model::{self, Coverage, ModelCfg};
use mctop_runtime::sync::thread;
use mctop_runtime::{ExecCfg, Executor, ExecutorShutdown};

/// One placement shared by every execution (built outside the model:
/// topology inference is deterministic but expensive, and the
/// explorer re-runs the closure thousands of times).
fn placement() -> &'static Placement {
    static PLACEMENT: OnceLock<Placement> = OnceLock::new();
    PLACEMENT.get_or_init(|| {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        let view = TopoView::new(Arc::new(topo));
        Placement::with_view(&view, Policy::ConHwc, PlaceOpts::threads(3)).unwrap()
    })
}

/// Arms a small executor inside a model execution: no view (steal
/// orders don't matter at this scale), no OS pinning, and a private
/// metrics handle so the process-global `OnceLock` is never touched
/// from model threads.
fn exec(workers: usize) -> Executor {
    Executor::with_metrics(
        None,
        placement(),
        ExecCfg {
            workers: Some(workers),
            os_pin: false,
        },
        Metrics::handle(),
    )
}

fn cfg() -> ModelCfg {
    ModelCfg {
        preemption_bound: Some(2),
        max_schedules: 200_000,
        max_steps: 20_000,
    }
}

/// The shutdown races add a whole extra racing thread, which blows the
/// bound-2 space past any reasonable CI budget (>200k schedules).
/// Preemption bound 1 stays exhaustive there — every schedule one
/// forced switch away from run-to-completion — and the deeper
/// interleavings are covered by the seeded random-walk smoke.
fn cfg_wide() -> ModelCfg {
    ModelCfg {
        preemption_bound: Some(1),
        ..cfg()
    }
}

fn assert_exhaustive(name: &str, cov: Coverage) {
    match cov {
        Coverage::Exhaustive { schedules } => {
            eprintln!("{name}: exhausted {schedules} schedules");
        }
        Coverage::CapReached { schedules } => {
            panic!("{name}: schedule cap hit after {schedules} schedules — raise max_schedules")
        }
    }
}

/// (a) Park/unpark, targeted: a mailbox push aimed at a worker that
/// may be mid-scan or parking is never lost. A lost wakeup would leave
/// the worker parked (the model ignores wait timeouts) and the scope
/// blocked — detected as a deadlock.
#[test]
fn park_unpark_targeted_push_is_never_missed() {
    let _serial = faults::exclusive();
    let cov = model::explore(&cfg(), || {
        let exec = exec(2);
        let hits = AtomicUsize::new(0);
        exec.scope(|s| {
            s.spawn_on(1, || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1, "targeted task lost");
        drop(exec);
    });
    assert_exhaustive("park_unpark_targeted", cov);
}

/// (a') Park/unpark, stealable: an injector push with both workers
/// potentially parking wakes someone, and the task runs exactly once.
#[test]
fn park_unpark_stealable_push_is_never_missed() {
    let _serial = faults::exclusive();
    let cov = model::explore(&cfg(), || {
        let exec = exec(2);
        let hits = AtomicUsize::new(0);
        exec.scope(|s| {
            s.spawn(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1, "stealable task lost");
        drop(exec);
    });
    assert_exhaustive("park_unpark_stealable", cov);
}

/// (b) Shutdown-vs-spawn: `shutdown` from one thread racing
/// `try_scope` from another. The scope either backs out cleanly or
/// every spawned task runs before the team exits; no interleaving may
/// lose a task or hang.
#[test]
fn shutdown_vs_spawn_never_loses_a_task() {
    let _serial = faults::exclusive();
    let cov = model::explore(&cfg_wide(), || {
        let exec = Arc::new(exec(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let killer = {
            let exec = Arc::clone(&exec);
            thread::spawn(move || exec.shutdown())
        };
        let outcome = {
            let hits = Arc::clone(&hits);
            exec.try_scope(|s| {
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            })
        };
        killer.join().unwrap();
        match outcome {
            Ok(()) => assert_eq!(
                hits.load(Ordering::Relaxed),
                1,
                "scope won the race but its task was lost"
            ),
            Err(ExecutorShutdown) => assert_eq!(
                hits.load(Ordering::Relaxed),
                0,
                "scope backed out but still ran a task"
            ),
        }
        drop(exec); // second (idempotent) shutdown via Drop
    });
    assert_exhaustive("shutdown_vs_spawn", cov);
}

/// (c) Rearm/shutdown-vs-in-flight-steal: three stealable tasks are
/// mid-flight (injector → batch into a local deque → cross-worker
/// steal) while a shutdown lands from another thread; every task must
/// run exactly once. A rearm afterwards must yield a working team.
#[test]
fn rearm_and_shutdown_vs_inflight_steal_run_tasks_exactly_once() {
    let _serial = faults::exclusive();
    let cov = model::explore(&cfg_wide(), || {
        let exec = Arc::new(exec(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let scoper = {
            let exec = Arc::clone(&exec);
            let hits = Arc::clone(&hits);
            thread::spawn(move || {
                let r = exec.try_scope(|s| {
                    for _ in 0..3 {
                        let hits = Arc::clone(&hits);
                        s.spawn(move || {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                match r {
                    Ok(()) => 3usize,
                    Err(ExecutorShutdown) => 0,
                }
            })
        };
        exec.shutdown();
        let expected = scoper.join().unwrap();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            expected,
            "tasks lost or double-executed across shutdown"
        );
        let mut exec = Arc::try_unwrap(exec).expect("sole owner after join");
        exec.rearm(None, placement());
        exec.scope(|s| {
            let hits = Arc::clone(&hits);
            s.spawn(move || {
                hits.fetch_add(10, Ordering::Relaxed);
            });
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            expected + 10,
            "rearmed team lost a task"
        );
    });
    assert_exhaustive("rearm_vs_steal", cov);
}

/// Negative test: with the epoch bump deliberately broken (notify
/// without incrementing — the injected `faults::break_bump`), the
/// park/unpark protocol regresses to the classic lost wakeup, and the
/// explorer must find it and print a trace that replays.
#[test]
fn broken_bump_is_caught_with_a_replayable_trace() {
    let _fault = faults::break_bump();
    let run = || {
        let exec = exec(2);
        let hits = AtomicUsize::new(0);
        exec.scope(|s| {
            s.spawn_on(1, || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        drop(exec);
    };
    let err = std::panic::catch_unwind(|| model::explore(&cfg(), run))
        .expect_err("explorer must catch the injected lost wakeup");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("failure panics with a formatted message");
    assert!(
        msg.contains("deadlock") || msg.contains("step"),
        "expected a deadlock/livelock verdict, got: {msg}"
    );
    let start = msg.find("decision trace: \"").expect("trace printed") + 17;
    let end = msg[start..].find('"').unwrap() + start;
    let trace = msg[start..end].to_string();
    // The printed trace must reproduce the same failure.
    let err2 = std::panic::catch_unwind(|| model::replay(&cfg(), &trace, run))
        .expect_err("replaying the printed trace must reproduce the failure");
    let msg2 = model_failure_message(err2.as_ref());
    assert!(
        msg2.contains("deadlock") || msg2.contains("step"),
        "replay produced a different verdict: {msg2}"
    );
}

fn model_failure_message(payload: &dyn std::any::Any) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// Seeded random-walk smoke at a larger configuration (3 workers,
/// mixed targeted + stealable + shutdown): too big to exhaust in CI,
/// still seed-replayable on failure. Walk count scales via
/// `MCTOP_MODEL_WALKS` (CI uses a higher value).
#[test]
fn random_walk_smoke_at_three_workers() {
    let _serial = faults::exclusive();
    let walks = std::env::var("MCTOP_MODEL_WALKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    model::explore_random(&cfg(), 0x6d63746f70, walks, || {
        let exec = Arc::new(exec(3));
        let hits = Arc::new(AtomicUsize::new(0));
        let killer = {
            let exec = Arc::clone(&exec);
            thread::spawn(move || exec.shutdown())
        };
        let r = {
            let hits = Arc::clone(&hits);
            exec.try_scope(|s| {
                for w in 0..2 {
                    let hits = Arc::clone(&hits);
                    s.spawn_on(w, move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            })
        };
        killer.join().unwrap();
        let expected = if r.is_ok() { 3 } else { 0 };
        assert_eq!(hits.load(Ordering::Relaxed), expected, "task count drifted");
    });
}
