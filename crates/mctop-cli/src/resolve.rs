//! Resolving a `<desc>` argument: an existing `*.mct.json` path is
//! loaded from disk, anything else is looked up in the shipped
//! description library by machine name.

use std::path::Path;

use mctop::desc::{
    self,
    Provenance, //
};
use mctop::registry;
use mctop::Mctop;

use crate::CliError;

/// Loads a description by path or shipped name. Both routes go through
/// [`desc::from_str_full`], so the provenance header and structural
/// validation are always enforced.
///
/// Only arguments that *look* like paths (a `.json` suffix or a path
/// separator) are read from disk; a stray file in the working
/// directory that happens to be named `ivy` cannot shadow the shipped
/// `ivy` description.
pub fn load(arg: &str) -> Result<(Mctop, Provenance), CliError> {
    let looks_like_path = arg.ends_with(".json") || arg.contains('/');
    if looks_like_path {
        return Ok(desc::load_full(Path::new(arg))?);
    }
    if let Some(text) = registry::shipped_source(arg) {
        return Ok(desc::from_str_full(text)?);
    }
    Err(CliError::Failed(format!(
        "`{arg}` is neither a description file nor a shipped machine name (known: {})",
        registry::shipped_names().join(", ")
    )))
}
