//! Structural comparison of two topologies for `mct diff`.
//!
//! The comparison walks the MCTOP abstraction top-down — shape first
//! (sockets, cores, contexts, SMT, nodes), then latency levels, the
//! interconnect, memory and the enrichment payloads — and reports one
//! human-readable line per divergence, so `diff` output reads like the
//! paper's Table 1 with the differing rows called out.

use mctop::model::{
    InterconnectLink,
    Mctop, //
};

fn field(out: &mut Vec<String>, name: &str, va: String, vb: String) {
    if va != vb {
        out.push(format!("{name}: {va} != {vb}"));
    }
}

/// All structural differences between two topologies, empty when they
/// are identical.
pub fn structural(a: &Mctop, b: &Mctop) -> Vec<String> {
    let mut out = Vec::new();

    field(&mut out, "name", a.name.clone(), b.name.clone());
    field(
        &mut out,
        "sockets",
        a.num_sockets().to_string(),
        b.num_sockets().to_string(),
    );
    field(
        &mut out,
        "cores",
        a.num_cores().to_string(),
        b.num_cores().to_string(),
    );
    field(
        &mut out,
        "contexts",
        a.num_hwcs().to_string(),
        b.num_hwcs().to_string(),
    );
    field(&mut out, "smt", a.smt.to_string(), b.smt.to_string());
    field(
        &mut out,
        "memory nodes",
        a.num_nodes().to_string(),
        b.num_nodes().to_string(),
    );
    field(
        &mut out,
        "levels",
        a.levels.len().to_string(),
        b.levels.len().to_string(),
    );

    for (la, lb) in a.levels.iter().zip(&b.levels) {
        field(
            &mut out,
            &format!("level {}", la.index),
            format!("{:?} @ {} cy", la.role, la.latency.median),
            format!("{:?} @ {} cy", lb.role, lb.latency.median),
        );
    }

    field(
        &mut out,
        "links",
        a.links.len().to_string(),
        b.links.len().to_string(),
    );
    for (la, lb) in a.links.iter().zip(&b.links) {
        if (la.a, la.b) == (lb.a, lb.b) {
            field(
                &mut out,
                &format!("link {}-{}", la.a, la.b),
                link_repr(la),
                link_repr(lb),
            );
        } else {
            out.push(format!(
                "link order: {}-{} != {}-{}",
                la.a, la.b, lb.a, lb.b
            ));
        }
    }

    for (sa, sb) in a.sockets.iter().zip(&b.sockets) {
        let name = format!("socket {}", sa.id);
        field(
            &mut out,
            &format!("{name} local node"),
            format!("{:?}", sa.local_node),
            format!("{:?}", sb.local_node),
        );
        field(
            &mut out,
            &format!("{name} memory latencies"),
            format!("{:?}", sa.mem_latencies),
            format!("{:?}", sb.mem_latencies),
        );
        field(
            &mut out,
            &format!("{name} memory bandwidths"),
            format!("{:?}", sa.mem_bandwidths),
            format!("{:?}", sb.mem_bandwidths),
        );
    }

    field(
        &mut out,
        "cache measurements",
        enrich_repr(a.caches.is_some()),
        enrich_repr(b.caches.is_some()),
    );
    field(
        &mut out,
        "power measurements",
        enrich_repr(a.power.is_some()),
        enrich_repr(b.power.is_some()),
    );
    field(
        &mut out,
        "frequency",
        format!("{:?}", a.freq_ghz),
        format!("{:?}", b.freq_ghz),
    );

    // Catch-all: identical shape but diverging fine-grained payload
    // (latency table entries, context numbering, cache sizes, ...).
    if out.is_empty() && a != b {
        out.push("topologies differ in measurement details (same structure)".to_string());
    }
    out
}

fn link_repr(l: &InterconnectLink) -> String {
    match l.bandwidth {
        Some(bw) => format!("{} cy, {} hop(s), {bw:.1} GB/s", l.latency, l.hops),
        None => format!("{} cy, {} hop(s)", l.latency, l.hops),
    }
}

fn enrich_repr(present: bool) -> String {
    if present { "present" } else { "absent" }.to_string()
}
