//! The `mct query` subcommand: the Section-5 query vocabulary answered
//! from a description file, through the precomputed [`TopoView`] index.

use std::sync::Arc;

use mctop::TopoView;
use mctop_alloc::{
    AllocCfg,
    AllocPlan,
    AllocPolicy, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

use mctop_runtime::{
    metrics,
    steal::steal_classes_with_view,
    steal_queues_with_view,
    ExecCfg,
    Executor,
    StealPool, //
};

use crate::{
    parse,
    resolve,
    CliError, //
};

pub fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let [target, query, rest @ ..] = args else {
        return Err(CliError::Usage("query needs a <desc> and a query".into()));
    };
    let (topo, _) = resolve::load(target)?;
    let view = TopoView::try_new(Arc::new(topo))?;

    let int = |what: &str| -> Result<usize, CliError> {
        let [s] = rest else {
            return Err(CliError::Usage(format!("`{query}` takes one {what}")));
        };
        parse(s, what)
    };
    let pair = |what: &str| -> Result<(usize, usize), CliError> {
        let [a, b] = rest else {
            return Err(CliError::Usage(format!("`{query}` takes two {what}s")));
        };
        Ok((parse(a, what)?, parse(b, what)?))
    };
    let check_socket = |s: usize| -> Result<usize, CliError> {
        if s < view.num_sockets() {
            Ok(s)
        } else {
            Err(CliError::Failed(format!(
                "socket {s} out of range (machine has {})",
                view.num_sockets()
            )))
        }
    };
    let check_hwc = |h: usize| -> Result<usize, CliError> {
        if h < view.num_hwcs() {
            Ok(h)
        } else {
            Err(CliError::Failed(format!(
                "context {h} out of range (machine has {})",
                view.num_hwcs()
            )))
        }
    };
    let list = |ids: &[usize]| {
        ids.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };

    match query.as_str() {
        "summary" => println!("{}", view.summary()),
        "latency" => {
            let (a, b) = pair("context")?;
            println!("{}", view.get_latency(check_hwc(a)?, check_hwc(b)?));
        }
        "socket-latency" => {
            let (a, b) = pair("socket")?;
            println!(
                "{}",
                view.socket_latency(check_socket(a)?, check_socket(b)?)
            );
        }
        "closest" => {
            let s = check_socket(int("socket")?)?;
            println!("{}", list(view.closest_sockets(s)));
        }
        "sockets-by-bw" => println!("{}", list(view.sockets_by_local_bandwidth())),
        "walk" => println!("{}", list(view.socket_order_bandwidth_proximity())),
        "max-latency" => println!("{}", view.max_latency()),
        "socket-of" => println!("{}", view.socket_of(check_hwc(int("context")?)?)),
        "core-of" => println!("{}", view.core_of(check_hwc(int("context")?)?)),
        "node-of" => match view.node_of(check_hwc(int("context")?)?) {
            Some(node) => println!("{node}"),
            None => println!("unknown"),
        },
        "hwcs" => {
            let (s, cores_first) = match rest {
                [s] => (parse::<usize>(s, "socket")?, false),
                [s, mode] if mode == "cores-first" => (parse::<usize>(s, "socket")?, true),
                _ => {
                    return Err(CliError::Usage(
                        "`hwcs` takes a socket and optionally `cores-first`".into(),
                    ))
                }
            };
            let s = check_socket(s)?;
            let ids = if cores_first {
                view.socket_hwcs_cores_first(s)
            } else {
                view.socket_hwcs_compact(s)
            };
            println!("{}", list(ids));
        }
        "alloc-plan" => {
            let (policy_s, threads) = match rest {
                [p] => (p, None),
                [p, t] => (p, Some(parse::<usize>(t, "thread count")?)),
                _ => {
                    return Err(CliError::Usage(
                        "`alloc-plan` takes a policy and optionally a thread count".into(),
                    ))
                }
            };
            let policy: AllocPolicy = policy_s.parse().map_err(CliError::Usage)?;
            let n = threads.unwrap_or(view.num_hwcs());
            // RR_CORE: the round-robin hand-out spreads workers across
            // every socket, so the plan shows each socket's stripes.
            let place = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(n))
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let plan = AllocPlan::resolve(&view, &place, &policy, &AllocCfg::default())
                .map_err(|e| CliError::Failed(e.to_string()))?;
            print!("{}", plan.render());
        }
        "metrics" => {
            if !rest.is_empty() {
                return Err(CliError::Usage("`metrics` takes no arguments".into()));
            }
            query_metrics(&view)?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown query `{other}` (see `mct help`)"
            )))
        }
    }
    Ok(())
}

/// The `metrics` query: runs a small deterministic workload through
/// every instrumented layer — prober (noiseless inference, plain and
/// adaptive), live executor (targeted-only rounds plus one re-arm),
/// single-threaded steal/injector harnesses, and alloc plan resolution
/// — then prints the process-global counter snapshot as JSON.
///
/// Every printed counter is exact and reproducible: the live executor
/// phase uses only targeted (mailbox) traffic, the steal and injector
/// counters come from a single-threaded harness over the real
/// recording paths, and the timing-dependent park/unpark counters are
/// zeroed ([`mctop_runtime::MetricsSnapshot::without_timing_noise`]).
/// That is what makes the output golden-testable byte for byte.
fn query_metrics(view: &TopoView) -> Result<(), CliError> {
    let handle = metrics::global();
    handle.reset();

    // --- prober activity: one plain and one adaptive noiseless
    // inference of the same machine, when the description names a
    // simulated model (a plain *.mct.json file has no prober to run).
    if let Some(spec) = mcsim::presets::by_name(&view.name) {
        let mut prober = mctop::backend::SimProber::noiseless(&spec);
        let inf = mctop::alg::run_full(&mut prober, &mctop::ProbeConfig::fast())?;
        handle.record_probe_stats(&inf.stats);
        let mut prober = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            adaptive: Some(mctop::AdaptiveCfg::default()),
            ..mctop::ProbeConfig::fast()
        };
        let inf = mctop::alg::run_full(&mut prober, &cfg)?;
        handle.record_probe_stats(&inf.stats);
    }

    // --- live executor: RR_CORE workers, targeted-only rounds (every
    // task lands in a mailbox — deterministic), plus one graceful
    // re-arm.
    let n = view.num_hwcs().min(8);
    let place = Placement::with_view(view, Policy::RrCore, PlaceOpts::threads(n))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut exec = Executor::with_cfg(
        Some(view),
        &place,
        ExecCfg {
            workers: None,
            os_pin: false,
        },
    );
    for _ in 0..3 {
        let _ = exec.run(|ctx| ctx.id);
    }
    exec.rearm(Some(view), &place);
    let _ = exec.run(|ctx| ctx.id);
    exec.shutdown();

    // --- steal-distance histogram: a single-threaded harness over the
    // real steal pools. Worker 0 drains every other worker's deque in
    // the min-latency victim order, so each steal is classified by the
    // machine's actual socket distances.
    let hwcs: Vec<usize> = place.order().to_vec();
    let mut queues: Vec<StealPool<u64>> = steal_queues_with_view(view, &hwcs);
    let classes = steal_classes_with_view(view, &hwcs);
    for (queue, row) in queues.iter_mut().zip(classes) {
        queue.attach_metrics(Arc::clone(handle), row);
    }
    for queue in &queues {
        queue.push(1);
        queue.push(2);
    }
    while queues[0].next().is_some() {}
    // Injector refill: a batch lands in worker 0's deque; the surplus
    // drains as local-deque hits.
    let injector = crossbeam_deque::Injector::new();
    for i in 0..4u64 {
        injector.push(i);
    }
    while queues[0].steal_batch_from(&injector).is_some() {}
    while queues[0].next().is_some() {}

    // --- alloc plans: resolution records into the global handle by
    // itself. BW_PROPORTIONAL only applies to descriptions carrying
    // bandwidth measurements; skip it (not an error) elsewhere.
    for policy in [AllocPolicy::Local, AllocPolicy::Interleave] {
        AllocPlan::resolve(view, &place, &policy, &AllocCfg::default())
            .map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let _ = AllocPlan::resolve(
        view,
        &place,
        &AllocPolicy::BwProportional,
        &AllocCfg::default(),
    );

    let snap = handle.snapshot().without_timing_noise();
    let json = serde_json::to_string_pretty(&snap)
        .map_err(|e| CliError::Failed(format!("serializing metrics snapshot: {e}")))?;
    println!("{json}");
    Ok(())
}
