//! The `mct query` subcommand: the Section-5 query vocabulary answered
//! from a description file, through the precomputed [`TopoView`] index.
//!
//! The answer text itself comes from [`mctopd::eval`] — the same
//! functions the daemon serves over the wire — so `mct query <desc> …`
//! and `mct query --remote <socket> <desc> …` print byte-identical
//! output by construction (`tests/serving_equivalence.rs` proves it
//! end to end).

use std::sync::Arc;

use mctop::TopoView;
use mctop_alloc::{
    AllocCfg,
    AllocPlan,
    AllocPolicy, //
};
use mctop_client::Client;
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};
use mctopd::eval::{
    self,
    EvalError, //
};

use mctop_runtime::{
    metrics,
    steal::steal_classes_with_view,
    steal_queues_with_view,
    ExecCfg,
    Executor,
    StealPool, //
};

use crate::{
    resolve,
    take_flag,
    CliError, //
};

impl From<EvalError> for CliError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Usage(m) => CliError::Usage(m),
            EvalError::Failed(m) => CliError::Failed(m),
        }
    }
}

pub fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let mut args = args.to_vec();
    let remote = take_flag(&mut args, "--remote")?;
    let [target, query, rest @ ..] = args.as_slice() else {
        return Err(CliError::Usage("query needs a <desc> and a query".into()));
    };

    if let Some(socket) = remote {
        return query_remote(&socket, target, query, rest);
    }

    let (topo, _) = resolve::load(target)?;
    let view = TopoView::try_new(Arc::new(topo))?;

    if query == "metrics" {
        if !rest.is_empty() {
            return Err(CliError::Usage("`metrics` takes no arguments".into()));
        }
        return query_metrics(&view);
    }

    let text = eval::query_text(&view, query, rest)?;
    print!("{text}");
    Ok(())
}

/// `mct query --remote <socket> <desc> <query> [args...]`: the same
/// query answered by a running `mctopd` instead of a local load. The
/// response body is printed verbatim; a server-side error becomes a
/// normal CLI failure carrying the server's message.
fn query_remote(socket: &str, desc: &str, query: &str, args: &[String]) -> Result<(), CliError> {
    let mut client =
        Client::connect(socket).map_err(|e| CliError::Failed(format!("connecting: {e}")))?;
    let text = client
        .query(desc, query, args)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    print!("{text}");
    Ok(())
}

/// The `metrics` query: runs a small deterministic workload through
/// every instrumented layer — prober (noiseless inference, plain and
/// adaptive), live executor (targeted-only rounds plus one re-arm),
/// single-threaded steal/injector harnesses, and alloc plan resolution
/// — then prints the process-global counter snapshot as JSON.
///
/// This stays CLI-local (not in `mctopd::eval`): it *runs a workload*
/// rather than answering from the topology, and the daemon serves its
/// own live counters through the `MetricsSnapshot` request instead.
///
/// Every printed counter is exact and reproducible: the live executor
/// phase uses only targeted (mailbox) traffic, the steal and injector
/// counters come from a single-threaded harness over the real
/// recording paths, and the timing-dependent park/unpark counters are
/// zeroed ([`mctop_runtime::MetricsSnapshot::without_timing_noise`]).
/// That is what makes the output golden-testable byte for byte.
fn query_metrics(view: &TopoView) -> Result<(), CliError> {
    let handle = metrics::global();
    handle.reset();

    // --- prober activity: one plain and one adaptive noiseless
    // inference of the same machine, when the description names a
    // simulated model (a plain *.mct.json file has no prober to run).
    if let Some(spec) = mcsim::presets::by_name(&view.name) {
        let mut prober = mctop::backend::SimProber::noiseless(&spec);
        let inf = mctop::alg::run_full(&mut prober, &mctop::ProbeConfig::fast())?;
        handle.record_probe_stats(&inf.stats);
        let mut prober = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            adaptive: Some(mctop::AdaptiveCfg::default()),
            ..mctop::ProbeConfig::fast()
        };
        let inf = mctop::alg::run_full(&mut prober, &cfg)?;
        handle.record_probe_stats(&inf.stats);
    }

    // --- live executor: RR_CORE workers, targeted-only rounds (every
    // task lands in a mailbox — deterministic), plus one graceful
    // re-arm.
    let n = view.num_hwcs().min(8);
    let place = Placement::with_view(view, Policy::RrCore, PlaceOpts::threads(n))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let mut exec = Executor::with_cfg(
        Some(view),
        &place,
        ExecCfg {
            workers: None,
            os_pin: false,
        },
    );
    for _ in 0..3 {
        let _ = exec.run(|ctx| ctx.id);
    }
    exec.rearm(Some(view), &place);
    let _ = exec.run(|ctx| ctx.id);
    exec.shutdown();

    // --- steal-distance histogram: a single-threaded harness over the
    // real steal pools. Worker 0 drains every other worker's deque in
    // the min-latency victim order, so each steal is classified by the
    // machine's actual socket distances.
    let hwcs: Vec<usize> = place.order().to_vec();
    let mut queues: Vec<StealPool<u64>> = steal_queues_with_view(view, &hwcs);
    let classes = steal_classes_with_view(view, &hwcs);
    for (queue, row) in queues.iter_mut().zip(classes) {
        queue.attach_metrics(Arc::clone(handle), row);
    }
    for queue in &queues {
        queue.push(1);
        queue.push(2);
    }
    while queues[0].next().is_some() {}
    // Injector refill: a batch lands in worker 0's deque; the surplus
    // drains as local-deque hits.
    let injector = crossbeam_deque::Injector::new();
    for i in 0..4u64 {
        injector.push(i);
    }
    while queues[0].steal_batch_from(&injector).is_some() {}
    while queues[0].next().is_some() {}

    // --- alloc plans: resolution records into the global handle by
    // itself. BW_PROPORTIONAL only applies to descriptions carrying
    // bandwidth measurements; skip it (not an error) elsewhere.
    for policy in [AllocPolicy::Local, AllocPolicy::Interleave] {
        AllocPlan::resolve(view, &place, &policy, &AllocCfg::default())
            .map_err(|e| CliError::Failed(e.to_string()))?;
    }
    let _ = AllocPlan::resolve(
        view,
        &place,
        &AllocPolicy::BwProportional,
        &AllocCfg::default(),
    );

    let snap = handle.snapshot().without_timing_noise();
    let json = serde_json::to_string_pretty(&snap)
        .map_err(|e| CliError::Failed(format!("serializing metrics snapshot: {e}")))?;
    println!("{json}");
    Ok(())
}
