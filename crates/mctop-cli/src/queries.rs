//! The `mct query` subcommand: the Section-5 query vocabulary answered
//! from a description file, through the precomputed [`TopoView`] index.

use std::sync::Arc;

use mctop::TopoView;
use mctop_alloc::{
    AllocCfg,
    AllocPlan,
    AllocPolicy, //
};
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

use crate::{
    parse,
    resolve,
    CliError, //
};

pub fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let [target, query, rest @ ..] = args else {
        return Err(CliError::Usage("query needs a <desc> and a query".into()));
    };
    let (topo, _) = resolve::load(target)?;
    let view = TopoView::try_new(Arc::new(topo))?;

    let int = |what: &str| -> Result<usize, CliError> {
        let [s] = rest else {
            return Err(CliError::Usage(format!("`{query}` takes one {what}")));
        };
        parse(s, what)
    };
    let pair = |what: &str| -> Result<(usize, usize), CliError> {
        let [a, b] = rest else {
            return Err(CliError::Usage(format!("`{query}` takes two {what}s")));
        };
        Ok((parse(a, what)?, parse(b, what)?))
    };
    let check_socket = |s: usize| -> Result<usize, CliError> {
        if s < view.num_sockets() {
            Ok(s)
        } else {
            Err(CliError::Failed(format!(
                "socket {s} out of range (machine has {})",
                view.num_sockets()
            )))
        }
    };
    let check_hwc = |h: usize| -> Result<usize, CliError> {
        if h < view.num_hwcs() {
            Ok(h)
        } else {
            Err(CliError::Failed(format!(
                "context {h} out of range (machine has {})",
                view.num_hwcs()
            )))
        }
    };
    let list = |ids: &[usize]| {
        ids.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };

    match query.as_str() {
        "summary" => println!("{}", view.summary()),
        "latency" => {
            let (a, b) = pair("context")?;
            println!("{}", view.get_latency(check_hwc(a)?, check_hwc(b)?));
        }
        "socket-latency" => {
            let (a, b) = pair("socket")?;
            println!(
                "{}",
                view.socket_latency(check_socket(a)?, check_socket(b)?)
            );
        }
        "closest" => {
            let s = check_socket(int("socket")?)?;
            println!("{}", list(view.closest_sockets(s)));
        }
        "sockets-by-bw" => println!("{}", list(view.sockets_by_local_bandwidth())),
        "walk" => println!("{}", list(view.socket_order_bandwidth_proximity())),
        "max-latency" => println!("{}", view.max_latency()),
        "socket-of" => println!("{}", view.socket_of(check_hwc(int("context")?)?)),
        "core-of" => println!("{}", view.core_of(check_hwc(int("context")?)?)),
        "node-of" => match view.node_of(check_hwc(int("context")?)?) {
            Some(node) => println!("{node}"),
            None => println!("unknown"),
        },
        "hwcs" => {
            let (s, cores_first) = match rest {
                [s] => (parse::<usize>(s, "socket")?, false),
                [s, mode] if mode == "cores-first" => (parse::<usize>(s, "socket")?, true),
                _ => {
                    return Err(CliError::Usage(
                        "`hwcs` takes a socket and optionally `cores-first`".into(),
                    ))
                }
            };
            let s = check_socket(s)?;
            let ids = if cores_first {
                view.socket_hwcs_cores_first(s)
            } else {
                view.socket_hwcs_compact(s)
            };
            println!("{}", list(ids));
        }
        "alloc-plan" => {
            let (policy_s, threads) = match rest {
                [p] => (p, None),
                [p, t] => (p, Some(parse::<usize>(t, "thread count")?)),
                _ => {
                    return Err(CliError::Usage(
                        "`alloc-plan` takes a policy and optionally a thread count".into(),
                    ))
                }
            };
            let policy: AllocPolicy = policy_s.parse().map_err(CliError::Usage)?;
            let n = threads.unwrap_or(view.num_hwcs());
            // RR_CORE: the round-robin hand-out spreads workers across
            // every socket, so the plan shows each socket's stripes.
            let place = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(n))
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let plan = AllocPlan::resolve(&view, &place, &policy, &AllocCfg::default())
                .map_err(|e| CliError::Failed(e.to_string()))?;
            print!("{}", plan.render());
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown query `{other}` (see `mct help`)"
            )))
        }
    }
    Ok(())
}
