//! `mct` — the MCTOP description-file tool.
//!
//! The paper's workflow (Section 2) is *infer once, store a description
//! file, load everywhere*. `mct` is the command-line face of that
//! workflow over the simulated machine models:
//!
//! - `mct list` — machine names loadable from the shipped library
//! - `mct infer` — run MCTOP-ALG on a preset and write a description
//! - `mct validate` — parse + structurally validate descriptions
//! - `mct show` — render a topology as text or Graphviz DOT
//! - `mct query` — answer topology queries from a description
//! - `mct diff` — structural comparison of two descriptions
//! - `mct regen-descs` — regenerate the committed `descs/` library
//! - `mct serve` — run the `mctopd` daemon on a Unix socket
//!
//! Everything runs fully offline: the only inputs are the compiled-in
//! `descs/` library, the `mcsim` machine models, and local files.
//! `mct query --remote <socket>` answers the same queries from a
//! running daemon instead of loading the description locally — the
//! output is byte-identical either way (see `docs/SERVING.md`).

mod diff;
mod queries;
mod resolve;

use std::path::PathBuf;
use std::process::ExitCode;

use mctop::desc;
use mctop::registry;
use mctop::McTopError;

/// CLI failure modes, mapped to exit codes: usage errors exit 2,
/// everything else (I/O, invalid descriptions, found differences)
/// exits 1.
pub enum CliError {
    /// Bad invocation; the string is the offending detail.
    Usage(String),
    /// The command ran and failed.
    Failed(String),
    /// A comparison command found differences (already printed).
    Mismatch,
}

impl From<McTopError> for CliError {
    fn from(e: McTopError) -> Self {
        CliError::Failed(e.to_string())
    }
}

const USAGE: &str = "\
mct — MCTOP description tooling (infer once, store, load everywhere)

USAGE:
    mct list
    mct infer <machine> [--seed N] [--reps N] [--jobs N] [--adaptive]
                        [--exhaustive] [--no-enrich] [--out PATH]
                        [--stdout]
    mct validate <desc>...
    mct show <desc> [--format text|dot|summary] [--stats]
    mct query [--remote SOCKET] <desc> <query> [args...]
    mct diff <a> <b>
    mct regen-descs [--dir DIR] [--check] [--jobs N]
    mct serve --socket PATH [--descs DIR] [--pin MACHINE] [--workers N]
              [--os-pin]

Collection is deterministic in the worker count: --jobs only changes
wall-clock time (disjoint context pairs are measured concurrently),
never a single output byte. --adaptive measures every pair with a cheap
pilot pass and spends the full repetitions only on pairs near latency
cluster boundaries.

A <desc> is a machine name from `mct list` (resolved against the
shipped description library) or a path to a *.mct.json file.

`mct serve` runs the topology daemon (the `mctopd` binary, in
process): topologies are loaded once, shared, and served over a
versioned wire protocol on a Unix socket. `mct query --remote SOCKET`
asks a running daemon instead of loading locally; the answer is
byte-identical. See docs/SERVING.md for the protocol.

QUERIES:
    summary                     one-line topology summary
    latency <a> <b>             context-to-context latency, cycles
    socket-latency <a> <b>      socket-to-socket latency, cycles
    closest <socket>            other sockets by proximity
    sockets-by-bw               sockets by local memory bandwidth
    walk                        the CON-policy bandwidth/proximity walk
    max-latency                 worst context-to-context latency
    socket-of <hwc>             owning socket of a context
    core-of <hwc>               owning core of a context
    node-of <hwc>               local memory node of a context
    hwcs <socket> [cores-first] contexts of a socket, hand-out order
    alloc-plan <policy> [n]     resolved memory plan for n RR_CORE-placed
                                workers (default: all contexts); policies:
                                local, interleave, bw, on-nodes:<ids>
    metrics                     run a deterministic workload through the
                                instrumented runtime layers and print the
                                counter snapshot as JSON (schema in
                                docs/OBSERVABILITY.md)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("mct: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Failed(msg)) => {
            eprintln!("mct: {msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Mismatch) => ExitCode::FAILURE,
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "list" => cmd_list(),
        "infer" => cmd_infer(rest),
        "validate" => cmd_validate(rest),
        "show" => cmd_show(rest),
        "query" => queries::cmd_query(rest),
        "diff" => cmd_diff(rest),
        "regen-descs" => cmd_regen(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Pulls the value of `--flag VALUE` out of `args`, if present. A
/// following `--other` flag is not a value; `--out --stdout` must be
/// rejected, not write a file literally named `--stdout`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() && !args[i + 1].starts_with("--") => {
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
        Some(_) => Err(CliError::Usage(format!("{flag} needs a value"))),
    }
}

/// Pulls a boolean `--flag` out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("invalid {what} `{s}`")))
}

fn cmd_list() -> Result<(), CliError> {
    for name in registry::shipped_names() {
        let topo = resolve::load(name)?.0;
        println!(
            "{name:<18} {} sockets, {} cores, {} contexts",
            topo.num_sockets(),
            topo.num_cores(),
            topo.num_hwcs()
        );
    }
    Ok(())
}

/// Pulls `--jobs N` out of `args` and resolves the worker count for
/// parallel collection: explicit value, or the machine's parallelism
/// capped at 8 (the schedule has at most ⌊N/2⌋ disjoint pairs per
/// round and returns diminish well before that).
fn take_jobs(args: &mut Vec<String>) -> Result<usize, CliError> {
    let jobs = take_flag(args, "--jobs")?
        .map(|s| parse::<usize>(&s, "jobs"))
        .transpose()?;
    if jobs == Some(0) {
        return Err(CliError::Usage("--jobs must be at least 1".into()));
    }
    Ok(jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(1)
    }))
}

fn cmd_infer(args: &[String]) -> Result<(), CliError> {
    let mut args = args.to_vec();
    let seed = take_flag(&mut args, "--seed")?
        .map(|s| parse::<u64>(&s, "seed"))
        .transpose()?;
    let reps = take_flag(&mut args, "--reps")?
        .map(|s| parse::<usize>(&s, "reps"))
        .transpose()?;
    let jobs = take_jobs(&mut args)?;
    let out = take_flag(&mut args, "--out")?.map(PathBuf::from);
    let no_enrich = take_switch(&mut args, "--no-enrich");
    let adaptive = take_switch(&mut args, "--adaptive");
    let exhaustive = take_switch(&mut args, "--exhaustive");
    let to_stdout = take_switch(&mut args, "--stdout");
    if reps == Some(0) {
        return Err(CliError::Usage("--reps must be at least 1".into()));
    }
    if to_stdout && out.is_some() {
        return Err(CliError::Usage(
            "--out and --stdout are mutually exclusive".into(),
        ));
    }
    let [machine] = args.as_slice() else {
        return Err(CliError::Usage("infer takes exactly one machine".into()));
    };
    let spec = mcsim::presets::by_name(machine).ok_or_else(|| {
        CliError::Failed(format!(
            "unknown machine `{machine}` (see `mct list` for the modelled ones)"
        ))
    })?;

    // The worker count never changes a byte of output (the determinism
    // contract of `collect_parallel`), so it does not affect which
    // pipeline runs below and is not recorded in the provenance.

    // With no overrides this is exactly the canonical pipeline behind
    // `descs/` — reuse it so `mct infer <machine>` can never diverge
    // from `mct regen-descs` output (only the generator string differs).
    let (topo, prov) = if seed.is_none() && reps.is_none() && !no_enrich && !adaptive && !exhaustive
    {
        desc::canonical_jobs(&spec, jobs)?
    } else {
        // Noiseless by default (deterministic); --seed switches to the
        // noisy backend, which also needs the full repetition count.
        // Either way start from the machine's canonical config so
        // mesh-scale presets keep their pruned collection plan and
        // cluster thresholds.
        let mut cfg = match seed {
            Some(_) => mctop::ProbeConfig {
                reps: mctop::ProbeConfig::fast().reps,
                ..desc::canonical_probe_config_for(&spec)
            },
            None => desc::canonical_probe_config_for(&spec),
        };
        if let Some(reps) = reps {
            cfg.reps = reps;
        }
        if adaptive {
            cfg.adaptive = Some(mctop::AdaptiveCfg::default());
        }
        if exhaustive {
            // Opt out of the pruned plan: probe every context pair.
            // Reconstruction is exact, so on the synthetic models this
            // only changes the pair count, never a byte of the output.
            cfg.pairs = mctop::PairSelection::Exhaustive;
        }
        let mut topo = match seed {
            Some(seed) => {
                let mut prober = mctop::backend::SimProber::new(&spec, seed);
                mctop::infer_jobs(&mut prober, &cfg, jobs)?
            }
            None => {
                let mut prober = mctop::backend::SimProber::noiseless(&spec);
                mctop::infer_jobs(&mut prober, &cfg, jobs)?
            }
        };
        if !no_enrich {
            let mut mem = mctop::enrich::SimEnricher::new(&spec);
            let mut pow = mctop::enrich::SimEnricher::new(&spec);
            mctop::enrich::enrich_all(&mut topo, &mut mem, &mut pow)?;
            topo.freq_ghz = Some(spec.freq_ghz);
        }
        let prov = desc::Provenance::new(&spec.name, &cfg, seed, !no_enrich);
        (topo, prov)
    };
    let prov = prov.with_generator("mct infer");

    if to_stdout {
        println!("{}", desc::to_string(&topo, &prov)?);
        return Ok(());
    }
    let path = out.unwrap_or_else(|| PathBuf::from(desc::default_filename(&spec.name)));
    desc::save(&topo, &prov, &path)?;
    eprintln!("{}", topo.summary());
    eprintln!("wrote {}", path.display());
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    if args.is_empty() {
        return Err(CliError::Usage("validate needs at least one <desc>".into()));
    }
    for arg in args {
        // `resolve::load` parses, checks the provenance header and runs
        // structural validation; reaching here means all three passed.
        let (topo, prov) = resolve::load(arg)?;
        println!(
            "{arg}: ok — {} (format v{}, generator `{}`, {})",
            topo.summary(),
            prov.format_version,
            prov.generator,
            match prov.seed {
                Some(seed) => format!("seed {seed}"),
                None => "noiseless".to_string(),
            }
        );
    }
    Ok(())
}

fn cmd_show(args: &[String]) -> Result<(), CliError> {
    let mut args = args.to_vec();
    let format = take_flag(&mut args, "--format")?.unwrap_or_else(|| "text".into());
    let stats = take_switch(&mut args, "--stats");
    let [target] = args.as_slice() else {
        return Err(CliError::Usage("show takes exactly one <desc>".into()));
    };
    let (topo, _) = resolve::load(target)?;
    if stats {
        print!("{}", show_stats(&topo));
        return Ok(());
    }
    match format.as_str() {
        "text" => print!("{}", mctop::fmt::text::render(&topo)),
        "dot" => print!("{}", mctop::fmt::dot::full(&topo)),
        "summary" => println!("{}", topo.summary()),
        other => {
            return Err(CliError::Usage(format!(
                "unknown format `{other}` (text, dot, summary)"
            )))
        }
    }
    Ok(())
}

/// `mct show --stats`: the scale-relevant numbers of a topology — how
/// much probing its canonical inference costs and how much memory its
/// query view keeps resident. Everything printed is deterministic (the
/// view is fresh, so no lazily built matrix is counted).
fn show_stats(topo: &mctop::Mctop) -> String {
    use std::fmt::Write as _;

    let n = topo.num_hwcs();
    let total = n * (n - 1) / 2;
    // The probed-pair count comes from the canonical collection plan of
    // the matching machine model; a desc without a model (foreign file)
    // is reported as exhaustively probed.
    let probed = mcsim::presets::by_name(&topo.name)
        .and_then(|spec| match desc::canonical_probe_config_for(&spec).pairs {
            mctop::PairSelection::Pruned(pc) => mctop::alg::probe::pruned_pairs(n, &pc),
            mctop::PairSelection::Exhaustive => None,
        })
        .map(|pairs| pairs.len())
        .unwrap_or(total);
    let view = mctop::TopoView::new(std::sync::Arc::new(topo.clone()));

    let mut out = String::new();
    let _ = writeln!(out, "machine:         {}", topo.name);
    let _ = writeln!(out, "sockets:         {}", topo.num_sockets());
    let _ = writeln!(out, "cores:           {}", topo.num_cores());
    let _ = writeln!(out, "contexts:        {}", topo.num_hwcs());
    let _ = writeln!(out, "nodes:           {}", topo.num_nodes());
    let _ = writeln!(out, "latency levels:  {}", topo.levels.len());
    let _ = writeln!(out, "links:           {}", topo.links.len());
    let _ = writeln!(out, "pairs total:     {total}");
    let _ = writeln!(
        out,
        "pairs probed:    {probed} ({:.1}%)",
        100.0 * probed as f64 / total.max(1) as f64
    );
    let _ = writeln!(out, "view backend:    {}", view.backend().name());
    let _ = writeln!(out, "resident bytes:  {}", view.resident_bytes());
    out
}

fn cmd_diff(args: &[String]) -> Result<(), CliError> {
    let [a, b] = args else {
        return Err(CliError::Usage("diff takes exactly two <desc>s".into()));
    };
    let (ta, _) = resolve::load(a)?;
    let (tb, _) = resolve::load(b)?;
    let diffs = diff::structural(&ta, &tb);
    if diffs.is_empty() {
        println!("{a} == {b}");
        Ok(())
    } else {
        for d in &diffs {
            println!("{d}");
        }
        println!("{} difference(s) between {a} and {b}", diffs.len());
        Err(CliError::Mismatch)
    }
}

/// `mct serve`: run the topology daemon in the foreground until a
/// client sends the `Shutdown` admin request.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut args = args.to_vec();
    let socket = take_flag(&mut args, "--socket")?
        .ok_or_else(|| CliError::Usage("serve needs --socket PATH".into()))?;
    let descs = take_flag(&mut args, "--descs")?;
    let pin = take_flag(&mut args, "--pin")?;
    let workers = take_flag(&mut args, "--workers")?
        .map(|s| parse::<usize>(&s, "worker count"))
        .transpose()?;
    let os_pin = take_switch(&mut args, "--os-pin");
    if let Some(extra) = args.first() {
        return Err(CliError::Usage(format!(
            "unexpected serve argument `{extra}`"
        )));
    }
    let cfg = mctopd::ServerCfg {
        socket: PathBuf::from(&socket),
        source: match descs {
            Some(dir) => mctopd::DescSource::Dir(PathBuf::from(dir)),
            None => mctopd::DescSource::Shipped,
        },
        pin_desc: pin,
        workers,
        os_pin,
    };
    let server = mctopd::Server::bind(cfg).map_err(|e| CliError::Failed(e.to_string()))?;
    eprintln!("mct serve: listening on {socket}");
    server.start().join();
    eprintln!("mct serve: shut down");
    Ok(())
}

fn cmd_regen(args: &[String]) -> Result<(), CliError> {
    let mut args = args.to_vec();
    let dir = PathBuf::from(take_flag(&mut args, "--dir")?.unwrap_or_else(|| "descs".into()));
    let check = take_switch(&mut args, "--check");
    let jobs = take_jobs(&mut args)?;
    if !args.is_empty() {
        return Err(CliError::Usage(format!(
            "unexpected regen-descs argument `{}`",
            args[0]
        )));
    }

    let specs: Vec<mcsim::MachineSpec> = mcsim::presets::all_paper_platforms()
        .into_iter()
        .chain(mcsim::presets::all_synthetic())
        .chain(mcsim::presets::all_mesh_scale())
        .collect();
    let mut stale = 0usize;
    if !check {
        std::fs::create_dir_all(&dir).map_err(|e| CliError::Failed(e.to_string()))?;
    }
    for spec in &specs {
        let text = desc::canonical_string_jobs(spec, jobs)?;
        let path = dir.join(desc::default_filename(&spec.name));
        if check {
            match std::fs::read_to_string(&path) {
                Ok(on_disk) if on_disk == text => println!("{}: ok", path.display()),
                Ok(_) => {
                    println!("{}: STALE (regeneration differs)", path.display());
                    stale += 1;
                }
                Err(_) => {
                    println!("{}: MISSING", path.display());
                    stale += 1;
                }
            }
        } else {
            std::fs::write(&path, &text).map_err(|e| CliError::Failed(e.to_string()))?;
            println!("wrote {} ({} bytes)", path.display(), text.len());
        }
    }
    if stale > 0 {
        println!("{stale} description(s) out of date — run `mct regen-descs`");
        return Err(CliError::Mismatch);
    }
    Ok(())
}
