//! Golden transcript of one serving session: the version handshake
//! followed by one request of every kind, with each frame rendered as
//! hex-plus-decoding and pinned byte-for-byte against
//! `tests/golden_serving/session.txt`.
//!
//! This is the wire-format regression net: any change to a tag, field
//! order, integer width, or response body shows up as a diff here.
//! Regenerate after an *intentional* protocol change (which must also
//! bump `PROTO_VERSION`) with
//! `MCT_UPDATE_GOLDEN=1 cargo test -p mctop-cli --test serving_golden`.
//!
//! The `MetricsSnapshot` response body is elided: it carries live
//! counters (park/unpark traffic is timing-dependent), so its bytes
//! are checked for shape, not pinned.

use std::fmt::Write as _;
use std::path::PathBuf;

use mctop_client::wire::{
    self,
    Request, //
};
use mctop_client::{
    Client,
    Response,
    PROTO_VERSION, //
};
use mctopd::{
    Server,
    ServerCfg, //
};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_serving/session.txt")
}

/// Hex of the payload's first bytes: enough to pin the tag and the
/// leading fields without dumping whole bodies twice.
fn hex_prefix(payload: &[u8]) -> String {
    let shown: Vec<String> = payload
        .iter()
        .take(20)
        .map(|b| format!("{b:02x}"))
        .collect();
    let ellipsis = if payload.len() > 20 { " …" } else { "" };
    format!(
        "[{}{}] {} byte(s)",
        shown.join(" "),
        ellipsis,
        payload.len()
    )
}

fn render_request(out: &mut String, req: &Request) {
    let payload = wire::encode_request(req);
    let _ = writeln!(out, ">> {}", req.kind());
    let _ = writeln!(out, "   {}", hex_prefix(&payload));
    match req {
        Request::Hello { version } => {
            let _ = writeln!(out, "   version: {version}");
        }
        Request::Query { desc, query, args } => {
            let _ = writeln!(out, "   desc: {desc}  query: {query}  args: {args:?}");
        }
        Request::Placement {
            desc,
            policy,
            workers,
        }
        | Request::AllocPlan {
            desc,
            policy,
            workers,
        } => {
            let _ = writeln!(out, "   desc: {desc}  policy: {policy}  workers: {workers}");
        }
        _ => {}
    }
}

/// Renders a response; `elide_body` replaces the body bytes with a
/// marker (used for the live-counter snapshot).
fn render_response(out: &mut String, resp: &Response, elide_body: bool) {
    let payload = wire::encode_response(resp);
    match resp {
        Response::HelloOk { version } => {
            let _ = writeln!(out, "<< hello-ok");
            let _ = writeln!(out, "   {}", hex_prefix(&payload));
            let _ = writeln!(out, "   version: {version}");
        }
        Response::Ok { body } if elide_body => {
            let _ = writeln!(out, "<< ok (body elided: live counters)");
        }
        Response::Ok { body } => {
            let _ = writeln!(out, "<< ok");
            let _ = writeln!(out, "   {}", hex_prefix(&payload));
            if body.is_empty() {
                let _ = writeln!(out, "   (empty body)");
            } else {
                for line in String::from_utf8(body.clone()).expect("utf-8 body").lines() {
                    let _ = writeln!(out, "   | {line}");
                }
            }
        }
        Response::Err { code, message } => {
            let _ = writeln!(out, "<< error ({code})");
            let _ = writeln!(out, "   {}", hex_prefix(&payload));
            let _ = writeln!(out, "   message: {message}");
        }
    }
}

#[test]
fn serving_session_matches_golden() {
    let sock = std::env::temp_dir().join(format!("mctopd-golden-{}.sock", std::process::id()));
    let server = Server::bind(ServerCfg::new(&sock)).unwrap();
    let handle = server.start();

    let mut out = String::new();
    let _ = writeln!(out, "# MCTOP serving transcript, protocol v{PROTO_VERSION}");
    let _ = writeln!(out, "# one request of each kind; `>>` client, `<<` server");
    let _ = writeln!(out);

    // The handshake, replayed manually so it appears in the transcript
    // (Client::connect performs it internally).
    let hello = Request::Hello {
        version: PROTO_VERSION,
    };
    let mut client = Client::connect(&sock).unwrap();
    render_request(&mut out, &hello);
    render_response(
        &mut out,
        &Response::HelloOk {
            version: PROTO_VERSION,
        },
        false,
    );
    let _ = writeln!(out);

    let session: Vec<Request> = vec![
        Request::ListTopologies,
        Request::Query {
            desc: "ivy".into(),
            query: "summary".into(),
            args: vec![],
        },
        Request::Query {
            desc: "ivy".into(),
            query: "latency".into(),
            args: vec!["0".into(), "20".into()],
        },
        Request::Placement {
            desc: "ivy".into(),
            policy: "RR_CORE".into(),
            workers: 4,
        },
        Request::AllocPlan {
            desc: "ivy".into(),
            policy: "local".into(),
            workers: 4,
        },
        Request::MetricsSnapshot,
        Request::Reload,
        Request::Shutdown,
    ];
    for req in &session {
        let elide = matches!(req, Request::MetricsSnapshot);
        let resp = client.roundtrip(req).unwrap();
        if elide {
            // Shape check in place of pinning: the body is the JSON
            // two-bucket snapshot.
            let Response::Ok { body } = &resp else {
                panic!("metrics-snapshot failed: {resp:?}")
            };
            let text = std::str::from_utf8(body).unwrap();
            assert!(
                text.contains("\"runtime\""),
                "snapshot missing runtime bucket"
            );
            assert!(
                text.contains("\"server\""),
                "snapshot missing server bucket"
            );
        }
        render_request(&mut out, req);
        render_response(&mut out, &resp, elide);
        let _ = writeln!(out);
    }
    handle.join();

    let path = golden_path();
    if std::env::var_os("MCT_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &out).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden {}", path.display()));
    assert_eq!(
        out,
        want,
        "serving transcript drifted from {} (MCT_UPDATE_GOLDEN=1 to regenerate; \
         an intentional wire change must bump PROTO_VERSION)",
        path.display()
    );
}

#[test]
fn version_mismatch_transcript_is_stable() {
    let sock = std::env::temp_dir().join(format!("mctopd-golden-vm-{}.sock", std::process::id()));
    let server = Server::bind(ServerCfg::new(&sock)).unwrap();
    let handle = server.start();

    let err = Client::connect_version(&sock, 9999).unwrap_err();
    assert_eq!(
        err.to_string(),
        format!(
            "server error (version-mismatch): server speaks protocol v{PROTO_VERSION}, \
             client offered v9999"
        )
    );
    handle.stop();
}
