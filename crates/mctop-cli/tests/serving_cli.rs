//! CLI-level serving round trip: a real `mct serve` child process,
//! real `mct query --remote` invocations against it, and the promise
//! that remote stdout is byte-identical to local stdout.

use std::path::PathBuf;
use std::process::{
    Child,
    Command,
    Output, //
};
use std::time::{
    Duration,
    Instant, //
};

use mctop_client::Client;

fn mct(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mct"))
        .args(args)
        .output()
        .expect("mct runs")
}

/// Starts `mct serve` and waits until the socket accepts connections.
/// The caller owns the child and must `wait()` it (the test does, after
/// asking the server to shut down over the wire).
#[allow(clippy::zombie_processes)]
fn spawn_server(sock: &str) -> Child {
    let child = Command::new(env!("CARGO_BIN_EXE_mct"))
        .args(["serve", "--socket", sock])
        .spawn()
        .expect("mct serve starts");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if std::os::unix::net::UnixStream::connect(sock).is_ok() {
            return child;
        }
        assert!(Instant::now() < deadline, "server never came up on {sock}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn remote_queries_match_local_queries_byte_for_byte() {
    let sock = std::env::temp_dir().join(format!("mct-serve-cli-{}.sock", std::process::id()));
    let sock = sock.to_str().unwrap().to_string();
    let mut server = spawn_server(&sock);

    let cases: &[&[&str]] = &[
        &["ivy", "summary"],
        &["ivy", "latency", "0", "20"],
        &["ivy", "walk"],
        &["ivy", "alloc-plan", "local", "8"],
        &["westmere", "hwcs", "3", "cores-first"],
        &["sparc", "max-latency"],
    ];
    for case in cases {
        let local = mct(&[&["query"], *case].concat());
        assert!(local.status.success(), "local {case:?} failed");
        let remote = mct(&[&["query", "--remote", &sock], *case].concat());
        assert!(remote.status.success(), "remote {case:?} failed");
        assert_eq!(
            local.stdout, remote.stdout,
            "{case:?}: remote stdout diverged from local"
        );
    }

    // Failure surfaces too: unknown query exits nonzero remotely.
    let bad = mct(&["query", "--remote", &sock, "ivy", "bogus"]);
    assert_eq!(bad.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("unknown query"), "stderr: {stderr}");

    // Shut the daemon down over the wire; the child exits cleanly and
    // removes its socket.
    Client::connect(&sock).unwrap().shutdown_server().unwrap();
    let status = server.wait().expect("server exits");
    assert!(status.success(), "mct serve exited with {status}");
    assert!(!PathBuf::from(&sock).exists(), "socket file left behind");
}

#[test]
fn serve_rejects_bad_invocations() {
    // No --socket.
    let out = mct(&["serve"]);
    assert_eq!(out.status.code(), Some(2));
    // Stray positional argument.
    let out = mct(&["serve", "--socket", "/tmp/x.sock", "stray"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn remote_without_server_fails_cleanly() {
    let sock = std::env::temp_dir().join(format!("mct-no-server-{}.sock", std::process::id()));
    let out = mct(&[
        "query",
        "--remote",
        sock.to_str().unwrap(),
        "ivy",
        "summary",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("connecting"), "stderr: {stderr}");
}
