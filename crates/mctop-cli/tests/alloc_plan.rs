//! Golden tests for `mct query alloc-plan`: the rendered memory plan
//! of every paper platform under every built-in policy is pinned
//! byte-for-byte against `tests/golden_alloc/`.
//!
//! Regenerate after an intentional format or policy change with
//! `MCT_UPDATE_GOLDEN=1 cargo test -p mctop-cli --test alloc_plan`.

use std::path::PathBuf;
use std::process::{
    Command,
    Output, //
};

const PLATFORMS: &[&str] = &["ivy", "opteron", "haswell", "westmere", "sparc"];
const POLICIES: &[&str] = &["local", "interleave", "bw"];
/// Small enough to keep goldens readable, large enough to use several
/// sockets of every platform.
const THREADS: &str = "8";

fn mct(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mct"))
        .args(args)
        .output()
        .expect("mct runs")
}

fn golden_path(machine: &str, policy: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_alloc")
        .join(format!("{machine}-{policy}.txt"))
}

#[test]
fn alloc_plan_matches_goldens_on_every_paper_platform() {
    let update = std::env::var_os("MCT_UPDATE_GOLDEN").is_some();
    for machine in PLATFORMS {
        for policy in POLICIES {
            let out = mct(&["query", machine, "alloc-plan", policy, THREADS]);
            assert!(
                out.status.success(),
                "{machine}/{policy}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let got = String::from_utf8(out.stdout).expect("utf-8 plan");
            let path = golden_path(machine, policy);
            if update {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|_| panic!("missing golden {}", path.display()));
            assert_eq!(
                got,
                want,
                "{machine}/{policy} drifted from {} \
                 (MCT_UPDATE_GOLDEN=1 to regenerate)",
                path.display()
            );
        }
    }
}

#[test]
fn alloc_plan_defaults_to_every_context() {
    let out = mct(&["query", "synth-small", "alloc-plan", "local"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    // synth-small has 16 contexts; with no thread count every one gets
    // an arena.
    assert!(text.contains("16 x"), "{text}");
    assert!(text.contains("# worker  15"), "{text}");
}

#[test]
fn alloc_plan_on_nodes_and_errors() {
    let out = mct(&["query", "ivy", "alloc-plan", "on-nodes:1", "4"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("ON_NODES(1)"), "{text}");
    // Every stripe sits on node 1; node 0 only shows an empty total.
    assert!(text.contains("n1:  16384p"), "{text}");
    assert!(text.contains("n0: 0p (0 KiB)"), "{text}");

    // Unknown policy: usage error, exit 2.
    let out = mct(&["query", "ivy", "alloc-plan", "numa", "4"]);
    assert_eq!(out.status.code(), Some(2));

    // Node out of range: command failure, exit 1.
    let out = mct(&["query", "ivy", "alloc-plan", "on-nodes:9", "4"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));

    // More workers than contexts: placement failure, exit 1.
    let out = mct(&["query", "ivy", "alloc-plan", "local", "100"]);
    assert_eq!(out.status.code(), Some(1));
}
