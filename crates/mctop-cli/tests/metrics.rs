//! Golden tests for `mct query metrics`: the JSON counter snapshot of
//! the deterministic observability workload is pinned byte-for-byte
//! against `tests/golden_metrics/`.
//!
//! Regenerate after an intentional counter or schema change with
//! `MCT_UPDATE_GOLDEN=1 cargo test -p mctop-cli --test metrics`.

use std::path::PathBuf;
use std::process::{
    Command,
    Output, //
};

/// One small dual-socket machine and one 8-socket machine, so the
/// goldens pin both a flat and a deep steal-distance histogram.
const PLATFORMS: &[&str] = &["ivy", "westmere"];

fn mct(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mct"))
        .args(args)
        .output()
        .expect("mct runs")
}

fn golden_path(machine: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_metrics")
        .join(format!("{machine}.json"))
}

/// Minimal JSON number extraction for schema assertions: finds
/// `"field": N` and returns N.
fn field(json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("field {name} missing from:\n{json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("field {name} is not a number"))
}

#[test]
fn metrics_matches_goldens() {
    let update = std::env::var_os("MCT_UPDATE_GOLDEN").is_some();
    for machine in PLATFORMS {
        let out = mct(&["query", machine, "metrics"]);
        assert!(
            out.status.success(),
            "{machine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = String::from_utf8(out.stdout).expect("utf-8 snapshot");
        let path = golden_path(machine);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing golden {}", path.display()));
        assert_eq!(
            got,
            want,
            "{machine} metrics drifted from {} \
             (MCT_UPDATE_GOLDEN=1 to regenerate)",
            path.display()
        );
    }
}

#[test]
fn steal_histogram_sums_to_total_steals() {
    for machine in PLATFORMS {
        let out = mct(&["query", machine, "metrics"]);
        assert!(out.status.success());
        let json = String::from_utf8(out.stdout).expect("utf-8 snapshot");
        let total = field(&json, "steals_total");
        let sum = field(&json, "steals_same_socket")
            + field(&json, "steals_one_hop")
            + field(&json, "steals_multi_hop")
            + field(&json, "steals_unclassified");
        assert_eq!(sum, total, "{machine}: histogram does not sum");
        assert!(total > 0, "{machine}: workload recorded no steals");
        // The deterministic workload exercises every layer.
        assert!(field(&json, "tasks") > 0);
        assert_eq!(field(&json, "tasks"), field(&json, "mailbox_hits"));
        assert!(field(&json, "runs") > 0);
        assert!(field(&json, "plans_resolved") > 0);
        // Timing-dependent counters are zeroed in the printed view.
        assert_eq!(field(&json, "parks"), 0);
        assert_eq!(field(&json, "unparks"), 0);
    }
}

#[test]
fn metrics_rejects_extra_arguments() {
    let out = mct(&["query", "ivy", "metrics", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
}
