//! Golden tests for `mct show --stats`: the scale-stats block is
//! pinned byte-for-byte against `tests/golden_stats/` for one small
//! cache-coherent machine (dense view, exhaustively probed) and one
//! mesh-scale NoC (sparse view, pruned collection).
//!
//! Regenerate after an intentional stats change with
//! `MCT_UPDATE_GOLDEN=1 cargo test -p mctop-cli --test show_stats`.

use std::path::PathBuf;
use std::process::{
    Command,
    Output, //
};

const PLATFORMS: &[&str] = &["synth-small", "synth-mesh-64"];

fn mct(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mct"))
        .args(args)
        .output()
        .expect("mct runs")
}

fn golden_path(machine: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_stats")
        .join(format!("{machine}.txt"))
}

#[test]
fn show_stats_matches_goldens() {
    let update = std::env::var_os("MCT_UPDATE_GOLDEN").is_some();
    for machine in PLATFORMS {
        let out = mct(&["show", machine, "--stats"]);
        assert!(
            out.status.success(),
            "{machine}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = String::from_utf8(out.stdout).expect("utf-8 stats");
        let path = golden_path(machine);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("missing golden {}", path.display()));
        assert_eq!(
            got,
            want,
            "{machine} stats drifted from {} \
             (MCT_UPDATE_GOLDEN=1 to regenerate)",
            path.display()
        );
    }
}

/// The numbers the goldens pin are the scaling story itself: the mesh
/// machine must be probed subquadratically and served off the sparse
/// backend, the small machine exhaustively off the dense one.
#[test]
fn stats_reflect_the_scaling_contract() {
    let small = String::from_utf8(mct(&["show", "synth-small", "--stats"]).stdout).unwrap();
    assert!(small.contains("view backend:    dense"), "{small}");
    assert!(small.contains("(100.0%)"), "{small}");

    let mesh = String::from_utf8(mct(&["show", "synth-mesh-64", "--stats"]).stdout).unwrap();
    assert!(mesh.contains("view backend:    sparse"), "{mesh}");
    let probed_pct: f64 = mesh
        .lines()
        .find(|l| l.starts_with("pairs probed:"))
        .and_then(|l| l.split('(').nth(1))
        .and_then(|r| r.strip_suffix("%)"))
        .expect("pairs probed line")
        .parse()
        .expect("percentage");
    assert!(
        probed_pct < 50.0,
        "mesh-64 should be pruned well below half: {probed_pct}%"
    );
}
