//! End-to-end tests of the `mct` binary: the full
//! `infer → validate → show → query → diff` workflow through the real
//! executable, plus exit-code and error-path coverage.

use std::path::{
    Path,
    PathBuf, //
};
use std::process::{
    Command,
    Output, //
};

fn mct(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mct"))
        .args(args)
        .output()
        .expect("mct runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mct-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}\n{}",
        stdout(out),
        stderr(out)
    );
}

#[test]
fn infer_validate_show_query_diff_pipeline() {
    let dir = tmpdir("pipeline");
    let desc = dir.join("synth-small.mct.json");
    let desc_str = desc.to_str().unwrap();

    // infer: write a description file for a preset.
    let out = mct(&["infer", "synth-small", "--out", desc_str]);
    assert_success(&out, "infer");
    assert!(desc.is_file());

    // validate: the file parses, carries provenance, passes validation.
    let out = mct(&["validate", desc_str]);
    assert_success(&out, "validate");
    assert!(stdout(&out).contains("ok"), "{}", stdout(&out));
    assert!(stdout(&out).contains("mct infer"), "{}", stdout(&out));

    // show: text and DOT renderings.
    let out = mct(&["show", desc_str]);
    assert_success(&out, "show text");
    assert!(stdout(&out).contains("synth-small"));
    assert!(stdout(&out).contains("socket"));
    let out = mct(&["show", desc_str, "--format", "dot"]);
    assert_success(&out, "show dot");
    assert!(stdout(&out).contains("digraph"));

    // query: contexts 0 and 8 share a core on synth-small (SMT-2,
    // cores-first numbering), so their latency is the SMT latency.
    let out = mct(&["query", desc_str, "latency", "0", "8"]);
    assert_success(&out, "query latency");
    assert_eq!(stdout(&out).trim(), "30");
    let out = mct(&["query", desc_str, "closest", "0"]);
    assert_success(&out, "query closest");
    assert_eq!(stdout(&out).trim(), "1");

    // diff: identical files agree (exit 0)...
    let out = mct(&["diff", desc_str, desc_str]);
    assert_success(&out, "self diff");
    assert!(stdout(&out).contains("=="));

    // ...and the file agrees with the shipped description it mirrors.
    let out = mct(&["diff", desc_str, "synth-small"]);
    assert_success(&out, "diff vs shipped");

    // A different machine differs, with exit code 1 and a field list.
    let out = mct(&["diff", desc_str, "synth-nosmt"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("smt"), "{}", stdout(&out));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shipped_names_resolve_without_files() {
    let out = mct(&["validate", "ivy"]);
    assert_success(&out, "validate shipped");
    assert!(stdout(&out).contains("mct regen-descs"));

    let out = mct(&["query", "ivy", "latency", "0", "20"]);
    assert_success(&out, "query shipped");
    // Fig. 6: contexts 0 and 20 are SMT siblings on Ivy, 28 cycles.
    assert_eq!(stdout(&out).trim(), "28");
}

#[test]
fn list_names_every_platform() {
    let out = mct(&["list"]);
    assert_success(&out, "list");
    let text = stdout(&out);
    for name in ["ivy", "westmere", "haswell", "opteron", "sparc", "synth-"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn regen_descs_roundtrip_and_check() {
    let dir = tmpdir("regen");
    let dir_str = dir.to_str().unwrap();

    // A fresh regeneration into an empty dir, then --check passes.
    let out = mct(&["regen-descs", "--dir", dir_str]);
    assert_success(&out, "regen");
    let out = mct(&["regen-descs", "--dir", dir_str, "--check"]);
    assert_success(&out, "regen check");

    // Tamper with one file: --check fails with exit 1.
    let victim = dir.join("ivy.mct.json");
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, text.replace("\"version\": 2", "\"version\": 3")).unwrap();
    let out = mct(&["regen-descs", "--dir", dir_str, "--check"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("STALE"), "{}", stdout(&out));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jobs_flag_never_changes_output() {
    // The determinism contract through the binary: any worker count
    // produces the identical description, noiseless and seeded alike.
    let base = mct(&["infer", "ivy", "--stdout"]);
    assert_success(&base, "infer jobs default");
    for jobs in ["1", "4"] {
        let out = mct(&["infer", "ivy", "--jobs", jobs, "--stdout"]);
        assert_success(&out, "infer --jobs");
        assert_eq!(stdout(&base), stdout(&out), "--jobs {jobs} changed bytes");
    }
    let seeded1 = mct(&[
        "infer",
        "synth-small",
        "--seed",
        "5",
        "--jobs",
        "1",
        "--stdout",
    ]);
    let seeded3 = mct(&[
        "infer",
        "synth-small",
        "--seed",
        "5",
        "--jobs",
        "3",
        "--stdout",
    ]);
    assert_success(&seeded1, "seeded jobs=1");
    assert_success(&seeded3, "seeded jobs=3");
    assert_eq!(stdout(&seeded1), stdout(&seeded3));

    // --jobs 0 is a usage error (exit 2), like every bad invocation.
    let out = mct(&["infer", "ivy", "--jobs", "0", "--stdout"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

#[test]
fn adaptive_inference_produces_a_valid_description() {
    let out = mct(&["infer", "ivy", "--adaptive", "--stdout"]);
    assert_success(&out, "infer --adaptive");
    // Adaptive + noiseless pilot medians are exact, so the description
    // matches the canonical one except for provenance bookkeeping —
    // and must parse/validate like any other.
    let canonical = mct(&["infer", "ivy", "--stdout"]);
    assert_eq!(stdout(&canonical), stdout(&out));
}

#[test]
fn corrupt_and_missing_descriptions_are_rejected() {
    let dir = tmpdir("corrupt");

    // Provenance stripped: refuse to load (no silent default).
    let out = mct(&["infer", "synth-nosmt", "--stdout"]);
    assert_success(&out, "infer --stdout");
    let full = stdout(&out);
    let headerless = {
        // Cut the provenance object out of the pretty-printed JSON.
        let start = full.find("  \"provenance\": {").unwrap();
        let end = full[start..].find("\n  },\n").unwrap() + start + "\n  },\n".len();
        format!("{}{}", &full[..start], &full[end..])
    };
    let bad = dir.join("bad.mct.json");
    std::fs::write(&bad, headerless).unwrap();
    let out = mct(&["validate", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("provenance"), "{}", stderr(&out));

    // Unknown name: helpful error listing the shipped machines.
    let out = mct(&["show", "no-such-machine"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("shipped machine name"));

    // Usage errors exit 2.
    let out = mct(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = mct(&["diff", "ivy"]);
    assert_eq!(out.status.code(), Some(2));

    assert!(!Path::new(&dir.join("never-written.json")).exists());
    let _ = std::fs::remove_dir_all(&dir);
}
