//! # mctop-place — MCTOP-PLACE thread placement
//!
//! Reproduction of the thread-placement library of Section 6 of
//! *Abstracting Multi-Core Topologies with MCTOP* (EuroSys '17):
//! twelve high-level placement policies (Table 2) computed over an
//! inferred [`mctop::Mctop`] topology, per-placement statistics
//! (the Fig. 7 printout), a pin/unpin interface, and a placement *pool*
//! that supports switching policies at runtime.
//!
//! # Examples
//!
//! ```
//! use mctop_place::{Placement, PlaceOpts, Policy};
//!
//! # let spec = mcsim::presets::ivy();
//! # let mut prober = mctop::backend::SimProber::noiseless(&spec);
//! # let cfg = mctop::ProbeConfig { reps: 3, ..mctop::ProbeConfig::fast() };
//! # let topo = mctop::infer(&mut prober, &cfg).unwrap();
//! let place = Placement::new(&topo, Policy::ConHwc, PlaceOpts::threads(30)).unwrap();
//! assert_eq!(place.order().len(), 30);
//! // CON_HWC packs socket 0 (20 contexts) before socket 1 (Fig. 7).
//! let pin = place.pin().unwrap();
//! assert_eq!(pin.hwc, 0);
//! ```

pub mod place;
pub mod policy;
pub mod pool;

pub use place::{
    pin_os_thread,
    PinHandle,
    PlaceError,
    PlaceOpts,
    PlaceStats,
    Placement, //
};
pub use policy::Policy;
pub use pool::PlacePool;
