//! The twelve placement policies of Table 2 of the paper.

use std::fmt;

/// A placement policy: how threads are mapped to hardware contexts.
///
/// In non-SMT multi-cores the `CON_HWC`, `CON_CORE_HWC` and `CON_CORE`
/// policies are equivalent (Section 6), and likewise their `BALANCE`
/// counterparts and the two `RR` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Policy {
    /// Threads are not pinned to hardware contexts.
    None,
    /// Use the sequential OS numbering.
    Sequential,
    /// Starting from the socket with maximum local memory bandwidth,
    /// place threads as compactly as possible on all hardware contexts
    /// of the socket, then continue to the next best-connected socket.
    ConHwc,
    /// Like `ConHwc`, but use all unique cores of the socket before its
    /// second hardware contexts; still fill a socket before the next.
    ConCoreHwc,
    /// Like `ConHwc`, but use all unique cores of all used sockets
    /// before any second context.
    ConCore,
    /// `ConHwc` balanced across sockets instead of filling them.
    BalanceHwc,
    /// `ConCoreHwc` balanced across sockets.
    BalanceCoreHwc,
    /// `ConCore` balanced across sockets.
    BalanceCore,
    /// Round-robin over sockets (max-bandwidth socket first), handing
    /// out unique cores first.
    RrCore,
    /// Round-robin over sockets, handing out hardware contexts in
    /// compact (core-filling) order.
    RrHwc,
    /// Minimize the estimated maximum power consumption
    /// (requires power measurements; Intel processors only in the
    /// paper).
    Power,
    /// Like `RrCore`, but caps the threads per socket at the number
    /// needed to saturate the socket's local memory bandwidth.
    RrScale,
}

impl Policy {
    /// All twelve policies, in Table 2 order.
    pub const ALL: [Policy; 12] = [
        Policy::None,
        Policy::Sequential,
        Policy::ConHwc,
        Policy::ConCoreHwc,
        Policy::ConCore,
        Policy::BalanceHwc,
        Policy::BalanceCoreHwc,
        Policy::BalanceCore,
        Policy::RrCore,
        Policy::RrHwc,
        Policy::Power,
        Policy::RrScale,
    ];

    /// The paper's name for the policy (as printed by Fig. 7).
    pub fn name(self) -> &'static str {
        match self {
            Policy::None => "NONE",
            Policy::Sequential => "SEQUENTIAL",
            Policy::ConHwc => "CON_HWC",
            Policy::ConCoreHwc => "CON_CORE_HWC",
            Policy::ConCore => "CON_CORE",
            Policy::BalanceHwc => "BALANCE_HWC",
            Policy::BalanceCoreHwc => "BALANCE_CORE_HWC",
            Policy::BalanceCore => "BALANCE_CORE",
            Policy::RrCore => "RR_CORE",
            Policy::RrHwc => "RR_HWC",
            Policy::Power => "POWER",
            Policy::RrScale => "RR_SCALE",
        }
    }

    /// Parses a paper-style policy name (case-insensitive).
    pub fn from_name(s: &str) -> Option<Policy> {
        let up = s.to_ascii_uppercase();
        Policy::ALL.into_iter().find(|p| p.name() == up)
    }

    /// Whether the policy pins threads at all.
    pub fn pins(self) -> bool {
        self != Policy::None
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_policies() {
        assert_eq!(Policy::ALL.len(), 12);
        let mut names: Vec<&str> = Policy::ALL.iter().map(|p| p.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn name_roundtrip() {
        for p in Policy::ALL {
            assert_eq!(Policy::from_name(p.name()), Some(p));
            assert_eq!(Policy::from_name(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Policy::from_name("BOGUS"), None);
    }

    #[test]
    fn only_none_does_not_pin() {
        assert!(!Policy::None.pins());
        assert!(Policy::ALL.iter().filter(|p| !p.pins()).count() == 1);
    }
}
