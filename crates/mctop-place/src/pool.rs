//! The MCTOP-PLACE pool (Section 6): precomputed placements for several
//! policies with runtime selection, so software can switch placement
//! policies between execution phases (the extended-OpenMP example of
//! Section 7.4 is built on this).

use std::collections::BTreeMap;
use std::sync::Arc;

use mctop::view::TopoView;
use mctop::Mctop;
use parking_lot::RwLock;

use crate::place::{
    PlaceError,
    PlaceOpts,
    Placement, //
};
use crate::policy::Policy;

/// A pool of placements over one topology, keyed by policy.
///
/// The pool builds one [`TopoView`] up front; every placement (and
/// every policy switch) is then computed from the view's precomputed
/// indexes. Placements are built lazily and cached;
/// [`PlacePool::select`] makes a policy current, and
/// [`PlacePool::current`] hands the active placement to workers.
pub struct PlacePool {
    view: TopoView,
    opts: PlaceOpts,
    cache: RwLock<BTreeMap<Policy, Arc<Placement>>>,
    current: RwLock<Policy>,
}

impl PlacePool {
    /// A pool over `topo` with shared placement options.
    pub fn new(topo: Arc<Mctop>, opts: PlaceOpts) -> Self {
        Self::with_view(TopoView::new(topo), opts)
    }

    /// A pool over a prebuilt topology view.
    pub fn with_view(view: TopoView, opts: PlaceOpts) -> Self {
        PlacePool {
            view,
            opts,
            cache: RwLock::new(BTreeMap::new()),
            current: RwLock::new(Policy::None),
        }
    }

    /// The topology the pool was built over.
    pub fn topology(&self) -> &Arc<Mctop> {
        self.view.topo()
    }

    /// The precomputed view the pool places over.
    pub fn view(&self) -> &TopoView {
        &self.view
    }

    /// Returns the placement for a policy, building it on first use.
    pub fn get(&self, policy: Policy) -> Result<Arc<Placement>, PlaceError> {
        if let Some(p) = self.cache.read().get(&policy) {
            return Ok(Arc::clone(p));
        }
        let built = Arc::new(Placement::with_view(&self.view, policy, self.opts)?);
        let mut w = self.cache.write();
        Ok(Arc::clone(w.entry(policy).or_insert(built)))
    }

    /// Makes `policy` the current one (runtime policy switching).
    pub fn select(&self, policy: Policy) -> Result<Arc<Placement>, PlaceError> {
        let p = self.get(policy)?;
        *self.current.write() = policy;
        Ok(p)
    }

    /// The currently selected policy.
    pub fn current_policy(&self) -> Policy {
        *self.current.read()
    }

    /// The placement of the currently selected policy.
    pub fn current(&self) -> Result<Arc<Placement>, PlaceError> {
        self.get(self.current_policy())
    }

    /// Policies already materialized in the pool.
    pub fn cached_policies(&self) -> Vec<Policy> {
        self.cache.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop::backend::SimProber;
    use mctop::ProbeConfig;

    fn topo() -> Arc<Mctop> {
        let spec = mcsim::presets::synthetic_small();
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        Arc::new(mctop::infer(&mut p, &cfg).unwrap())
    }

    #[test]
    fn lazily_builds_and_caches() {
        let pool = PlacePool::new(topo(), PlaceOpts::threads(8));
        assert!(pool.cached_policies().is_empty());
        let a = pool.get(Policy::ConHwc).unwrap();
        let b = pool.get(Policy::ConHwc).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.cached_policies(), vec![Policy::ConHwc]);
    }

    #[test]
    fn select_switches_current() {
        let pool = PlacePool::new(topo(), PlaceOpts::threads(4));
        assert_eq!(pool.current_policy(), Policy::None);
        pool.select(Policy::RrCore).unwrap();
        assert_eq!(pool.current_policy(), Policy::RrCore);
        assert_eq!(pool.current().unwrap().policy(), Policy::RrCore);
        pool.select(Policy::BalanceHwc).unwrap();
        assert_eq!(pool.current_policy(), Policy::BalanceHwc);
    }

    #[test]
    fn failing_policy_does_not_switch() {
        let pool = PlacePool::new(topo(), PlaceOpts::threads(4));
        pool.select(Policy::Sequential).unwrap();
        // POWER fails on an unenriched topology.
        assert!(pool.select(Policy::Power).is_err());
        assert_eq!(pool.current_policy(), Policy::Sequential);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = Arc::new(PlacePool::new(topo(), PlaceOpts::threads(8)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let p = pool.get(Policy::ConHwc).unwrap();
                    let pin = p.pin().unwrap();
                    p.unpin(pin);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
