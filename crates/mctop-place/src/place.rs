//! Placement computation, statistics and the pin/unpin interface.
//!
//! All placement math runs over a [`TopoView`]: the policy orders,
//! per-socket hand-out lists and socket walks are precomputed once per
//! topology instead of re-derived from the model arenas inside every
//! placement construction.

use std::sync::atomic::{
    AtomicBool,
    Ordering, //
};
use std::sync::Arc;

use mctop::view::TopoView;
use mctop::Mctop;

use crate::policy::Policy;

/// Options for building a placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlaceOpts {
    /// Number of threads to place (default: as many as the policy can
    /// hold — usually every hardware context).
    pub n_threads: Option<usize>,
    /// Restrict the placement to this many sockets, in the policy's
    /// socket order.
    pub n_sockets: Option<usize>,
}

impl PlaceOpts {
    /// Place exactly `n` threads.
    pub fn threads(n: usize) -> Self {
        PlaceOpts {
            n_threads: Some(n),
            n_sockets: None,
        }
    }

    /// Place `n` threads on at most `s` sockets.
    pub fn threads_on_sockets(n: usize, s: usize) -> Self {
        PlaceOpts {
            n_threads: Some(n),
            n_sockets: Some(s),
        }
    }
}

/// Placement construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The POWER policy needs power measurements (Intel-only in the
    /// paper) and the topology has none.
    PowerUnavailable,
    /// RR_SCALE needs per-socket bandwidth measurements.
    BandwidthUnavailable,
    /// More threads requested than the policy can place.
    TooManyThreads {
        /// Threads requested.
        requested: usize,
        /// Contexts the policy can hand out.
        available: usize,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::PowerUnavailable => {
                f.write_str("POWER placement requires power measurements")
            }
            PlaceError::BandwidthUnavailable => {
                f.write_str("RR_SCALE placement requires bandwidth measurements")
            }
            PlaceError::TooManyThreads {
                requested,
                available,
            } => {
                write!(
                    f,
                    "{requested} threads requested, only {available} contexts available"
                )
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// A pinned thread's view of its location (what a thread "has access
/// to" after pinning, per Section 6: local node, context and core ids
/// within the socket).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinHandle {
    /// Slot index within the placement order.
    pub slot: usize,
    /// Hardware-context OS id.
    pub hwc: usize,
    /// Socket id.
    pub socket: usize,
    /// Local memory node of the socket, if known.
    pub local_node: Option<usize>,
    /// Core index within the machine.
    pub core: usize,
    /// Context index within its socket (position in socket order).
    pub hwc_in_socket: usize,
}

/// A computed placement: an ordered hand-out list of hardware contexts
/// plus runtime pin/unpin state.
#[derive(Debug)]
pub struct Placement {
    policy: Policy,
    order: Vec<usize>,
    handles: Vec<PinHandle>,
    used: Vec<AtomicBool>,
    max_latency: u32,
    min_bandwidth: Option<f64>,
    stats: PlaceStats,
}

/// The statistics block of `mctop_place_print` (Fig. 7 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceStats {
    /// Policy name.
    pub policy: Policy,
    /// Distinct cores used.
    pub n_cores: usize,
    /// Hand-out order of hardware contexts.
    pub hwcs: Vec<usize>,
    /// Sockets used, in policy order.
    pub sockets: Vec<usize>,
    /// Contexts per used socket.
    pub hwc_per_socket: Vec<usize>,
    /// Cores per used socket.
    pub cores_per_socket: Vec<usize>,
    /// Fraction of the placement's threads on each used socket.
    pub bw_proportions: Vec<f64>,
    /// Estimated per-socket power without DRAM, W (used sockets only;
    /// requires power measurements).
    pub pow_no_dram: Option<Vec<f64>>,
    /// Estimated per-socket power with DRAM, W.
    pub pow_with_dram: Option<Vec<f64>>,
    /// Maximum communication latency between any two placed contexts.
    pub max_latency: u32,
    /// Minimum local bandwidth among the used sockets, GB/s.
    pub min_bandwidth: Option<f64>,
}

impl Placement {
    /// Computes a placement over `topo`, building a throwaway
    /// [`TopoView`] first. When placing repeatedly over one topology
    /// (pools, phase switching), build the view once and use
    /// [`Placement::with_view`].
    pub fn new(topo: &Mctop, policy: Policy, opts: PlaceOpts) -> Result<Placement, PlaceError> {
        Self::with_view(&TopoView::new(Arc::new(topo.clone())), policy, opts)
    }

    /// Computes a placement over a prebuilt topology view.
    pub fn with_view(
        view: &TopoView,
        policy: Policy,
        opts: PlaceOpts,
    ) -> Result<Placement, PlaceError> {
        let full_order = policy_order(view, policy, opts.n_sockets)?;
        let available = full_order.len();
        let n = opts.n_threads.unwrap_or(available);
        if n > available {
            return Err(PlaceError::TooManyThreads {
                requested: n,
                available,
            });
        }
        let order: Vec<usize> = full_order.into_iter().take(n).collect();

        // Per-socket bookkeeping in socket-first-use order.
        let mut sockets: Vec<usize> = Vec::new();
        for &h in &order {
            let s = view.socket_of(h);
            if !sockets.contains(&s) {
                sockets.push(s);
            }
        }
        let mut socket_pos = vec![0usize; view.num_sockets()];
        let handles: Vec<PinHandle> = order
            .iter()
            .enumerate()
            .map(|(slot, &h)| {
                let socket = view.socket_of(h);
                let pos = socket_pos[socket];
                socket_pos[socket] += 1;
                PinHandle {
                    slot,
                    hwc: h,
                    socket,
                    local_node: view.node_of(h),
                    core: view.core_of(h),
                    hwc_in_socket: pos,
                }
            })
            .collect();

        let max_latency = view.max_latency_between(&order);
        let min_bandwidth = view.min_bandwidth_of(&order);
        let stats = build_stats(view, policy, &order, &sockets, max_latency, min_bandwidth);
        let used = order.iter().map(|_| AtomicBool::new(false)).collect();
        Ok(Placement {
            policy,
            order,
            handles,
            used,
            max_latency,
            min_bandwidth,
            stats,
        })
    }

    /// The policy of this placement.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The hand-out order of hardware contexts.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Whether threads should actually be bound (false for NONE).
    pub fn pins(&self) -> bool {
        self.policy.pins()
    }

    /// Number of placement slots.
    pub fn capacity(&self) -> usize {
        self.order.len()
    }

    /// The per-slot pin data (what [`Placement::pin`] would hand out
    /// for each slot), without claiming any slot. Long-lived runtimes
    /// — the persistent executor in `mctop-runtime` — read their
    /// workers' locations from here once at arm time.
    pub fn slots(&self) -> &[PinHandle] {
        &self.handles
    }

    /// Claims the next available context ("pinning a thread to the next
    /// available context of a MCTOP-PLACE object"). Thread-safe.
    pub fn pin(&self) -> Option<PinHandle> {
        for (i, flag) in self.used.iter().enumerate() {
            if flag
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(self.handles[i]);
            }
        }
        None
    }

    /// Returns a context to the placement ("unpinning a thread from the
    /// context and returning it").
    pub fn unpin(&self, handle: PinHandle) {
        assert!(handle.slot < self.used.len(), "foreign handle");
        self.used[handle.slot].store(false, Ordering::Release);
    }

    /// Maximum communication latency between any two placed contexts:
    /// the backoff quantum of Section 5's "educated backoffs".
    pub fn max_latency(&self) -> u32 {
        self.max_latency
    }

    /// Minimum local bandwidth among used sockets.
    pub fn min_bandwidth(&self) -> Option<f64> {
        self.min_bandwidth
    }

    /// The statistics block.
    pub fn stats(&self) -> &PlaceStats {
        &self.stats
    }

    /// The Fig. 7 printout.
    pub fn print(&self) -> String {
        self.stats.render()
    }
}

impl PlaceStats {
    /// Renders the `mctop_place_print` block of Fig. 7.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## MCTOP Placement : MCTOP_PLACE_{}",
            self.policy.name()
        );
        let _ = writeln!(out, "# # Cores         : {}", self.n_cores);
        let list: Vec<String> = self.hwcs.iter().map(|h| h.to_string()).collect();
        let _ = writeln!(
            out,
            "# HW contexts ({}) : {}",
            self.hwcs.len(),
            list.join(" ")
        );
        // The C library displays sockets with a 20000 offset.
        let socks: Vec<String> = self
            .sockets
            .iter()
            .map(|s| (20000 + s).to_string())
            .collect();
        let _ = writeln!(
            out,
            "# Sockets ({})     : {}",
            self.sockets.len(),
            socks.join(" ")
        );
        let per: Vec<String> = self.hwc_per_socket.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(out, "# # HW ctx / socket: {}", per.join(" "));
        let cps: Vec<String> = self
            .cores_per_socket
            .iter()
            .map(|c| c.to_string())
            .collect();
        let _ = writeln!(out, "# # Cores / socket : {}", cps.join(" "));
        let props: Vec<String> = self
            .bw_proportions
            .iter()
            .map(|p| format!("{p:.3}"))
            .collect();
        let _ = writeln!(out, "# BW proportions   : {}", props.join(" "));
        if let (Some(no), Some(with)) = (&self.pow_no_dram, &self.pow_with_dram) {
            let f = |v: &Vec<f64>| {
                let parts: Vec<String> = v.iter().map(|w| format!("{w:.1}")).collect();
                format!("{} = {:.1} Watt", parts.join(" "), v.iter().sum::<f64>())
            };
            let _ = writeln!(out, "# Max pow no DRAM  : {}", f(no));
            let _ = writeln!(out, "# Max pow with DRAM: {}", f(with));
        }
        let _ = writeln!(out, "# Max latency      : {} cycles", self.max_latency);
        if let Some(bw) = self.min_bandwidth {
            let _ = writeln!(out, "# Min bandwidth    : {bw:.2} GB/s");
        }
        out
    }
}

fn build_stats(
    view: &TopoView,
    policy: Policy,
    order: &[usize],
    sockets: &[usize],
    max_latency: u32,
    min_bandwidth: Option<f64>,
) -> PlaceStats {
    let mut cores: Vec<usize> = order.iter().map(|&h| view.core_of(h)).collect();
    cores.sort_unstable();
    cores.dedup();
    let hwc_per_socket: Vec<usize> = sockets
        .iter()
        .map(|&s| order.iter().filter(|&&h| view.socket_of(h) == s).count())
        .collect();
    let cores_per_socket: Vec<usize> = sockets
        .iter()
        .map(|&s| {
            let mut c: Vec<usize> = order
                .iter()
                .filter(|&&h| view.socket_of(h) == s)
                .map(|&h| view.core_of(h))
                .collect();
            c.sort_unstable();
            c.dedup();
            c.len()
        })
        .collect();
    let total = order.len().max(1);
    let bw_proportions: Vec<f64> = hwc_per_socket
        .iter()
        .map(|&c| c as f64 / total as f64)
        .collect();
    let (pow_no_dram, pow_with_dram) = match &view.power {
        Some(p) => {
            let per_socket = |with_dram: bool| -> Vec<f64> {
                sockets
                    .iter()
                    .map(|&s| {
                        let on_socket: Vec<usize> = order
                            .iter()
                            .copied()
                            .filter(|&h| view.socket_of(h) == s)
                            .collect();
                        // Per-socket power: subtract the other sockets'
                        // idle base from the machine estimate.
                        p.estimate(view, &on_socket, with_dram)
                            - (view.num_sockets() - 1) as f64 * p.socket_base_w
                    })
                    .collect()
            };
            (Some(per_socket(false)), Some(per_socket(true)))
        }
        None => (None, None),
    };
    PlaceStats {
        policy,
        n_cores: cores.len(),
        hwcs: order.to_vec(),
        sockets: sockets.to_vec(),
        hwc_per_socket,
        cores_per_socket,
        bw_proportions,
        pow_no_dram,
        pow_with_dram,
        max_latency,
        min_bandwidth,
    }
}

/// Computes the full hand-out order of a policy (before truncation to
/// the requested thread count). Every per-socket order and the socket
/// walk itself are borrowed from the view's caches.
fn policy_order(
    view: &TopoView,
    policy: Policy,
    n_sockets: Option<usize>,
) -> Result<Vec<usize>, PlaceError> {
    let all: Vec<usize> = (0..view.num_hwcs()).collect();
    let mut socket_order: &[usize] = view.socket_order_bandwidth_proximity();
    if let Some(k) = n_sockets {
        socket_order = &socket_order[..k.max(1).min(socket_order.len())];
    }
    let order = match policy {
        Policy::None | Policy::Sequential => all,
        Policy::ConHwc => socket_order
            .iter()
            .flat_map(|&s| view.socket_hwcs_compact(s).iter().copied())
            .collect(),
        Policy::ConCoreHwc => socket_order
            .iter()
            .flat_map(|&s| view.socket_hwcs_cores_first(s).iter().copied())
            .collect(),
        Policy::ConCore => {
            // All unique cores of all used sockets, then second+
            // contexts.
            let mut out = Vec::new();
            for round in 0..view.smt() {
                for &s in socket_order {
                    for &cg in &view.sockets[s].cores {
                        if let Some(&h) = view.groups[cg].hwcs.get(round) {
                            out.push(h);
                        }
                    }
                }
            }
            out
        }
        Policy::BalanceHwc | Policy::BalanceCoreHwc | Policy::BalanceCore => {
            // Balanced: interleave sockets so that any prefix of the
            // order is (near-)evenly spread across the used sockets.
            let per_socket: Vec<&[usize]> = socket_order
                .iter()
                .map(|&s| match policy {
                    Policy::BalanceHwc => view.socket_hwcs_compact(s),
                    _ => view.socket_hwcs_cores_first(s),
                })
                .collect();
            round_robin(&per_socket)
        }
        Policy::RrCore => {
            let per_socket: Vec<&[usize]> = socket_order
                .iter()
                .map(|&s| view.socket_hwcs_cores_first(s))
                .collect();
            round_robin(&per_socket)
        }
        Policy::RrHwc => {
            let per_socket: Vec<&[usize]> = socket_order
                .iter()
                .map(|&s| view.socket_hwcs_compact(s))
                .collect();
            round_robin(&per_socket)
        }
        Policy::Power => {
            let power = view.power.as_ref().ok_or(PlaceError::PowerUnavailable)?;
            // Greedy: repeatedly add the context with the smallest
            // marginal power (ties toward lower OS ids).
            let topo: &Mctop = view;
            let mut chosen: Vec<usize> = Vec::new();
            let mut remaining: Vec<usize> = all;
            while !remaining.is_empty() {
                let base = power.estimate(topo, &chosen, true);
                let (idx, _) = remaining
                    .iter()
                    .enumerate()
                    .map(|(i, &h)| {
                        let mut with = chosen.clone();
                        with.push(h);
                        (i, power.estimate(topo, &with, true) - base)
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("power is finite"))
                    .expect("remaining non-empty");
                chosen.push(remaining.remove(idx));
            }
            chosen
        }
        Policy::RrScale => {
            // RR_CORE capped per socket at bandwidth saturation.
            let caps: Vec<usize> = socket_order
                .iter()
                .map(|&s| {
                    view.sockets[s]
                        .threads_to_saturate()
                        .ok_or(PlaceError::BandwidthUnavailable)
                })
                .collect::<Result<_, _>>()?;
            let per_socket: Vec<&[usize]> = socket_order
                .iter()
                .zip(&caps)
                .map(|(&s, &cap)| {
                    let hwcs = view.socket_hwcs_cores_first(s);
                    &hwcs[..cap.min(hwcs.len())]
                })
                .collect();
            round_robin(&per_socket)
        }
    };
    Ok(order)
}

/// Interleaves per-socket lists round-robin.
fn round_robin(lists: &[&[usize]]) -> Vec<usize> {
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut idx = 0;
    while out.len() < total {
        for l in lists {
            if let Some(&h) = l.get(idx) {
                out.push(h);
            }
        }
        idx += 1;
    }
    out
}

/// Pins the calling OS thread to a CPU (Linux). On other platforms this
/// is a no-op returning `false`.
pub fn pin_os_thread(cpu: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        // SAFETY: `cpu_set_t` is a plain bitmask initialized by zeroing;
        // CPU_SET stays in bounds for `cpu < CPU_SETSIZE`; pid 0 targets
        // only the calling thread.
        unsafe {
            if cpu >= libc::CPU_SETSIZE as usize {
                return false;
            }
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            libc::CPU_SET(cpu, &mut set);
            libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cpu;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop::backend::SimProber;
    use mctop::enrich::{
        enrich_all,
        SimEnricher, //
    };
    use mctop::ProbeConfig;

    fn topo(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    #[test]
    fn fig7_con_hwc_on_ivy() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::ConHwc, PlaceOpts::threads(30)).unwrap();
        let s = p.stats();
        // Fig. 7 exactly: 15 cores, contexts 0 20 1 21 2 22 ..., two
        // sockets with 20/10 contexts and 10/5 cores, max latency 308,
        // min bandwidth 24.3 GB/s.
        assert_eq!(s.n_cores, 15);
        assert_eq!(&s.hwcs[..6], &[0, 20, 1, 21, 2, 22]);
        assert_eq!(s.hwc_per_socket, vec![20, 10]);
        assert_eq!(s.cores_per_socket, vec![10, 5]);
        assert_eq!(s.max_latency, 308);
        assert!((s.min_bandwidth.unwrap() - 24.3).abs() < 0.1);
        // Power lines match Fig. 7 (66.7 + 43.4 = 110.1 W etc.).
        let no_dram = s.pow_no_dram.as_ref().unwrap();
        assert!((no_dram[0] - 66.7).abs() < 0.2, "{no_dram:?}");
        assert!((no_dram[1] - 43.4).abs() < 0.2);
        let with = s.pow_with_dram.as_ref().unwrap();
        assert!((with.iter().sum::<f64>() - 200.6).abs() < 1.0);
        let text = p.print();
        assert!(text.contains("MCTOP_PLACE_CON_HWC"));
        assert!(text.contains("# # Cores         : 15"));
        assert!(text.contains("308 cycles"));
    }

    #[test]
    fn con_core_uses_unique_cores_first() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::ConCore, PlaceOpts::threads(20)).unwrap();
        // 20 threads on 20 distinct cores (both sockets), no SMT
        // doubling.
        let mut cores: Vec<usize> = p.order().iter().map(|&h| t.hwcs[h].core).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 20);
    }

    #[test]
    fn con_core_hwc_fills_socket_before_next() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::ConCoreHwc, PlaceOpts::threads(25)).unwrap();
        // First 20 contexts on one socket (10 unique cores then their
        // siblings), then 5 on the next.
        let first_socket = t.socket_of(p.order()[0]);
        assert!(p.order()[..20]
            .iter()
            .all(|&h| t.socket_of(h) == first_socket));
        assert!(p.order()[20..]
            .iter()
            .all(|&h| t.socket_of(h) != first_socket));
        // Within the first 10: unique cores.
        let mut cores: Vec<usize> = p.order()[..10].iter().map(|&h| t.hwcs[h].core).collect();
        cores.dedup();
        assert_eq!(cores.len(), 10);
    }

    #[test]
    fn balance_spreads_evenly() {
        let t = topo(&mcsim::presets::ivy());
        for policy in [
            Policy::BalanceHwc,
            Policy::BalanceCoreHwc,
            Policy::BalanceCore,
        ] {
            let p = Placement::new(&t, policy, PlaceOpts::threads(10)).unwrap();
            let s = p.stats();
            assert_eq!(s.hwc_per_socket, vec![5, 5], "{policy}");
        }
    }

    #[test]
    fn rr_alternates_sockets() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::RrCore, PlaceOpts::threads(6)).unwrap();
        let sockets: Vec<usize> = p.order().iter().map(|&h| t.socket_of(h)).collect();
        assert_eq!(sockets[0], sockets[2]);
        assert_eq!(sockets[1], sockets[3]);
        assert_ne!(sockets[0], sockets[1]);
        // RR_CORE uses unique cores for the first #cores threads.
        let p_full = Placement::new(&t, Policy::RrCore, PlaceOpts::threads(20)).unwrap();
        let mut cores: Vec<usize> = p_full.order().iter().map(|&h| t.hwcs[h].core).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 20);
    }

    #[test]
    fn rr_hwc_hands_out_smt_siblings_together() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::RrHwc, PlaceOpts::threads(4)).unwrap();
        // Compact per-socket order: first two contexts from a socket
        // share a core... but round-robin interleaves sockets, so slots
        // 0 and 2 share a core.
        let o = p.order();
        assert_eq!(t.hwcs[o[0]].core, t.hwcs[o[2]].core);
        assert_ne!(t.socket_of(o[0]), t.socket_of(o[1]));
    }

    #[test]
    fn power_policy_packs_smt_and_one_socket() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::Power, PlaceOpts::threads(20)).unwrap();
        // Minimal power: use both contexts of each core and stay on one
        // socket (waking a second socket costs DRAM power).
        let s = p.stats();
        assert_eq!(s.sockets.len(), 1);
        assert_eq!(s.n_cores, 10);
        // The very first two threads share a core.
        assert_eq!(t.hwcs[p.order()[0]].core, t.hwcs[p.order()[1]].core);
    }

    #[test]
    fn power_policy_requires_measurements() {
        let spec = mcsim::presets::opteron();
        let mut pr = SimProber::noiseless(&spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let t = mctop::infer(&mut pr, &cfg).unwrap(); // Not enriched.
        let err = Placement::new(&t, Policy::Power, PlaceOpts::default()).unwrap_err();
        assert_eq!(err, PlaceError::PowerUnavailable);
    }

    #[test]
    fn rr_scale_caps_threads_at_saturation() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::RrScale, PlaceOpts::default()).unwrap();
        // Ivy: 24.3 GB/s local, 6.1 GB/s per core -> 4 threads per
        // socket.
        let s = p.stats();
        assert_eq!(s.hwc_per_socket, vec![4, 4]);
    }

    #[test]
    fn non_smt_con_policies_coincide() {
        // Section 6: "In non-SMT multi-cores, CON_HWC, CON_CORE_HWC, and
        // CON_CORE policies are equivalent."
        let t = topo(&mcsim::presets::no_smt_small());
        let a = Placement::new(&t, Policy::ConHwc, PlaceOpts::default()).unwrap();
        let b = Placement::new(&t, Policy::ConCoreHwc, PlaceOpts::default()).unwrap();
        let c = Placement::new(&t, Policy::ConCore, PlaceOpts::default()).unwrap();
        assert_eq!(a.order(), b.order());
        assert_eq!(b.order(), c.order());
    }

    #[test]
    fn too_many_threads_rejected() {
        let t = topo(&mcsim::presets::synthetic_small());
        let err = Placement::new(&t, Policy::ConHwc, PlaceOpts::threads(1000)).unwrap_err();
        assert!(matches!(
            err,
            PlaceError::TooManyThreads { available: 16, .. }
        ));
    }

    #[test]
    fn socket_restriction() {
        let t = topo(&mcsim::presets::ivy());
        let p = Placement::new(&t, Policy::RrCore, PlaceOpts::threads_on_sockets(10, 1)).unwrap();
        assert_eq!(p.stats().sockets.len(), 1);
    }

    #[test]
    fn pin_unpin_cycle() {
        let t = topo(&mcsim::presets::synthetic_small());
        let p = Placement::new(&t, Policy::ConHwc, PlaceOpts::threads(2)).unwrap();
        let h1 = p.pin().unwrap();
        let h2 = p.pin().unwrap();
        assert!(p.pin().is_none());
        assert_ne!(h1.hwc, h2.hwc);
        p.unpin(h1);
        let h3 = p.pin().unwrap();
        assert_eq!(h3.hwc, h1.hwc);
        assert_eq!(h3.local_node, t.get_local_node(h3.hwc));
    }

    #[test]
    fn sequential_is_os_order() {
        let t = topo(&mcsim::presets::synthetic_small());
        let p = Placement::new(&t, Policy::Sequential, PlaceOpts::threads(5)).unwrap();
        assert_eq!(p.order(), &[0, 1, 2, 3, 4]);
        assert!(p.pins());
        let none = Placement::new(&t, Policy::None, PlaceOpts::threads(5)).unwrap();
        assert!(!none.pins());
    }
}
