//! A coherence-level discrete-event model of lock contention,
//! regenerating the shape of Fig. 8 on the simulated paper platforms.
//!
//! The model captures the mechanism the paper's backoff optimization
//! exploits: the lock word lives in one cache line, and every atomic
//! operation on it must *serialize* through the coherence protocol —
//! the line behaves like a single server whose service time is the
//! core-to-core transfer latency of the machine. Spinning threads keep
//! the server busy, which delays both the release (the holder must
//! reacquire the line) and the next acquisition. Backing off by the
//! maximum communication latency drains that queue.
//!
//! Per-algorithm behaviour:
//! - **TAS**: every attempt is a CAS (a line operation). Without
//!   backoff, failed threads retry after a bare `pause`; with backoff
//!   they wait one quantum.
//! - **TTAS**: failed threads spin on a *local* copy (no line traffic)
//!   and storm the line when the release invalidates them; backoff
//!   spaces the post-storm retries.
//! - **TICKET**: waiters watch the serving counter; every release
//!   invalidates all of them and their refetches queue up ahead of the
//!   next owner's. Proportional backoff (distance x quantum) makes the
//!   next owner poll almost exactly on time — the paper's biggest win
//!   (39% on average).

use mcsim::des::EventQueue;
use mcsim::MachineSpec;

use crate::raw::LockAlgo;

/// Parameters of the simulated experiment (defaults follow Section 7.1:
/// 1000-cycle critical sections, threads pause between iterations).
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// Critical-section work, cycles.
    pub cs_cycles: u64,
    /// Non-critical work between iterations, cycles.
    pub noncs_cycles: u64,
    /// Retry interval of the no-backoff baseline (one `pause`), cycles.
    pub pause_cycles: u64,
    /// Simulated duration, cycles.
    pub duration_cycles: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            cs_cycles: 1000,
            noncs_cycles: 600,
            pause_cycles: 35,
            duration_cycles: 20_000_000,
        }
    }
}

/// Backoff behaviour in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimBackoff {
    /// Bare pause-loop baseline.
    None,
    /// Fixed quantum (TAS/TTAS).
    Fixed(u64),
    /// Quantum multiplied by the distance in the ticket queue.
    Proportional(u64),
}

/// The lock cache line as a serializing server.
struct Line {
    free_at: u64,
    owner: usize, // hwc that last modified the line
    /// Modification counter: reads of an unmodified line are local
    /// cache hits (the whole point of TTAS spinning).
    version: u64,
    seen: Vec<u64>,
    /// Whether some thread already pulled the current version into a
    /// shared state: later readers hit the LLC copy cheaply without
    /// occupying the line server.
    shared: bool,
}

/// LLC hit cost for a read of an already-shared line, cycles.
const SHARED_READ: u64 = 45;

impl Line {
    fn new(n_threads: usize) -> Self {
        Line {
            free_at: 0,
            owner: 0,
            version: 1,
            seen: vec![0; n_threads],
            shared: false,
        }
    }

    /// A modifying operation (CAS, store) from thread `t` on context
    /// `hwc` arriving at `arrive`; returns the completion time.
    /// Modifications serialize: the line is a single server.
    fn modify(&mut self, spec: &MachineSpec, arrive: u64, t: usize, hwc: usize) -> u64 {
        let transfer = spec.true_latency(self.owner, hwc).max(10) as u64;
        let done = self.free_at.max(arrive) + transfer;
        self.free_at = done;
        self.owner = hwc;
        self.version += 1;
        self.seen[t] = self.version;
        self.shared = false;
        done
    }

    /// A read from thread `t`: free if the thread has the current
    /// version cached. Otherwise the refetch goes through the line
    /// server: the first reader after a modification pays the full
    /// dirty-forward transfer; subsequent readers are served from the
    /// LLC copy at [`SHARED_READ`] — cheaper, but still serialized
    /// (the LLC has finite lookup bandwidth, and it is precisely this
    /// refetch burst after every release that degrades spinning locks).
    fn read(&mut self, spec: &MachineSpec, arrive: u64, t: usize, hwc: usize) -> u64 {
        if self.seen[t] == self.version {
            return arrive + 2;
        }
        self.seen[t] = self.version;
        let cost = if self.shared {
            SHARED_READ
        } else {
            spec.true_latency(self.owner, hwc).max(10) as u64
        };
        let done = self.free_at.max(arrive) + cost;
        self.free_at = done;
        self.shared = true;
        done
    }

    /// Current modification count (TTAS snapshots it at read time).
    fn current_version(&self) -> u64 {
        self.version
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// TAS/TTAS: start an acquisition attempt (TTAS: read first).
    Try(usize),
    /// A CAS completed; outcome decided at processing time.
    CasDone(usize),
    /// TTAS read completed.
    ReadDone(usize),
    /// Ticket: initial fetch_add completed.
    TicketTaken(usize),
    /// Ticket: issue a poll of the serving counter now.
    PollStart(usize),
    /// Ticket: poll of the serving counter completed.
    PollDone(usize),
    /// Critical section over: issue the release line operation.
    ReleaseStart(usize),
    /// Release line operation completed: lock is free.
    Released(usize),
}

/// Simulated throughput (operations per second) of `n_threads` competing
/// for one lock on `spec`. Threads occupy hardware contexts `0..n`.
pub fn throughput(
    spec: &MachineSpec,
    algo: LockAlgo,
    n_threads: usize,
    backoff: SimBackoff,
    params: &SimParams,
) -> f64 {
    assert!(n_threads >= 1 && n_threads <= spec.total_hwcs());
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut line = Line::new(n_threads);
    // Ticket uses a second line for the serving counter.
    let mut serving_line = Line::new(n_threads);
    let mut holder: Option<usize> = None;
    let mut watchers: Vec<usize> = Vec::new();
    // Ticket state.
    let mut next_ticket: u64 = 0;
    let mut serving: u64 = 0;
    let mut my_ticket: Vec<u64> = vec![0; n_threads];
    // TTAS: line version snapshotted when each read was issued; a CAS
    // is only attempted if no other CAS intervened (the reader would
    // have observed the line as taken).
    let mut read_snap: Vec<u64> = vec![0; n_threads];
    let mut completed: u64 = 0;

    for t in 0..n_threads {
        q.push(t as u64, Ev::Try(t));
    }

    while let Some((now, ev)) = q.pop() {
        if now > params.duration_cycles {
            break;
        }
        match (algo, ev) {
            // --- Arrival of a new attempt ------------------------------
            (LockAlgo::Tas, Ev::Try(t)) => {
                let c = line.modify(spec, now, t, t);
                q.push(c, Ev::CasDone(t));
            }
            (LockAlgo::Ttas, Ev::Try(t)) => {
                read_snap[t] = line.current_version();
                let c = line.read(spec, now, t, t);
                q.push(c, Ev::ReadDone(t));
            }
            (LockAlgo::Ticket, Ev::Try(t)) => {
                let c = line.modify(spec, now, t, t);
                q.push(c, Ev::TicketTaken(t));
            }

            // --- TAS/TTAS CAS outcomes --------------------------------
            (_, Ev::CasDone(t)) => {
                if holder.is_none() {
                    holder = Some(t);
                    q.push(now + params.cs_cycles, Ev::ReleaseStart(t));
                } else {
                    match (algo, backoff) {
                        (LockAlgo::Tas, SimBackoff::Fixed(b)) => q.push(now + b, Ev::Try(t)),
                        (LockAlgo::Tas, _) => q.push(now + params.pause_cycles, Ev::Try(t)),
                        (LockAlgo::Ttas, SimBackoff::Fixed(b)) => q.push(now + b, Ev::Try(t)),
                        // TTAS without backoff: back to local spinning.
                        (LockAlgo::Ttas, _) => watchers.push(t),
                        _ => unreachable!("ticket has no CAS path"),
                    }
                }
            }
            (_, Ev::ReadDone(t)) => {
                if holder.is_none() && line.current_version() == read_snap[t] {
                    // The line is free and nobody CASed since we read:
                    // attempt the swap.
                    let c = line.modify(spec, now, t, t);
                    q.push(c, Ev::CasDone(t));
                } else {
                    // Taken (or a competing CAS already in flight):
                    // back to local spinning.
                    watchers.push(t);
                }
            }

            // --- Ticket ------------------------------------------------
            (_, Ev::TicketTaken(t)) => {
                my_ticket[t] = next_ticket;
                next_ticket += 1;
                q.push(now, Ev::PollStart(t));
            }
            (_, Ev::PollStart(t)) => {
                let c = serving_line.read(spec, now, t, t);
                q.push(c, Ev::PollDone(t));
            }
            (_, Ev::PollDone(t)) => {
                if serving == my_ticket[t] && holder.is_none() {
                    holder = Some(t);
                    q.push(now + params.cs_cycles, Ev::ReleaseStart(t));
                } else {
                    let dist = my_ticket[t].saturating_sub(serving).max(1);
                    match backoff {
                        SimBackoff::Proportional(b) => {
                            // Sleep until our turn is expected, then
                            // poll once (the line operation is issued at
                            // wake time, not scheduled ahead).
                            q.push(now + dist * b, Ev::PollStart(t));
                        }
                        _ => {
                            // Local spin until invalidated by a release.
                            watchers.push(t);
                        }
                    }
                }
            }

            // --- Release ----------------------------------------------
            (_, Ev::ReleaseStart(t)) => {
                let rl = if algo == LockAlgo::Ticket {
                    &mut serving_line
                } else {
                    &mut line
                };
                let c = rl.modify(spec, now, t, t);
                q.push(c, Ev::Released(t));
            }
            (_, Ev::Released(t)) => {
                holder = None;
                if algo == LockAlgo::Ticket {
                    serving += 1;
                }
                completed += 1;
                // The release invalidates every locally-spinning
                // watcher; their refetches hit the line together.
                // Coherence arbitration is not FIFO-aware: drain in
                // reverse arrival order (adversarial for the ticket
                // queue, irrelevant for TTAS where any winner works).
                for w in watchers.drain(..).rev() {
                    match algo {
                        LockAlgo::Ttas => q.push(now, Ev::Try(w)),
                        LockAlgo::Ticket => q.push(now, Ev::PollStart(w)),
                        LockAlgo::Tas => unreachable!("TAS has no watchers"),
                    }
                }
                q.push(now + params.noncs_cycles, Ev::Try(t));
            }
        }
    }
    let seconds = spec.cycles_to_secs(params.duration_cycles as f64);
    completed as f64 / seconds
}

/// The educated backoff quantum for `n` threads on contexts `0..n`: the
/// maximum pairwise communication latency (Section 5).
pub fn educated_quantum(spec: &MachineSpec, n_threads: usize) -> u64 {
    let mut max = 0u32;
    for a in 0..n_threads {
        for b in (a + 1)..n_threads {
            max = max.max(spec.true_latency(a, b));
        }
    }
    u64::from(max.max(10))
}

/// One point of Fig. 8: relative throughput of the backoff variant over
/// the pause baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Competing threads.
    pub threads: usize,
    /// Baseline throughput, ops/s.
    pub base: f64,
    /// Educated-backoff throughput, ops/s.
    pub with_backoff: f64,
    /// `with_backoff / base`.
    pub relative: f64,
}

/// The Fig. 8 series for one platform and algorithm.
pub fn fig8_series(
    spec: &MachineSpec,
    algo: LockAlgo,
    thread_counts: &[usize],
    params: &SimParams,
) -> Vec<Fig8Point> {
    thread_counts
        .iter()
        .map(|&n| {
            let base = throughput(spec, algo, n, SimBackoff::None, params);
            let q = educated_quantum(spec, n);
            let b = match algo {
                LockAlgo::Ticket => SimBackoff::Proportional(q),
                _ => SimBackoff::Fixed(q),
            };
            let with_backoff = throughput(spec, algo, n, b, params);
            Fig8Point {
                threads: n,
                base,
                with_backoff,
                relative: with_backoff / base,
            }
        })
        .collect()
}

/// The thread counts of the Fig. 8 x-axis for a platform: powers of two
/// plus the full machine.
pub fn default_thread_counts(spec: &MachineSpec) -> Vec<usize> {
    let total = spec.total_hwcs();
    let mut counts = vec![2usize, 4, 8];
    let mut c = 16;
    while c < total {
        counts.push(c);
        c *= 2;
    }
    counts.push(total);
    counts.retain(|&c| c <= total);
    counts.dedup();
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::presets;

    fn quick() -> SimParams {
        SimParams {
            duration_cycles: 6_000_000,
            ..SimParams::default()
        }
    }

    #[test]
    fn single_thread_throughput_matches_closed_form() {
        let spec = presets::ivy();
        let p = quick();
        let ops = throughput(&spec, LockAlgo::Tas, 1, SimBackoff::None, &p);
        // One thread: cs + noncs + 2 line ops (~10 cy each, same core).
        let round = p.cs_cycles + p.noncs_cycles + 20;
        let expected = 1.0 / spec.cycles_to_secs(round as f64);
        let err = (ops - expected).abs() / expected;
        assert!(err < 0.05, "ops {ops} expected {expected}");
    }

    #[test]
    fn contention_reduces_per_thread_throughput() {
        let spec = presets::ivy();
        let p = quick();
        let t1 = throughput(&spec, LockAlgo::Tas, 1, SimBackoff::None, &p);
        let t20 = throughput(&spec, LockAlgo::Tas, 20, SimBackoff::None, &p);
        // Total throughput under heavy contention is below the
        // uncontended rate (lock handoffs cost transfers).
        assert!(t20 < t1, "t20 {t20} t1 {t1}");
    }

    #[test]
    fn ticket_backoff_beats_baseline_under_contention() {
        let spec = presets::ivy();
        let p = quick();
        for n in [10usize, 20, 40] {
            let q = educated_quantum(&spec, n);
            let base = throughput(&spec, LockAlgo::Ticket, n, SimBackoff::None, &p);
            let bo = throughput(&spec, LockAlgo::Ticket, n, SimBackoff::Proportional(q), &p);
            assert!(bo > base, "n={n}: backoff {bo} base {base}");
        }
    }

    #[test]
    fn fig8_shapes_match_paper_averages() {
        // Paper (Section 7.1): average improvements of 12% (TAS),
        // 11% (TTAS) and 39% (TICKET). The model must land in the same
        // ballpark on the 2-socket Ivy.
        let spec = presets::ivy();
        let p = quick();
        let counts = [4usize, 8, 16, 24, 32, 40];
        let avg = |algo: LockAlgo| {
            let s = fig8_series(&spec, algo, &counts, &p);
            s.iter().map(|pt| pt.relative).sum::<f64>() / s.len() as f64
        };
        let tas = avg(LockAlgo::Tas);
        let ttas = avg(LockAlgo::Ttas);
        let ticket = avg(LockAlgo::Ticket);
        // The ordering is the paper's central result: proportional
        // ticket backoff wins by far the most (39% average in the
        // paper; the coherence model underestimates the TAS/TTAS gains
        // because it has no NACK-retry churn — see EXPERIMENTS.md).
        assert!(
            ticket > tas && ticket > ttas,
            "ticket {ticket} tas {tas} ttas {ttas}"
        );
        assert!((0.90..=1.45).contains(&tas), "tas {tas}");
        assert!((0.90..=1.45).contains(&ttas), "ttas {ttas}");
        assert!((1.10..=2.2).contains(&ticket), "ticket {ticket}");
    }

    #[test]
    fn ticket_gain_grows_with_contention() {
        // Fig. 8: the TICKET gap widens as threads increase.
        let spec = presets::ivy();
        let p = quick();
        let s = fig8_series(&spec, LockAlgo::Ticket, &[4, 40], &p);
        assert!(s[1].relative > s[0].relative + 0.3, "{s:?}");
    }

    #[test]
    fn educated_quantum_grows_with_span() {
        let spec = presets::ivy();
        // 2 threads on one socket vs spanning both.
        assert_eq!(educated_quantum(&spec, 2), 112);
        assert_eq!(educated_quantum(&spec, 20), 308);
    }

    #[test]
    fn default_counts_end_at_full_machine() {
        for spec in presets::all_paper_platforms() {
            let counts = default_thread_counts(&spec);
            assert_eq!(*counts.last().unwrap(), spec.total_hwcs());
            assert!(counts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deterministic() {
        let spec = presets::opteron();
        let p = quick();
        let a = throughput(&spec, LockAlgo::Ttas, 12, SimBackoff::Fixed(300), &p);
        let b = throughput(&spec, LockAlgo::Ttas, 12, SimBackoff::Fixed(300), &p);
        assert_eq!(a, b);
    }
}
