//! The educated-backoff policy (Section 5, "Educated Backoffs").
//!
//! "We set the backoff quantum to be the maximum latency between any
//! two threads that are involved in the execution." Different locks use
//! the quantum differently: TAS/TTAS back off for one quantum; TICKET
//! backs off proportionally to the thread's distance in the ticket
//! queue (Section 7.1).

use mctop::Mctop;

/// Backoff configuration for a lock instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffCfg {
    /// The backoff quantum in cycles (0 disables backoff).
    pub quantum_cycles: u32,
}

impl BackoffCfg {
    /// No backoff: spin with just the architectural pause instruction
    /// (the paper's baseline).
    pub fn none() -> Self {
        BackoffCfg { quantum_cycles: 0 }
    }

    /// The educated quantum for an execution involving the given
    /// hardware contexts: their maximum pairwise communication latency.
    pub fn from_mctop(topo: &Mctop, hwcs: &[usize]) -> Self {
        BackoffCfg {
            quantum_cycles: topo.max_latency_between(hwcs),
        }
    }

    /// Quantum for an execution spanning the whole machine.
    pub fn from_mctop_all(topo: &Mctop) -> Self {
        BackoffCfg {
            quantum_cycles: topo.max_latency(),
        }
    }

    /// The educated quantum from a prebuilt topology view (what
    /// placement-backed lock deployments already hold).
    pub fn from_view(view: &mctop::view::TopoView, hwcs: &[usize]) -> Self {
        BackoffCfg {
            quantum_cycles: view.max_latency_between(hwcs),
        }
    }

    /// Whether backoff is enabled.
    pub fn enabled(&self) -> bool {
        self.quantum_cycles > 0
    }

    /// Busy-waits roughly `mult` quanta using the pause instruction
    /// (on x86 the paper invokes `pause` in a loop to implement the
    /// quantum).
    #[inline]
    pub fn pause(&self, mult: u32) {
        // A pause/yield hint costs a handful of cycles; ~8 is a
        // conservative portable estimate.
        let iters = (self.quantum_cycles / 8).max(1) * mult.max(1);
        for _ in 0..iters {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Mctop {
        let spec = mcsim::presets::ivy();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        mctop::infer(&mut p, &cfg).unwrap()
    }

    #[test]
    fn quantum_is_max_latency_of_participants() {
        let t = topo();
        // Same-socket threads: intra-socket latency.
        let same = BackoffCfg::from_mctop(&t, &[0, 1, 2]);
        assert_eq!(same.quantum_cycles, 112);
        // Cross-socket threads: cross-socket latency.
        let cross = BackoffCfg::from_mctop(&t, &[0, 1, 10]);
        assert_eq!(cross.quantum_cycles, 308);
        // Whole machine.
        assert_eq!(BackoffCfg::from_mctop_all(&t).quantum_cycles, 308);
    }

    #[test]
    fn none_is_disabled() {
        assert!(!BackoffCfg::none().enabled());
        assert!(BackoffCfg {
            quantum_cycles: 100
        }
        .enabled());
    }

    #[test]
    fn pause_terminates() {
        BackoffCfg {
            quantum_cycles: 500,
        }
        .pause(3);
        BackoffCfg::none().pause(1);
    }
}
