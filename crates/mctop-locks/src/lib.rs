//! # mctop-locks — educated backoffs for spinlocks
//!
//! Reproduction of the locking study of the MCTOP paper (Sections 5 and
//! 7.1): test-and-set (TAS), test-and-test-and-set (TTAS) and ticket
//! (TICKET) locks whose backoff quantum is *derived from the topology* —
//! "messages on multi-cores travel as fast as coherence protocols", so
//! the right time to wait before retrying is the maximum communication
//! latency between any two participating threads.
//!
//! Three layers:
//!
//! - [`raw`]: real, runnable spinlock implementations with optional
//!   backoff (used by the host benchmarks and correctness tests);
//! - [`backoff`]: the policy — quantum = `max_latency_between(threads)`
//!   from MCTOP, fixed for TAS/TTAS, proportional to queue position for
//!   TICKET (Section 7.1);
//! - [`sim`]: a coherence-line discrete-event model that reproduces the
//!   *shape* of Fig. 8 on the five simulated paper platforms (see
//!   DESIGN.md for the substitution rationale).

pub mod backoff;
pub mod harness;
pub mod raw;
pub mod sim;

pub use backoff::BackoffCfg;
pub use raw::{
    LockAlgo,
    RawLock,
    TasLock,
    TicketLock,
    TtasLock, //
};
