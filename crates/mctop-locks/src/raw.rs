//! The three spinlock algorithms of Section 7.1, runnable on the host.
//!
//! Each lock takes a [`BackoffCfg`]: with a zero quantum the waiting
//! loop degenerates to the paper's `pause`-instruction baseline; with an
//! educated quantum, TAS and TTAS wait one quantum between attempts and
//! TICKET waits proportionally to its distance in the queue.

use std::sync::atomic::{
    AtomicBool,
    AtomicU32,
    Ordering, //
};

use crate::backoff::BackoffCfg;

/// Common spinlock interface (no poisoning; guards via closure).
pub trait RawLock: Sync {
    /// Acquires the lock.
    fn lock(&self);
    /// Releases the lock.
    ///
    /// Callers must hold the lock; these are raw research locks, so the
    /// contract is by convention (the [`RawLock::with`] helper keeps it).
    fn unlock(&self);

    /// Runs `f` under the lock.
    fn with<R>(&self, f: impl FnOnce() -> R) -> R
    where
        Self: Sized,
    {
        self.lock();
        let r = f();
        self.unlock();
        r
    }
}

/// Runs `f` under a dynamically-typed lock.
pub fn with_lock<R>(lock: &(dyn RawLock + Send + Sync), f: impl FnOnce() -> R) -> R {
    lock.lock();
    let r = f();
    lock.unlock();
    r
}

/// Test-and-set lock: unconditional atomic swap attempts.
#[derive(Debug)]
pub struct TasLock {
    state: AtomicBool,
    backoff: BackoffCfg,
}

impl TasLock {
    /// A TAS lock with the given backoff.
    pub fn new(backoff: BackoffCfg) -> Self {
        TasLock {
            state: AtomicBool::new(false),
            backoff,
        }
    }
}

impl RawLock for TasLock {
    fn lock(&self) {
        while self.state.swap(true, Ordering::AcqRel) {
            if self.backoff.enabled() {
                self.backoff.pause(1);
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn unlock(&self) {
        self.state.store(false, Ordering::Release);
    }
}

/// Test-and-test-and-set lock: spin reading, swap only when free.
#[derive(Debug)]
pub struct TtasLock {
    state: AtomicBool,
    backoff: BackoffCfg,
}

impl TtasLock {
    /// A TTAS lock with the given backoff.
    pub fn new(backoff: BackoffCfg) -> Self {
        TtasLock {
            state: AtomicBool::new(false),
            backoff,
        }
    }
}

impl RawLock for TtasLock {
    fn lock(&self) {
        loop {
            while self.state.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            if !self.state.swap(true, Ordering::AcqRel) {
                return;
            }
            // Failed the swap after seeing it free: contended window.
            if self.backoff.enabled() {
                self.backoff.pause(1);
            }
        }
    }

    fn unlock(&self) {
        self.state.store(false, Ordering::Release);
    }
}

/// Ticket lock: FIFO; waiting is proportional backoff on the distance
/// to the serving counter (as in the paper, following
/// Mellor-Crummey/Scott-style proportional waiting).
#[derive(Debug)]
pub struct TicketLock {
    next: AtomicU32,
    serving: AtomicU32,
    backoff: BackoffCfg,
}

impl TicketLock {
    /// A ticket lock with the given backoff.
    pub fn new(backoff: BackoffCfg) -> Self {
        TicketLock {
            next: AtomicU32::new(0),
            serving: AtomicU32::new(0),
            backoff,
        }
    }
}

impl RawLock for TicketLock {
    fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::AcqRel);
        loop {
            let cur = self.serving.load(Ordering::Acquire);
            if cur == ticket {
                return;
            }
            let dist = ticket.wrapping_sub(cur);
            if self.backoff.enabled() {
                // Backoff proportional to the position in the queue.
                self.backoff.pause(dist);
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn unlock(&self) {
        self.serving.fetch_add(1, Ordering::AcqRel);
    }
}

/// Which lock algorithm (for harnesses and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockAlgo {
    /// Test-and-set.
    Tas,
    /// Test-and-test-and-set.
    Ttas,
    /// Ticket.
    Ticket,
}

impl LockAlgo {
    /// All three algorithms in Fig. 8 order.
    pub const ALL: [LockAlgo; 3] = [LockAlgo::Tas, LockAlgo::Ttas, LockAlgo::Ticket];

    /// Paper-style name.
    pub fn name(self) -> &'static str {
        match self {
            LockAlgo::Tas => "TAS",
            LockAlgo::Ttas => "TTAS",
            LockAlgo::Ticket => "TICKET",
        }
    }

    /// Builds a boxed instance with the given backoff.
    pub fn build(self, backoff: BackoffCfg) -> Box<dyn RawLock + Send + Sync> {
        match self {
            LockAlgo::Tas => Box::new(TasLock::new(backoff)),
            LockAlgo::Ttas => Box::new(TtasLock::new(backoff)),
            LockAlgo::Ticket => Box::new(TicketLock::new(backoff)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hammer(lock: Arc<dyn RawLock + Send + Sync>, threads: usize, iters: usize) -> u64 {
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        // Use a plain u64 behind the lock via UnsafeCell wrapped in a
        // newtype that is Sync because access is serialized by the lock
        // under test.
        struct Slot(std::cell::UnsafeCell<u64>);
        // SAFETY: all accesses to the inner value happen inside
        // lock()/unlock() critical sections of the lock under test; the
        // test asserts the final count, which would be wrong (lost
        // updates) if mutual exclusion were broken.
        unsafe impl Sync for Slot {}
        let slot = Arc::new(Slot(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let slot = Arc::clone(&slot);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        with_lock(&*lock, || {
                            // SAFETY: serialized by the lock under test
                            // (see Slot above).
                            unsafe { *slot.0.get() += 1 };
                        });
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all threads joined; exclusive access.
        unsafe { *slot.0.get() }
    }

    #[test]
    fn mutual_exclusion_all_algorithms_no_backoff() {
        for algo in LockAlgo::ALL {
            let lock: Arc<dyn RawLock + Send + Sync> = Arc::from(algo.build(BackoffCfg::none()));
            let total = hammer(lock, 4, 2_000);
            assert_eq!(total, 8_000, "{}", algo.name());
        }
    }

    #[test]
    fn mutual_exclusion_all_algorithms_with_backoff() {
        let backoff = BackoffCfg {
            quantum_cycles: 300,
        };
        for algo in LockAlgo::ALL {
            let lock: Arc<dyn RawLock + Send + Sync> = Arc::from(algo.build(backoff));
            let total = hammer(lock, 4, 2_000);
            assert_eq!(total, 8_000, "{}", algo.name());
        }
    }

    #[test]
    fn ticket_lock_is_fifo_under_serial_use() {
        let lock = TicketLock::new(BackoffCfg::none());
        lock.lock();
        lock.unlock();
        lock.lock();
        lock.unlock();
        // Two complete acquire/release cycles leave next == serving.
        assert_eq!(
            lock.next.load(Ordering::Relaxed),
            lock.serving.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn uncontended_lock_is_reentrant_across_calls() {
        for algo in LockAlgo::ALL {
            let lock = algo.build(BackoffCfg::none());
            for _ in 0..100 {
                with_lock(&*lock, || ());
            }
        }
    }
}
