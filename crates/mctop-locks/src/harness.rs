//! Real-thread lock throughput harness (the host-execution path of the
//! Fig. 8 experiment: multiple threads compete for one lock, perform
//! 1000 cycles of work in the critical section, release, and pause
//! between iterations).

use std::sync::atomic::{
    AtomicBool,
    AtomicU64,
    Ordering, //
};
use std::sync::Arc;
use std::time::Duration;

use crate::backoff::BackoffCfg;
use crate::raw::{
    with_lock,
    LockAlgo,
    RawLock, //
};

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct HarnessCfg {
    /// Competing threads.
    pub threads: usize,
    /// Critical-section work: iterations of a dependent arithmetic
    /// chain (~1 cycle each; the paper uses 1000 cycles).
    pub cs_work: u64,
    /// Non-critical pause between iterations, same units.
    pub noncs_work: u64,
    /// Wall-clock duration of the measurement.
    pub duration: Duration,
}

impl Default for HarnessCfg {
    fn default() -> Self {
        HarnessCfg {
            threads: 2,
            cs_work: 1000,
            noncs_work: 600,
            duration: Duration::from_millis(300),
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct HarnessResult {
    /// Total completed critical sections.
    pub ops: u64,
    /// Throughput, operations per second.
    pub ops_per_sec: f64,
}

#[inline]
fn work(units: u64) -> u64 {
    let mut x = units | 1;
    for i in 0..units {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x)
}

/// Runs the throughput experiment for one lock configuration.
pub fn run(algo: LockAlgo, backoff: BackoffCfg, cfg: &HarnessCfg) -> HarnessResult {
    let lock: Arc<dyn RawLock + Send + Sync> = Arc::from(algo.build(backoff));
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    // Shared counter protected by the lock: doubles as a correctness
    // check (must equal total ops at the end).
    let protected = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..cfg.threads)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            let protected = Arc::clone(&protected);
            let cfg = *cfg;
            std::thread::spawn(move || {
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    with_lock(&*lock, || {
                        work(cfg.cs_work);
                        // Relaxed is fine: the lock orders the accesses.
                        protected.store(protected.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
                    });
                    local += 1;
                    work(cfg.noncs_work);
                }
                ops.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();

    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("lock harness thread panicked");
    }
    let total = ops.load(Ordering::Relaxed);
    assert_eq!(
        protected.load(Ordering::Relaxed),
        total,
        "mutual exclusion violated: lost updates under {}",
        algo.name()
    );
    HarnessResult {
        ops: total,
        ops_per_sec: total as f64 / cfg.duration.as_secs_f64(),
    }
}

/// Runs the with/without-backoff comparison (one Fig. 8 bar pair) on
/// the host.
pub fn compare(
    algo: LockAlgo,
    quantum_cycles: u32,
    cfg: &HarnessCfg,
) -> (HarnessResult, HarnessResult) {
    let base = run(algo, BackoffCfg::none(), cfg);
    let educated = run(algo, BackoffCfg { quantum_cycles }, cfg);
    (base, educated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_make_progress() {
        let cfg = HarnessCfg {
            threads: 2,
            duration: Duration::from_millis(120),
            ..HarnessCfg::default()
        };
        for algo in LockAlgo::ALL {
            let r = run(algo, BackoffCfg::none(), &cfg);
            assert!(r.ops > 100, "{}: only {} ops", algo.name(), r.ops);
        }
    }

    #[test]
    fn backoff_variants_also_progress() {
        let cfg = HarnessCfg {
            threads: 2,
            duration: Duration::from_millis(120),
            ..HarnessCfg::default()
        };
        for algo in LockAlgo::ALL {
            let r = run(
                algo,
                BackoffCfg {
                    quantum_cycles: 300,
                },
                &cfg,
            );
            assert!(r.ops > 50, "{}: only {} ops", algo.name(), r.ops);
        }
    }

    #[test]
    fn compare_returns_both_sides() {
        let cfg = HarnessCfg {
            threads: 2,
            duration: Duration::from_millis(80),
            ..HarnessCfg::default()
        };
        let (base, educated) = compare(LockAlgo::Ticket, 300, &cfg);
        assert!(base.ops_per_sec > 0.0);
        assert!(educated.ops_per_sec > 0.0);
    }
}
