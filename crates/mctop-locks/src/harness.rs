//! Real-thread lock throughput harness (the host-execution path of the
//! Fig. 8 experiment: multiple threads compete for one lock, perform
//! 1000 cycles of work in the critical section, release, and pause
//! between iterations).
//!
//! Contenders run on a [`mctop_runtime::WorkerPool`] — i.e. on the
//! persistent executor's placement-pinned workers — so the benchmark
//! actually honors the placement it is given instead of spawning bare
//! unpinned threads. Only the stop-flag timer is a plain thread (it
//! sleeps; it never contends).

use std::sync::atomic::{
    AtomicBool,
    AtomicU64,
    Ordering, //
};
use std::sync::Arc;
use std::time::Duration;

use mctop_runtime::WorkerPool;

use crate::backoff::BackoffCfg;
use crate::raw::{
    with_lock,
    LockAlgo,
    RawLock, //
};

/// Harness configuration. The number of competing threads is the
/// worker count of the pool passed to [`run`].
#[derive(Debug, Clone, Copy)]
pub struct HarnessCfg {
    /// Critical-section work: iterations of a dependent arithmetic
    /// chain (~1 cycle each; the paper uses 1000 cycles).
    pub cs_work: u64,
    /// Non-critical pause between iterations, same units.
    pub noncs_work: u64,
    /// Wall-clock duration of the measurement.
    pub duration: Duration,
}

impl Default for HarnessCfg {
    fn default() -> Self {
        HarnessCfg {
            cs_work: 1000,
            noncs_work: 600,
            duration: Duration::from_millis(300),
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct HarnessResult {
    /// Competing threads (the pool's worker count).
    pub threads: usize,
    /// Total completed critical sections.
    pub ops: u64,
    /// Throughput, operations per second.
    pub ops_per_sec: f64,
}

#[inline]
fn work(units: u64) -> u64 {
    let mut x = units | 1;
    for i in 0..units {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x)
}

/// Runs the throughput experiment for one lock configuration: every
/// pool worker — pinned per the pool's placement — contends for the
/// lock until the duration elapses.
pub fn run(
    pool: &WorkerPool,
    algo: LockAlgo,
    backoff: BackoffCfg,
    cfg: &HarnessCfg,
) -> HarnessResult {
    let lock: Arc<dyn RawLock + Send + Sync> = Arc::from(algo.build(backoff));
    let stop = Arc::new(AtomicBool::new(false));
    // Shared counter protected by the lock: doubles as a correctness
    // check (must equal total ops at the end).
    let protected = AtomicU64::new(0);

    let timer = {
        let stop = Arc::clone(&stop);
        let duration = cfg.duration;
        std::thread::spawn(move || {
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        })
    };
    let per_worker: Vec<u64> = pool.run(|_ctx| {
        let mut local = 0u64;
        while !stop.load(Ordering::Relaxed) {
            with_lock(&*lock, || {
                work(cfg.cs_work);
                // Relaxed is fine: the lock orders the accesses.
                protected.store(protected.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
            });
            local += 1;
            work(cfg.noncs_work);
        }
        local
    });
    timer.join().expect("timer thread panicked");

    let total: u64 = per_worker.iter().sum();
    assert_eq!(
        protected.load(Ordering::Relaxed),
        total,
        "mutual exclusion violated: lost updates under {}",
        algo.name()
    );
    HarnessResult {
        threads: pool.len(),
        ops: total,
        ops_per_sec: total as f64 / cfg.duration.as_secs_f64(),
    }
}

/// Runs the with/without-backoff comparison (one Fig. 8 bar pair) on
/// the host.
pub fn compare(
    pool: &WorkerPool,
    algo: LockAlgo,
    quantum_cycles: u32,
    cfg: &HarnessCfg,
) -> (HarnessResult, HarnessResult) {
    let base = run(pool, algo, BackoffCfg::none(), cfg);
    let educated = run(pool, algo, BackoffCfg { quantum_cycles }, cfg);
    (base, educated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop_place::{
        PlaceOpts,
        Placement,
        Policy, //
    };

    fn pool(threads: usize) -> WorkerPool {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        let place =
            Arc::new(Placement::new(&topo, Policy::RrCore, PlaceOpts::threads(threads)).unwrap());
        WorkerPool::new(place).without_os_pinning()
    }

    #[test]
    fn all_algorithms_make_progress() {
        let pool = pool(2);
        let cfg = HarnessCfg {
            duration: Duration::from_millis(120),
            ..HarnessCfg::default()
        };
        for algo in LockAlgo::ALL {
            let r = run(&pool, algo, BackoffCfg::none(), &cfg);
            assert_eq!(r.threads, 2);
            assert!(r.ops > 100, "{}: only {} ops", algo.name(), r.ops);
        }
    }

    #[test]
    fn backoff_variants_also_progress() {
        let pool = pool(2);
        let cfg = HarnessCfg {
            duration: Duration::from_millis(120),
            ..HarnessCfg::default()
        };
        for algo in LockAlgo::ALL {
            let r = run(
                &pool,
                algo,
                BackoffCfg {
                    quantum_cycles: 300,
                },
                &cfg,
            );
            assert!(r.ops > 50, "{}: only {} ops", algo.name(), r.ops);
        }
    }

    #[test]
    fn compare_returns_both_sides() {
        let pool = pool(2);
        let cfg = HarnessCfg {
            duration: Duration::from_millis(80),
            ..HarnessCfg::default()
        };
        let (base, educated) = compare(&pool, LockAlgo::Ticket, 300, &cfg);
        assert!(base.ops_per_sec > 0.0);
        assert!(educated.ops_per_sec > 0.0);
    }
}
