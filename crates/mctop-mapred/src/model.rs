//! The Fig. 10/11 model: execution time and energy of a Metis workload
//! under a placement, on a simulated platform.
//!
//! The model charges three first-order costs, all computed from the
//! *placement* and the *enriched topology* (never from per-platform
//! constants):
//!
//! - compute: work over the effective cores (a second SMT context
//!   yields only a fraction of a core);
//! - memory: traffic over the bandwidth the used sockets can supply to
//!   the placed threads;
//! - synchronization/allocation: rounds times the mean communication
//!   latency among the placed threads.
//!
//! Metis's default is the SEQUENTIAL placement; the MCTOP version uses
//! the per-workload policies of Fig. 10. Both sides get the
//! best-performing thread count (as in the paper). The gains then
//! *emerge* from the machine differences — e.g. SPARC's SocketMajor
//! numbering makes SEQUENTIAL stack eight SMT contexts per core, which
//! is why the paper's biggest wins are there.

use std::sync::Arc;

use mcsim::MachineSpec;
use mctop::view::TopoView;
use mctop::Mctop;
use mctop_alloc::AllocPolicy;
use mctop_place::{
    PlaceOpts,
    Placement,
    Policy, //
};

use crate::energy::execution_energy;

/// Cost profile of one workload (abstract units; identical across
/// platforms — the platform enters only through the topology).
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Workload name as in Fig. 10.
    pub name: &'static str,
    /// The placement policy the paper uses for it.
    pub policy: Policy,
    /// Total compute, cycles.
    pub work_cycles: f64,
    /// Total memory traffic, bytes.
    pub mem_bytes: f64,
    /// Synchronization/allocation rounds (each costs the mean pairwise
    /// latency among the threads).
    pub sync_rounds: f64,
    /// Throughput of an extra SMT context relative to a full core.
    pub smt_yield: f64,
}

/// The four workloads of Fig. 10 with their paper policies.
pub fn fig10_profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "K-Means",
            policy: Policy::ConCoreHwc,
            work_cycles: 60e9,
            mem_bytes: 10e9,
            sync_rounds: 5.0e6,
            smt_yield: 0.30,
        },
        Profile {
            // Heavy intermediate-data locality: communication-bound.
            name: "Mean",
            policy: Policy::ConHwc,
            work_cycles: 20e9,
            mem_bytes: 8e9,
            sync_rounds: 14.0e6,
            smt_yield: 0.60,
        },
        Profile {
            // Streaming through large inputs: bandwidth-bound.
            name: "Word Count",
            policy: Policy::RrCore,
            work_cycles: 25e9,
            mem_bytes: 70e9,
            sync_rounds: 3.0e6,
            smt_yield: 0.45,
        },
        Profile {
            // Cache-blocked compute: unique cores, SMT thrashes.
            name: "Matrix Mult",
            policy: Policy::ConCore,
            work_cycles: 90e9,
            mem_bytes: 6e9,
            sync_rounds: 0.8e6,
            smt_yield: 0.15,
        },
    ]
}

/// Predicted execution time (seconds) of a profile under a placement,
/// with every worker's tables and buffers on its local node (Metis's
/// allocation behaviour, and what the paper's study measures).
pub fn exec_time(spec: &MachineSpec, topo: &Mctop, place: &Placement, p: &Profile) -> f64 {
    exec_time_alloc(spec, topo, place, p, &AllocPolicy::Local)
        .expect("the LOCAL policy always resolves")
}

/// [`exec_time`] with the workers' buffers routed through an explicit
/// [`AllocPolicy`]: the bandwidth-supply term charges the policy's
/// stripe mix through `mctop_alloc::model` instead of assuming
/// local-node buffers. `AllocPolicy::Local` reproduces [`exec_time`]
/// bit-exactly; any other policy that cannot be evaluated on this
/// topology is an error — never silently priced like `Local`.
pub fn exec_time_alloc(
    spec: &MachineSpec,
    topo: &Mctop,
    place: &Placement,
    p: &Profile,
    alloc: &AllocPolicy,
) -> Result<f64, mctop_alloc::AllocError> {
    let hwcs = place.order();
    assert!(!hwcs.is_empty());
    let f_hz = spec.freq_ghz * 1e9;

    // Effective cores: first context of a core counts 1, siblings
    // yield `smt_yield`.
    let mut per_core: std::collections::BTreeMap<usize, usize> = Default::default();
    for &h in hwcs {
        *per_core.entry(topo.hwcs[h].core).or_insert(0) += 1;
    }
    let eff_cores: f64 = per_core
        .values()
        .map(|&c| 1.0 + p.smt_yield * (c as f64 - 1.0))
        .sum();
    let t_comp = p.work_cycles / (f_hz * eff_cores);

    // Bandwidth supply: per used socket, its threads can pull at most
    // threads x single-core bandwidth, capped by what the socket can
    // stream against buffers striped per the allocation policy (LOCAL
    // = the socket's local bandwidth, the legacy ad-hoc node math).
    let mut bw_supply = 0.0f64;
    for s in topo.sockets_used_by(hwcs) {
        let threads = hwcs.iter().filter(|&&h| topo.socket_of(h) == s).count() as f64;
        let one = topo.sockets[s]
            .single_core_bw
            .unwrap_or(spec.mem.per_core_stream_bw);
        // Only LOCAL keeps the legacy fallback for an unmeasured local
        // bandwidth; policy errors propagate instead of pricing as
        // LOCAL.
        let cap = match mctop_alloc::model::socket_policy_bandwidth(topo, s, alloc) {
            Ok(bw) => bw,
            Err(_) if matches!(alloc, AllocPolicy::Local) => spec.mem.local_bandwidth,
            Err(e) => return Err(e),
        };
        bw_supply += (threads * one).min(cap) * 1e9;
    }
    let t_mem = p.mem_bytes / bw_supply;

    // Synchronization/allocation: rounds x mean pairwise latency,
    // amplified by the number of participants (reductions, allocator
    // contention and barrier fan-in all grow with the thread count).
    let mean_lat = mean_pairwise_latency(topo, hwcs);
    let amplification = 1.0 + 0.04 * hwcs.len() as f64;
    let t_sync = p.sync_rounds * mean_lat * amplification / f_hz;

    Ok(t_comp.max(t_mem) + t_sync)
}

fn mean_pairwise_latency(topo: &Mctop, hwcs: &[usize]) -> f64 {
    if hwcs.len() < 2 {
        return 0.0;
    }
    let mut sum = 0u64;
    let mut n = 0u64;
    for (i, &a) in hwcs.iter().enumerate() {
        for &b in hwcs.iter().skip(i + 1) {
            sum += u64::from(topo.get_latency(a, b));
            n += 1;
        }
    }
    sum as f64 / n as f64
}

/// Best (time, placement) over a sweep of thread counts for one policy
/// (the paper selects the best-performing thread count for both Metis
/// versions).
pub fn best_time(
    spec: &MachineSpec,
    topo: &Mctop,
    policy: Policy,
    p: &Profile,
) -> (f64, Placement) {
    best_time_view(spec, &TopoView::new(Arc::new(topo.clone())), policy, p)
}

/// [`best_time`] over a prebuilt topology view (one view serves every
/// thread-count candidate and every workload of a platform sweep).
pub fn best_time_view(
    spec: &MachineSpec,
    view: &TopoView,
    policy: Policy,
    p: &Profile,
) -> (f64, Placement) {
    let total = view.num_hwcs();
    let cores = view.num_cores();
    let mut candidates = vec![cores / 2, cores, (cores + total) / 2, total];
    candidates.retain(|&c| c >= 1 && c <= total);
    candidates.dedup();
    let mut best: Option<(f64, Placement)> = None;
    for threads in candidates {
        let Ok(place) = Placement::with_view(view, policy, PlaceOpts::threads(threads)) else {
            continue;
        };
        let t = exec_time(spec, view, &place, p);
        if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
            best = Some((t, place));
        }
    }
    best.expect("at least one candidate placement")
}

/// One bar of Fig. 10: relative time (and relative energy where power
/// measurements exist) of MCTOP-placed Metis vs default (sequential)
/// Metis.
#[derive(Debug, Clone)]
pub struct Fig10Bar {
    /// Platform name.
    pub platform: String,
    /// Workload name.
    pub workload: &'static str,
    /// Policy used (as labelled in Fig. 10).
    pub policy: Policy,
    /// time(MCTOP) / time(default); < 1 means MCTOP wins.
    pub rel_time: f64,
    /// energy(MCTOP) / energy(default), Intel only.
    pub rel_energy: Option<f64>,
}

/// Computes the Fig. 10 bars for one platform.
pub fn fig10_platform(spec: &MachineSpec, topo: &Mctop) -> Vec<Fig10Bar> {
    let view = TopoView::new(Arc::new(topo.clone()));
    fig10_profiles()
        .into_iter()
        .map(|mut p| {
            // Paper footnote: Word Count uses CON_CORE on SPARC.
            if spec.name == "sparc" && p.name == "Word Count" {
                p.policy = Policy::ConCore;
            }
            let (t_base, place_base) = best_time_view(spec, &view, Policy::Sequential, &p);
            let (t_mctop, place_mctop) = best_time_view(spec, &view, p.policy, &p);
            let rel_energy = match topo.power {
                Some(_) => {
                    let e_base = execution_energy(topo, place_base.order(), t_base, true).unwrap();
                    let e_mctop =
                        execution_energy(topo, place_mctop.order(), t_mctop, true).unwrap();
                    Some(e_mctop / e_base)
                }
                None => None,
            };
            Fig10Bar {
                platform: spec.name.clone(),
                workload: p.name,
                policy: p.policy,
                rel_time: t_mctop / t_base,
                rel_energy,
            }
        })
        .collect()
}

/// Best placement by *energy* under the POWER policy.
fn best_energy(spec: &MachineSpec, view: &TopoView, p: &Profile) -> (f64, Placement) {
    let total = view.num_hwcs();
    let cores = view.num_cores();
    let mut candidates = vec![cores / 2, cores, (cores + total) / 2, total];
    candidates.retain(|&c| c >= 1 && c <= total);
    candidates.dedup();
    let mut best: Option<(f64, f64, Placement)> = None;
    for threads in candidates {
        let Ok(place) = Placement::with_view(view, Policy::Power, PlaceOpts::threads(threads))
        else {
            continue;
        };
        let t = exec_time(spec, view, &place, p);
        let e = execution_energy(view, place.order(), t, true).expect("power measured");
        if best.as_ref().is_none_or(|(be, _, _)| e < *be) {
            best = Some((e, t, place));
        }
    }
    let (_, t, place) = best.expect("at least one candidate");
    (t, place)
}

/// One row of Fig. 11: the POWER policy traded against the
/// performance-oriented policy on Ivy.
#[derive(Debug, Clone, Copy)]
pub struct Fig11Row {
    /// Workload name.
    pub workload: &'static str,
    /// time(POWER) / time(perf policy).
    pub time: f64,
    /// energy(POWER) / energy(perf policy).
    pub energy: f64,
    /// Relative energy efficiency (higher is better).
    pub efficiency: f64,
}

/// Computes Fig. 11 (energy-oriented placement on an Intel platform).
pub fn fig11(spec: &MachineSpec, topo: &Mctop) -> Vec<Fig11Row> {
    assert!(topo.power.is_some(), "Fig. 11 requires power measurements");
    let view = TopoView::new(Arc::new(topo.clone()));
    fig10_profiles()
        .into_iter()
        .filter(|p| p.name == "K-Means" || p.name == "Mean")
        .map(|p| {
            let (t_perf, place_perf) = best_time_view(spec, &view, p.policy, &p);
            // The energy-oriented run picks the POWER placement that
            // minimizes *energy* (the paper trades performance by
            // "using fewer physical cores").
            let (t_pow, place_pow) = best_energy(spec, &view, &p);
            let e_perf = execution_energy(topo, place_perf.order(), t_perf, true).unwrap();
            let e_pow = execution_energy(topo, place_pow.order(), t_pow, true).unwrap();
            let time = t_pow / t_perf;
            let energy = e_pow / e_perf;
            Fig11Row {
                workload: p.name,
                time,
                energy,
                efficiency: crate::energy::relative_efficiency(time, energy),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop::enrich::{
        enrich_all,
        SimEnricher, //
    };

    fn enriched(spec: &MachineSpec) -> Mctop {
        let mut p = mctop::backend::SimProber::noiseless(spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    #[test]
    fn fig10_average_improvement_matches_paper_claim() {
        // "Our version of Metis delivers 17% better average performance
        // across all platforms." Accept 8-30% in the model.
        let mut rels = Vec::new();
        for spec in mcsim::presets::all_paper_platforms() {
            let topo = enriched(&spec);
            for bar in fig10_platform(&spec, &topo) {
                // No catastrophic regressions (paper max ~1.04-1.06).
                assert!(
                    bar.rel_time < 1.10,
                    "{} {}: {}",
                    bar.platform,
                    bar.workload,
                    bar.rel_time
                );
                rels.push(bar.rel_time);
            }
        }
        let avg = rels.iter().sum::<f64>() / rels.len() as f64;
        // Paper: 0.83; the model lands near 0.91 (it misses the
        // allocator-locality effects behind the Opteron gains).
        assert!((0.84..=0.97).contains(&avg), "average relative time {avg}");
    }

    #[test]
    fn biggest_wins_on_socket_major_machines() {
        // SPARC's sequential numbering stacks SMT contexts: the paper's
        // largest gains (e.g. Matrix Mult 0.27) are there.
        let sparc = mcsim::presets::sparc();
        let topo = enriched(&sparc);
        let bars = fig10_platform(&sparc, &topo);
        let mm = bars.iter().find(|b| b.workload == "Matrix Mult").unwrap();
        let ivy = mcsim::presets::ivy();
        let topo_i = enriched(&ivy);
        let bars_i = fig10_platform(&ivy, &topo_i);
        let mm_i = bars_i.iter().find(|b| b.workload == "Matrix Mult").unwrap();
        assert!(
            mm.rel_time < mm_i.rel_time,
            "sparc {} should beat ivy {}",
            mm.rel_time,
            mm_i.rel_time
        );
        assert!(mm.rel_time < 0.90, "sparc matrix mult {}", mm.rel_time);
    }

    #[test]
    fn energy_reported_only_on_intel() {
        for spec in mcsim::presets::all_paper_platforms() {
            let topo = enriched(&spec);
            let bars = fig10_platform(&spec, &topo);
            let has_energy = bars.iter().all(|b| b.rel_energy.is_some());
            assert_eq!(has_energy, spec.power.has_rapl, "{}", spec.name);
        }
    }

    #[test]
    fn alloc_policy_moves_the_bandwidth_bound_workload() {
        // Word Count is bandwidth-bound: interleaving its buffers over
        // all nodes cuts the per-socket supply and slows it down, while
        // LOCAL reproduces the default path bit-exactly.
        let spec = mcsim::presets::ivy();
        let topo = enriched(&spec);
        let view = TopoView::new(Arc::new(topo.clone()));
        let p = fig10_profiles()
            .into_iter()
            .find(|p| p.name == "Word Count")
            .unwrap();
        let place = Placement::with_view(&view, p.policy, PlaceOpts::threads(16)).unwrap();
        let base = exec_time(&spec, &topo, &place, &p);
        let local = exec_time_alloc(&spec, &topo, &place, &p, &AllocPolicy::Local).unwrap();
        assert_eq!(base, local);
        let inter = exec_time_alloc(&spec, &topo, &place, &p, &AllocPolicy::Interleave).unwrap();
        assert!(
            inter > local,
            "interleave {inter} should be slower than local {local}"
        );
        // An unevaluable policy is an error, never priced like LOCAL.
        assert!(exec_time_alloc(&spec, &topo, &place, &p, &AllocPolicy::OnNodes(vec![9])).is_err());
    }

    #[test]
    fn fig11_trades_performance_for_efficiency() {
        // Fig. 11: POWER placement is slower but more energy-efficient.
        let ivy = mcsim::presets::ivy();
        let topo = enriched(&ivy);
        let rows = fig11(&ivy, &topo);
        for row in &rows {
            assert!(row.time > 1.0, "{}: time {}", row.workload, row.time);
            assert!(row.energy < 1.0, "{}: energy {}", row.workload, row.energy);
        }
        // Paper (Fig. 11): K-Means trades 18.6% time for 22.6% energy,
        // efficiency 1.089; the model reproduces that row.
        let km = rows.iter().find(|r| r.workload == "K-Means").unwrap();
        assert!(km.efficiency > 1.05, "K-Means efficiency {}", km.efficiency);
        assert!((1.05..=1.35).contains(&km.time), "K-Means time {}", km.time);
    }
}
