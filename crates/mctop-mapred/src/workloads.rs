//! The four Metis workloads of Fig. 10, with synthetic input
//! generators (the paper uses the inputs shipped with Metis; synthetic
//! inputs with the same statistical shape exercise the same engine
//! paths).

use rand::rngs::SmallRng;
use rand::{
    Rng,
    SeedableRng, //
};

use crate::engine::MapReduce;

/// Word Count: K = word id, V = 1, reduce = sum. The generator draws
/// words from a Zipf-like distribution (natural text shape).
pub struct WordCount;

impl MapReduce for WordCount {
    type Item = Vec<u32>; // A "line" of word ids.
    type K = u32;
    type V = u32;
    type Out = u32;

    fn map(&self, line: &Vec<u32>, emit: &mut dyn FnMut(u32, u32)) {
        for &w in line {
            emit(w, 1);
        }
    }

    fn reduce(&self, _k: &u32, values: Vec<u32>) -> u32 {
        values.into_iter().sum()
    }
}

/// Generates `lines` lines of `words_per_line` Zipf-ish word ids over a
/// vocabulary of `vocab` words.
pub fn gen_text(lines: usize, words_per_line: usize, vocab: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..lines)
        .map(|_| {
            (0..words_per_line)
                .map(|_| {
                    // Approximate Zipf: invert a power of a uniform.
                    let u: f64 = rng.gen::<f64>().max(1e-9);
                    ((vocab as f64 * u.powi(3)) as u32).min(vocab as u32 - 1)
                })
                .collect()
        })
        .collect()
}

/// Mean: per-key average of numeric samples.
pub struct Mean;

impl MapReduce for Mean {
    type Item = (u16, f64); // (station, sample)
    type K = u16;
    type V = (f64, u32);
    type Out = f64;

    fn map(&self, item: &(u16, f64), emit: &mut dyn FnMut(u16, (f64, u32))) {
        emit(item.0, (item.1, 1));
    }

    fn reduce(&self, _k: &u16, values: Vec<(f64, u32)>) -> f64 {
        let (sum, n) = values
            .into_iter()
            .fold((0.0, 0u32), |(s, c), (v, n)| (s + v, c + n));
        sum / f64::from(n.max(1))
    }
}

/// Generates `n` (station, sample) records over `stations` keys.
pub fn gen_samples(n: usize, stations: u16, seed: u64) -> Vec<(u16, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0..stations);
            (s, f64::from(s) + rng.gen_range(-1.0..1.0))
        })
        .collect()
}

/// K-Means: one assignment + recentering iteration per engine run
/// (K = cluster id, V = (point sum, count)).
pub struct KMeansStep {
    /// Current centroids.
    pub centroids: Vec<[f64; 2]>,
}

impl MapReduce for KMeansStep {
    type Item = [f64; 2];
    type K = u32;
    type V = ([f64; 2], u32);
    type Out = [f64; 2];

    fn map(&self, p: &[f64; 2], emit: &mut dyn FnMut(u32, ([f64; 2], u32))) {
        let nearest = self
            .centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| dist2(p, a).partial_cmp(&dist2(p, b)).expect("finite"))
            .map(|(i, _)| i as u32)
            .expect("at least one centroid");
        emit(nearest, (*p, 1));
    }

    fn reduce(&self, _k: &u32, values: Vec<([f64; 2], u32)>) -> [f64; 2] {
        let mut sum = [0.0, 0.0];
        let mut n = 0u32;
        for (p, c) in values {
            sum[0] += p[0];
            sum[1] += p[1];
            n += c;
        }
        [sum[0] / f64::from(n.max(1)), sum[1] / f64::from(n.max(1))]
    }
}

fn dist2(a: &[f64; 2], b: &[f64; 2]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)
}

/// Generates points around `k` well-separated cluster centers.
pub fn gen_points(n: usize, k: usize, seed: u64) -> (Vec<[f64; 2]>, Vec<[f64; 2]>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<[f64; 2]> = (0..k)
        .map(|i| [10.0 * i as f64, 10.0 * ((i * 7) % k) as f64])
        .collect();
    let points = (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..k)];
            [
                c[0] + rng.gen_range(-1.0..1.0),
                c[1] + rng.gen_range(-1.0..1.0),
            ]
        })
        .collect();
    (points, centers)
}

/// Matrix Multiply: row-blocked C = A x B over the engine (K = row
/// index, V = the computed row).
pub struct MatrixMult<'m> {
    /// Left operand, row-major n x n.
    pub a: &'m [f64],
    /// Right operand, row-major n x n.
    pub b: &'m [f64],
    /// Dimension.
    pub n: usize,
}

impl MapReduce for MatrixMult<'_> {
    type Item = usize; // Row index.
    type K = usize;
    type V = Vec<f64>;
    type Out = Vec<f64>;

    fn map(&self, &row: &usize, emit: &mut dyn FnMut(usize, Vec<f64>)) {
        let n = self.n;
        let mut out = vec![0.0; n];
        for k in 0..n {
            let aik = self.a[row * n + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &self.b[k * n..(k + 1) * n];
            for (o, &bkj) in out.iter_mut().zip(brow) {
                *o += aik * bkj;
            }
        }
        emit(row, out);
    }

    fn reduce(&self, _k: &usize, mut values: Vec<Vec<f64>>) -> Vec<f64> {
        values.pop().expect("exactly one row per key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        run_job,
        EngineCfg, //
    };
    use mctop_place::{
        PlaceOpts,
        Placement,
        Policy, //
    };

    fn placement(n: usize) -> Placement {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        Placement::new(&topo, Policy::ConCore, PlaceOpts::threads(n)).unwrap()
    }

    #[test]
    fn word_count_matches_sequential() {
        let text = gen_text(500, 30, 200, 1);
        let mut expected = std::collections::BTreeMap::new();
        for line in &text {
            for &w in line {
                *expected.entry(w).or_insert(0u32) += 1;
            }
        }
        let out = run_job(&WordCount, &text, &placement(4), &EngineCfg::default());
        let got: std::collections::BTreeMap<u32, u32> = out.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn mean_is_exact_per_key() {
        let samples = gen_samples(20_000, 32, 2);
        let out = run_job(&Mean, &samples, &placement(4), &EngineCfg::default());
        assert_eq!(out.len(), 32);
        for (k, mean) in out {
            // Samples are key +- 1.
            assert!((mean - f64::from(k)).abs() < 0.2, "key {k}: mean {mean}");
        }
    }

    #[test]
    fn kmeans_recovers_cluster_centers() {
        let (points, centers) = gen_points(6000, 4, 3);
        let step = KMeansStep {
            centroids: centers.clone(),
        };
        let out = run_job(&step, &points, &placement(4), &EngineCfg::default());
        assert_eq!(out.len(), 4);
        for (k, c) in out {
            let truth = centers[k as usize];
            assert!((c[0] - truth[0]).abs() < 0.3 && (c[1] - truth[1]).abs() < 0.3);
        }
    }

    #[test]
    fn matrix_mult_matches_naive() {
        let n = 24;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let rows: Vec<usize> = (0..n).collect();
        let job = MatrixMult { a: &a, b: &b, n };
        let out = run_job(&job, &rows, &placement(3), &EngineCfg::default());
        for (i, row) in out {
            for j in 0..n {
                let expect: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                assert!((row[j] - expect).abs() < 1e-9, "C[{i}][{j}]");
            }
        }
    }
}
