//! # mctop-mapred — a Metis-like MapReduce library over MCTOP-PLACE
//!
//! Reproduction of the Metis study (Section 7.3 of the MCTOP paper):
//! a multi-core MapReduce engine whose worker threads are placed by the
//! high-level policies of MCTOP-PLACE instead of Metis's default
//! sequential pinning. Four of the workloads shipped with Metis are
//! implemented (the four of Fig. 10): K-Means, Mean, Word Count and
//! Matrix Multiply.
//!
//! - [`engine`]: the map/partition/reduce engine (real threads);
//! - [`workloads`]: the four workloads plus input generators;
//! - [`energy`]: energy accounting over the topology's power model;
//! - [`model`]: the per-platform performance/energy model that
//!   regenerates Figs. 10 and 11 over the simulated machines.

pub mod energy;
pub mod engine;
pub mod model;
pub mod workloads;

pub use engine::{
    run_job,
    run_job_on,
    EngineCfg,
    MapReduce, //
};
