//! Energy accounting for a placed execution (the energy bars of
//! Figs. 10-11): power of the active contexts (from the topology's
//! power plugin) times execution time.

use mctop::Mctop;

/// Energy (joules) of running the given contexts for `seconds`.
/// `None` when the topology has no power measurements (non-Intel).
pub fn execution_energy(
    topo: &Mctop,
    active_hwcs: &[usize],
    seconds: f64,
    with_dram: bool,
) -> Option<f64> {
    let p = topo.power.as_ref()?;
    Some(p.estimate(topo, active_hwcs, with_dram) * seconds)
}

/// Energy efficiency relative to a baseline: `(perf / perf_base) /
/// (energy / energy_base)` — the metric of Fig. 11 (higher is better).
pub fn relative_efficiency(time_rel: f64, energy_rel: f64) -> f64 {
    (1.0 / time_rel) / energy_rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop::enrich::{
        enrich_all,
        SimEnricher, //
    };

    fn topo(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = mctop::backend::SimProber::noiseless(spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    #[test]
    fn energy_scales_with_time_and_threads() {
        let t = topo(&mcsim::presets::ivy());
        let few = execution_energy(&t, &[0, 1], 1.0, true).unwrap();
        let many = execution_energy(&t, &(0..20).collect::<Vec<_>>(), 1.0, true).unwrap();
        assert!(many > few);
        let longer = execution_energy(&t, &[0, 1], 2.0, true).unwrap();
        assert!((longer - 2.0 * few).abs() < 1e-9);
    }

    #[test]
    fn no_power_measurements_no_energy() {
        let t = topo(&mcsim::presets::opteron());
        assert!(execution_energy(&t, &[0], 1.0, true).is_none());
    }

    #[test]
    fn fig11_efficiency_formula() {
        // Fig. 11, K-Means on Ivy: time 1.186, energy 0.774 ->
        // efficiency 1.089.
        let eff = relative_efficiency(1.186, 0.774);
        assert!((eff - 1.089).abs() < 0.01, "{eff}");
    }
}
