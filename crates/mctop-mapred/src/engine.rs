//! The MapReduce engine: split -> map (per-worker partitioned
//! hash tables) -> reduce (per partition) -> sorted merge.
//!
//! Workers are created in the order of an MCTOP-PLACE placement, so the
//! high-level policies of Table 2 directly control which hardware
//! contexts do the work (the paper's replacement for Metis's sequential
//! pinning).

use std::collections::HashMap;
use std::hash::{
    Hash,
    Hasher, //
};

use mctop_place::Placement;

/// A MapReduce job: user-provided map and reduce functions.
pub trait MapReduce: Sync {
    /// Input record.
    type Item: Sync;
    /// Intermediate key.
    type K: Ord + Hash + Eq + Send + Clone;
    /// Intermediate value.
    type V: Send;
    /// Reduced output per key.
    type Out: Send;

    /// Emits intermediate pairs for one record.
    fn map(&self, item: &Self::Item, emit: &mut dyn FnMut(Self::K, Self::V));

    /// Folds all values of one key.
    fn reduce(&self, key: &Self::K, values: Vec<Self::V>) -> Self::Out;
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineCfg {
    /// Reduce partitions (defaults to 4x workers).
    pub partitions: Option<usize>,
}

fn partition_of<K: Hash>(key: &K, n: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % n
}

/// One worker's map output: a hash table per shuffle partition.
type PartitionedTable<J> = Vec<HashMap<<J as MapReduce>::K, Vec<<J as MapReduce>::V>>>;

/// Runs a job over `items` with one worker per placement slot; returns
/// `(key, out)` pairs sorted by key.
pub fn run_job<J: MapReduce>(
    job: &J,
    items: &[J::Item],
    placement: &Placement,
    cfg: &EngineCfg,
) -> Vec<(J::K, J::Out)> {
    let workers = placement.capacity().max(1);
    let partitions = cfg.partitions.unwrap_or(workers * 4).max(1);

    // --- Map phase: one partitioned table per worker -------------------
    let chunk = items.len().div_ceil(workers).max(1);
    let mut tables: Vec<PartitionedTable<J>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let slice = items
                .get(w * chunk..((w + 1) * chunk).min(items.len()))
                .unwrap_or(&[]);
            handles.push(scope.spawn(move || {
                // Pin virtually: the placement decided our context; OS
                // pinning happens when the context exists on the host.
                let mut local: Vec<HashMap<J::K, Vec<J::V>>> =
                    (0..partitions).map(|_| HashMap::new()).collect();
                for item in slice {
                    job.map(item, &mut |k, v| {
                        let p = partition_of(&k, partitions);
                        local[p].entry(k).or_default().push(v);
                    });
                }
                local
            }));
        }
        for h in handles {
            tables.push(h.join().expect("map worker panicked"));
        }
    });

    // --- Shuffle: regroup by partition ----------------------------------
    let mut per_partition: Vec<PartitionedTable<J>> = (0..partitions).map(|_| Vec::new()).collect();
    for worker_tables in tables {
        for (p, table) in worker_tables.into_iter().enumerate() {
            per_partition[p].push(table);
        }
    }

    // --- Reduce phase: partitions distributed over the same workers ----
    let mut results: Vec<Vec<(J::K, J::Out)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let per_worker = per_partition.len().div_ceil(workers).max(1);
        let mut rest = per_partition;
        while !rest.is_empty() {
            let take = per_worker.min(rest.len());
            let batch: Vec<_> = rest.drain(..take).collect();
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for tables in batch {
                    // Merge the workers' tables for this partition.
                    let mut merged: HashMap<J::K, Vec<J::V>> = HashMap::new();
                    for t in tables {
                        for (k, mut vs) in t {
                            merged.entry(k).or_default().append(&mut vs);
                        }
                    }
                    for (k, vs) in merged {
                        let o = job.reduce(&k, vs);
                        out.push((k, o));
                    }
                }
                out
            }));
        }
        for h in handles {
            results.push(h.join().expect("reduce worker panicked"));
        }
    });

    // --- Final merge: sort by key ---------------------------------------
    let mut out: Vec<(J::K, J::Out)> = results.into_iter().flatten().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop_place::{
        PlaceOpts,
        Policy, //
    };

    fn placement(n: usize) -> Placement {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        Placement::new(&topo, Policy::RrCore, PlaceOpts::threads(n)).unwrap()
    }

    struct Counter;
    impl MapReduce for Counter {
        type Item = u32;
        type K = u32;
        type V = u32;
        type Out = u32;
        fn map(&self, item: &u32, emit: &mut dyn FnMut(u32, u32)) {
            emit(item % 10, 1);
        }
        fn reduce(&self, _k: &u32, values: Vec<u32>) -> u32 {
            values.into_iter().sum()
        }
    }

    #[test]
    fn counts_are_exact() {
        let items: Vec<u32> = (0..10_000).collect();
        let place = placement(4);
        let out = run_job(&Counter, &items, &place, &EngineCfg::default());
        assert_eq!(out.len(), 10);
        for (k, c) in out {
            assert_eq!(c, 1000, "key {k}");
        }
    }

    #[test]
    fn output_sorted_by_key() {
        let items: Vec<u32> = (0..977).rev().collect();
        let place = placement(3);
        let out = run_job(&Counter, &items, &place, &EngineCfg::default());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn single_worker_and_empty_input() {
        let place = placement(1);
        let out = run_job(&Counter, &[], &place, &EngineCfg::default());
        assert!(out.is_empty());
        let out = run_job(&Counter, &[5], &place, &EngineCfg::default());
        assert_eq!(out, vec![(5, 1)]);
    }

    #[test]
    fn partition_count_does_not_change_results() {
        let items: Vec<u32> = (0..5000).collect();
        let place = placement(4);
        let a = run_job(
            &Counter,
            &items,
            &place,
            &EngineCfg {
                partitions: Some(1),
            },
        );
        let b = run_job(
            &Counter,
            &items,
            &place,
            &EngineCfg {
                partitions: Some(64),
            },
        );
        assert_eq!(a, b);
    }
}
