//! The MapReduce engine: split -> map (per-worker partitioned
//! hash tables) -> reduce (per partition) -> sorted merge.
//!
//! Workers follow the order of an MCTOP-PLACE placement, so the
//! high-level policies of Table 2 directly control which hardware
//! contexts do the work (the paper's replacement for Metis's sequential
//! pinning). Both phases execute on one persistent
//! [`mctop_runtime::Executor`]: map chunk `w` and reduce batch `w` are
//! targeted at worker `w` (pinned to placement slot `w`), so a job no
//! longer spawns two waves of scoped threads. [`run_job_on`] is the
//! repeated-job path over a caller-owned executor; [`run_job`] arms a
//! transient one.
//!
//! Determinism: chunking, partition hashing, table order (by worker
//! index) and batch order (by batch index) are all independent of
//! scheduling, so results are byte-identical for any executor and any
//! worker count.

use std::collections::HashMap;
use std::hash::{
    Hash,
    Hasher, //
};

use mctop_place::Placement;
use mctop_runtime::Executor;

/// A MapReduce job: user-provided map and reduce functions.
pub trait MapReduce: Sync {
    /// Input record.
    type Item: Sync;
    /// Intermediate key.
    type K: Ord + Hash + Eq + Send + Clone;
    /// Intermediate value.
    type V: Send;
    /// Reduced output per key.
    type Out: Send;

    /// Emits intermediate pairs for one record.
    fn map(&self, item: &Self::Item, emit: &mut dyn FnMut(Self::K, Self::V));

    /// Folds all values of one key.
    fn reduce(&self, key: &Self::K, values: Vec<Self::V>) -> Self::Out;
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineCfg {
    /// Reduce partitions (defaults to 4x workers).
    pub partitions: Option<usize>,
}

fn partition_of<K: Hash>(key: &K, n: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % n
}

/// One worker's map output: a hash table per shuffle partition.
type PartitionedTable<J> = Vec<HashMap<<J as MapReduce>::K, Vec<<J as MapReduce>::V>>>;

/// One reduce batch's output: `(key, out)` pairs, pre-sort.
type BatchOut<J> = Vec<(<J as MapReduce>::K, <J as MapReduce>::Out)>;

/// Runs a job over `items` with one worker per placement slot; returns
/// `(key, out)` pairs sorted by key. Arms a transient executor over
/// the placement — callers running many jobs should hold an
/// [`Executor`] and use [`run_job_on`].
pub fn run_job<J: MapReduce>(
    job: &J,
    items: &[J::Item],
    placement: &Placement,
    cfg: &EngineCfg,
) -> Vec<(J::K, J::Out)> {
    let exec = Executor::from_placement(placement);
    run_job_on(&exec, job, items, cfg)
}

/// Runs a job on a persistent executor: the map phase targets chunk
/// `w` at worker `w`, the reduce phase targets partition batch `w` at
/// worker `w` — one executor, no per-call thread spawning.
pub fn run_job_on<J: MapReduce>(
    exec: &Executor,
    job: &J,
    items: &[J::Item],
    cfg: &EngineCfg,
) -> Vec<(J::K, J::Out)> {
    let workers = exec.len().max(1);
    let partitions = cfg.partitions.unwrap_or(workers * 4).max(1);

    // --- Map phase: one partitioned table per worker -------------------
    let chunk = items.len().div_ceil(workers).max(1);
    let mut tables: Vec<Option<PartitionedTable<J>>> = Vec::with_capacity(workers);
    tables.resize_with(workers, || None);
    exec.scope(|s| {
        for (w, slot) in tables.iter_mut().enumerate() {
            let slice = items
                .get(w * chunk..((w + 1) * chunk).min(items.len()))
                .unwrap_or(&[]);
            s.spawn_on(w, move || {
                let mut local: Vec<HashMap<J::K, Vec<J::V>>> =
                    (0..partitions).map(|_| HashMap::new()).collect();
                for item in slice {
                    job.map(item, &mut |k, v| {
                        let p = partition_of(&k, partitions);
                        local[p].entry(k).or_default().push(v);
                    });
                }
                *slot = Some(local);
            });
        }
    });

    // --- Shuffle: regroup by partition (worker order) -------------------
    let mut per_partition: Vec<PartitionedTable<J>> = (0..partitions).map(|_| Vec::new()).collect();
    for worker_tables in tables {
        let worker_tables = worker_tables.expect("map worker wrote its table");
        for (p, table) in worker_tables.into_iter().enumerate() {
            per_partition[p].push(table);
        }
    }

    // --- Reduce phase: partition batches targeted at the same workers --
    let per_worker = per_partition.len().div_ceil(workers).max(1);
    let mut batches: Vec<Vec<PartitionedTable<J>>> = Vec::new();
    let mut rest = per_partition;
    while !rest.is_empty() {
        let take = per_worker.min(rest.len());
        batches.push(rest.drain(..take).collect());
    }
    let mut results: Vec<Option<BatchOut<J>>> = Vec::with_capacity(batches.len());
    results.resize_with(batches.len(), || None);
    exec.scope(|s| {
        for ((w, slot), batch) in results.iter_mut().enumerate().zip(batches) {
            s.spawn_on(w, move || {
                let mut out = Vec::new();
                for tables in batch {
                    // Merge the workers' tables for this partition.
                    let mut merged: HashMap<J::K, Vec<J::V>> = HashMap::new();
                    for t in tables {
                        for (k, mut vs) in t {
                            merged.entry(k).or_default().append(&mut vs);
                        }
                    }
                    for (k, vs) in merged {
                        let o = job.reduce(&k, vs);
                        out.push((k, o));
                    }
                }
                *slot = Some(out);
            });
        }
    });

    // --- Final merge: sort by key ---------------------------------------
    let mut out: Vec<(J::K, J::Out)> = results
        .into_iter()
        .flat_map(|r| r.expect("reduce worker wrote its batch"))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop_place::{
        PlaceOpts,
        Policy, //
    };

    fn placement(n: usize) -> Placement {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let topo = mctop::infer(&mut p, &cfg).unwrap();
        Placement::new(&topo, Policy::RrCore, PlaceOpts::threads(n)).unwrap()
    }

    struct Counter;
    impl MapReduce for Counter {
        type Item = u32;
        type K = u32;
        type V = u32;
        type Out = u32;
        fn map(&self, item: &u32, emit: &mut dyn FnMut(u32, u32)) {
            emit(item % 10, 1);
        }
        fn reduce(&self, _k: &u32, values: Vec<u32>) -> u32 {
            values.into_iter().sum()
        }
    }

    #[test]
    fn counts_are_exact() {
        let items: Vec<u32> = (0..10_000).collect();
        let place = placement(4);
        let out = run_job(&Counter, &items, &place, &EngineCfg::default());
        assert_eq!(out.len(), 10);
        for (k, c) in out {
            assert_eq!(c, 1000, "key {k}");
        }
    }

    #[test]
    fn output_sorted_by_key() {
        let items: Vec<u32> = (0..977).rev().collect();
        let place = placement(3);
        let out = run_job(&Counter, &items, &place, &EngineCfg::default());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn single_worker_and_empty_input() {
        let place = placement(1);
        let out = run_job(&Counter, &[], &place, &EngineCfg::default());
        assert!(out.is_empty());
        let out = run_job(&Counter, &[5], &place, &EngineCfg::default());
        assert_eq!(out, vec![(5, 1)]);
    }

    #[test]
    fn persistent_executor_matches_transient_runs() {
        let items: Vec<u32> = (0..8000).collect();
        let place = placement(4);
        let reference = run_job(&Counter, &items, &place, &EngineCfg::default());
        let exec = Executor::from_placement(&place);
        for _ in 0..3 {
            let out = run_job_on(&exec, &Counter, &items, &EngineCfg::default());
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn partition_count_does_not_change_results() {
        let items: Vec<u32> = (0..5000).collect();
        let place = placement(4);
        let a = run_job(
            &Counter,
            &items,
            &place,
            &EngineCfg {
                partitions: Some(1),
            },
        );
        let b = run_job(
            &Counter,
            &items,
            &place,
            &EngineCfg {
                partitions: Some(64),
            },
        );
        assert_eq!(a, b);
    }
}
