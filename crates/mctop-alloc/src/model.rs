//! Policy-routed bandwidth math for the application cost models.
//!
//! `mctop-sort` and `mctop-mapred` used to hard-code the assumption
//! that every buffer lives on its thread's local node. These helpers
//! make the assumption explicit and policy-parametric: given the
//! *enriched* per-(socket, node) bandwidths and an [`AllocPolicy`],
//! they answer "how fast can this socket stream against arenas striped
//! this way?" — with [`AllocPolicy::Local`] reproducing the old local-
//! node math exactly.

use mctop::Mctop;

use crate::policy::{
    AllocError,
    AllocPolicy, //
};

/// Sequential-stream bandwidth (GB/s) a socket achieves against arenas
/// striped per `policy`, ignoring thread counts (controller/route
/// limits only).
///
/// The stripes are read in proportion, so time adds per route and the
/// effective bandwidth is the weighted harmonic mean of the per-route
/// bandwidths: `1 / Σ fᵢ / bw(socket, nodeᵢ)`. For
/// [`AllocPolicy::Local`] this degenerates to the socket's local
/// bandwidth.
pub fn socket_policy_bandwidth(
    topo: &Mctop,
    socket: usize,
    policy: &AllocPolicy,
) -> Result<f64, AllocError> {
    let weights = policy.socket_weights(topo, socket)?;
    let wsum: f64 = weights.iter().sum();
    let bws = &topo.sockets[socket].mem_bandwidths;
    let mut routes: Vec<(f64, f64)> = Vec::new();
    for (node, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        let bw = bws
            .get(node)
            .copied()
            .filter(|&b| b > 0.0)
            .ok_or(AllocError::BandwidthUnavailable { socket })?;
        routes.push((w / wsum, bw));
    }
    // A single route needs no harmonic combination — and returning the
    // measured value bit-exactly is what lets LOCAL reproduce the
    // legacy local-node cost models without a float round-trip.
    if let [(_, bw)] = routes.as_slice() {
        return Ok(*bw);
    }
    Ok(1.0 / routes.iter().map(|(f, bw)| f / bw).sum::<f64>())
}

/// Aggregate stream bandwidth (GB/s) the placed contexts can draw from
/// arenas resolved under `policy`: per used socket, its threads pull at
/// most `threads × single_core_bw`, capped by
/// [`socket_policy_bandwidth`]; sockets add up.
pub fn placement_stream_bandwidth(
    topo: &Mctop,
    hwcs: &[usize],
    policy: &AllocPolicy,
) -> Result<f64, AllocError> {
    let mut total = 0.0f64;
    for socket in topo.sockets_used_by(hwcs) {
        let threads = hwcs
            .iter()
            .filter(|&&h| topo.socket_of(h) == socket)
            .count() as f64;
        let one = topo.sockets[socket]
            .single_core_bw
            .ok_or(AllocError::BandwidthUnavailable { socket })?;
        let cap = socket_policy_bandwidth(topo, socket, policy)?;
        total += (threads * one).min(cap);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(name: &str) -> std::sync::Arc<Mctop> {
        mctop::Registry::shipped().topo(name).unwrap()
    }

    #[test]
    fn local_equals_local_bandwidth() {
        let t = topo("ivy");
        for s in 0..t.num_sockets() {
            let got = socket_policy_bandwidth(&t, s, &AllocPolicy::Local).unwrap();
            assert_eq!(got, t.sockets[s].local_bandwidth().unwrap());
        }
    }

    #[test]
    fn interleave_is_harmonic_mean_and_slower_than_local() {
        let t = topo("westmere");
        for s in 0..t.num_sockets() {
            let bws = &t.sockets[s].mem_bandwidths;
            let n = bws.len() as f64;
            let harmonic = n / bws.iter().map(|b| 1.0 / b).sum::<f64>();
            let got = socket_policy_bandwidth(&t, s, &AllocPolicy::Interleave).unwrap();
            assert!((got - harmonic).abs() < 1e-9);
            assert!(got <= t.sockets[s].local_bandwidth().unwrap());
        }
    }

    #[test]
    fn bw_proportional_is_arithmetic_mean() {
        // With fractions ∝ bwᵢ the harmonic sum telescopes:
        // 1 / Σ (bwᵢ/Σbw)/bwᵢ = Σbw / N.
        let t = topo("ivy");
        for s in 0..t.num_sockets() {
            let bws = &t.sockets[s].mem_bandwidths;
            let mean = bws.iter().sum::<f64>() / bws.len() as f64;
            let got = socket_policy_bandwidth(&t, s, &AllocPolicy::BwProportional).unwrap();
            assert!((got - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn placement_bandwidth_caps_per_socket() {
        let t = topo("ivy");
        // All 40 contexts: both sockets saturated at local bandwidth.
        let all: Vec<usize> = (0..t.num_hwcs()).collect();
        let got = placement_stream_bandwidth(&t, &all, &AllocPolicy::Local).unwrap();
        let want: f64 = (0..t.num_sockets())
            .map(|s| t.sockets[s].local_bandwidth().unwrap())
            .sum();
        assert!((got - want).abs() < 1e-9);
        // One thread: limited by the single-core stream bandwidth.
        let got = placement_stream_bandwidth(&t, &[0], &AllocPolicy::Local).unwrap();
        assert_eq!(got, t.sockets[t.socket_of(0)].single_core_bw.unwrap());
    }

    #[test]
    fn unenriched_topology_reports_missing_bandwidth() {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let t = mctop::infer(&mut p, &cfg).unwrap(); // Not enriched.
        assert!(matches!(
            socket_policy_bandwidth(&t, 0, &AllocPolicy::BwProportional),
            Err(AllocError::BandwidthUnavailable { socket: 0 })
        ));
    }
}
