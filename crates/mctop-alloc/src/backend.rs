//! The two realizations of an [`AllocPlan`]: modeled costs through the
//! simulator's memory oracle, and real first-touch buffers through a
//! pinned worker pool — whose `run_each` now dispatches to the
//! persistent `mctop-runtime` executor, so repeated provisioning
//! re-uses the same pinned workers instead of spawning scoped threads
//! per call.

use std::mem::MaybeUninit;

use mcsim::{
    MachineSpec,
    MemoryOracle, //
};
use mctop_runtime::WorkerPool;

use crate::plan::{
    AllocPlan,
    NodeStripe, //
};
use crate::policy::AllocError;

/// A backend turns a resolved [`AllocPlan`] into per-worker arenas —
/// modeled ones (costs) or host ones (bytes). One plan, two worlds;
/// policies stay comparable because both worlds read the same stripes.
pub trait MemoryBackend {
    /// What `provision` hands back, one per worker.
    type Arena;

    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Realizes the plan: one arena per plan worker, in worker order.
    fn provision(&mut self, plan: &AllocPlan) -> Result<Vec<Self::Arena>, AllocError>;
}

/// Modeled memory costs of one worker's arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeledArena {
    /// Dense worker index.
    pub worker: usize,
    /// The worker's hardware context.
    pub hwc: usize,
    /// The worker's socket (topology numbering).
    pub socket: usize,
    /// Stripe-weighted average load latency (cycles) of a pointer
    /// chase over the arena.
    pub latency_cycles: f64,
    /// This worker's share (GB/s) of its socket's streaming bandwidth
    /// against the arena's stripe mix.
    pub share_gbs: f64,
}

/// The modeled backend: charges every stripe through
/// [`mcsim::MemoryOracle`] (noiseless), so plans are deterministic and
/// policies comparable in CI without NUMA hardware.
#[derive(Debug)]
pub struct ModelBackend<'m> {
    spec: &'m MachineSpec,
    oracle: MemoryOracle<'m>,
}

impl<'m> ModelBackend<'m> {
    /// A noiseless modeled backend over a machine spec.
    pub fn new(spec: &'m MachineSpec) -> Self {
        ModelBackend {
            spec,
            oracle: MemoryOracle::noiseless(spec),
        }
    }

    /// Aggregate streaming bandwidth (GB/s) of the whole plan: the sum
    /// over sockets of what their placed workers extract together.
    pub fn plan_bandwidth(&mut self, plan: &AllocPlan) -> f64 {
        self.provision(plan)
            .map(|arenas| arenas.iter().map(|a| a.share_gbs).sum())
            .unwrap_or(0.0)
    }
}

impl MemoryBackend for ModelBackend<'_> {
    type Arena = ModeledArena;

    fn name(&self) -> &'static str {
        "model"
    }

    fn provision(&mut self, plan: &AllocPlan) -> Result<Vec<ModeledArena>, AllocError> {
        // Workers per *physical* socket: oracle queries use the spec's
        // socket numbering (via each context's physical location), not
        // the topology's inferred socket ids.
        let mut per_socket = vec![0usize; self.spec.sockets];
        for arena in &plan.arenas {
            per_socket[self.spec.loc(arena.hwc).socket] += 1;
        }
        let mut out = Vec::with_capacity(plan.arenas.len());
        for arena in &plan.arenas {
            let socket = self.spec.loc(arena.hwc).socket;
            let k = per_socket[socket].max(1);
            let total_pages: usize = arena.stripes.iter().map(|s| s.pages).sum();
            let mut latency = 0.0f64;
            let mut inv_bw = 0.0f64;
            for stripe in &arena.stripes {
                let frac = stripe.pages as f64 / total_pages.max(1) as f64;
                latency += frac
                    * self
                        .oracle
                        .chase_latency(socket, stripe.node, plan.bytes_per_worker);
                let route = self.oracle.stream_bandwidth(socket, stripe.node, k);
                inv_bw += frac / route;
            }
            let socket_bw = 1.0 / inv_bw;
            out.push(ModeledArena {
                worker: arena.worker,
                hwc: arena.hwc,
                socket: arena.socket,
                latency_cycles: latency,
                share_gbs: socket_bw / k as f64,
            });
        }
        Ok(out)
    }
}

/// A host arena: real bytes, first-touched according to the plan.
#[derive(Debug)]
pub struct HostArena {
    /// Dense worker index.
    pub worker: usize,
    /// The stripes backing this arena (offsets follow stripe order).
    pub stripes: Vec<NodeStripe>,
    buf: Vec<u8>,
}

impl HostArena {
    /// The arena bytes (zero-initialized by the first touch).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// The arena bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Arena length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the arena is empty (never for resolved plans).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// The host backend: provisions one real buffer per worker and has the
/// plan's designated *touch workers* — persistent executor workers
/// pinned where each stripe's memory node lives — zero-fill
/// (first-touch) their stripes via targeted (never stolen) tasks.
/// On a NUMA host with default first-touch page placement this backs
/// every stripe by its planned node without `mbind`/`libnuma`; on any
/// other host it degrades to plain allocation.
#[derive(Debug)]
pub struct HostBackend<'p> {
    pool: &'p WorkerPool,
}

impl<'p> HostBackend<'p> {
    /// A host backend over a pool built from the *same placement* the
    /// plan was resolved from (worker indices must agree).
    pub fn new(pool: &'p WorkerPool) -> Self {
        HostBackend { pool }
    }
}

impl MemoryBackend for HostBackend<'_> {
    type Arena = HostArena;

    fn name(&self) -> &'static str {
        "host"
    }

    fn provision(&mut self, plan: &AllocPlan) -> Result<Vec<HostArena>, AllocError> {
        let n = plan.arenas.len();
        if self.pool.len() != n {
            return Err(AllocError::PoolMismatch {
                pool: self.pool.len(),
                plan: n,
            });
        }
        let mut bufs: Vec<Vec<u8>> = (0..n)
            .map(|_| Vec::with_capacity(plan.bytes_per_worker))
            .collect();
        // Cut every arena's uninitialized capacity into its stripe
        // windows and hand each window to the worker that must touch
        // it. The windows are disjoint, so the workers write in
        // parallel without synchronization.
        let mut jobs: Vec<Vec<&mut [MaybeUninit<u8>]>> = (0..n).map(|_| Vec::new()).collect();
        for (arena, buf) in plan.arenas.iter().zip(bufs.iter_mut()) {
            let mut rest = &mut buf.spare_capacity_mut()[..plan.bytes_per_worker];
            for stripe in &arena.stripes {
                let (window, tail) = rest.split_at_mut(stripe.bytes);
                rest = tail;
                jobs[stripe.touch_worker].push(window);
            }
        }
        self.pool.run_each(jobs, |_ctx, windows| {
            for window in windows {
                // SAFETY: zero-filling the whole window initializes
                // every byte; this write is the first touch of each
                // page, performed on the planned node's socket.
                unsafe {
                    std::ptr::write_bytes(window.as_mut_ptr(), 0u8, window.len());
                }
            }
        });
        Ok(plan
            .arenas
            .iter()
            .zip(bufs)
            .map(|(arena, mut buf)| {
                // SAFETY: every byte of the first `bytes_per_worker`
                // capacity was zero-initialized by exactly one touch
                // window above.
                unsafe { buf.set_len(plan.bytes_per_worker) };
                HostArena {
                    worker: arena.worker,
                    stripes: arena.stripes.clone(),
                    buf,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AllocCfg;
    use crate::policy::AllocPolicy;
    use mctop_place::{
        PlaceOpts,
        Placement,
        Policy, //
    };
    use std::sync::Arc;

    fn setup(name: &str, threads: usize) -> (MachineSpec, Arc<mctop::TopoView>, Arc<Placement>) {
        let spec = mcsim::presets::by_name(name).unwrap();
        let view = mctop::Registry::shipped().view(name).unwrap();
        let place = Arc::new(
            Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(threads)).unwrap(),
        );
        (spec, view, place)
    }

    fn small_cfg() -> AllocCfg {
        AllocCfg {
            bytes_per_worker: 256 * 1024,
            page_size: 4096,
        }
    }

    #[test]
    fn model_backend_local_beats_interleave_on_latency() {
        let (spec, view, place) = setup("ivy", 8);
        let mut backend = ModelBackend::new(&spec);
        let cfg = AllocCfg::default();
        let local = AllocPlan::resolve(&view, &place, &AllocPolicy::Local, &cfg).unwrap();
        let inter = AllocPlan::resolve(&view, &place, &AllocPolicy::Interleave, &cfg).unwrap();
        let local_costs = backend.provision(&local).unwrap();
        let inter_costs = backend.provision(&inter).unwrap();
        for (l, i) in local_costs.iter().zip(&inter_costs) {
            assert!(
                l.latency_cycles < i.latency_cycles,
                "worker {}: local {} vs interleave {}",
                l.worker,
                l.latency_cycles,
                i.latency_cycles
            );
        }
    }

    #[test]
    fn model_backend_is_deterministic() {
        let (spec, view, place) = setup("westmere", 16);
        let plan = AllocPlan::resolve(
            &view,
            &place,
            &AllocPolicy::BwProportional,
            &AllocCfg::default(),
        )
        .unwrap();
        let a = ModelBackend::new(&spec).provision(&plan).unwrap();
        let b = ModelBackend::new(&spec).provision(&plan).unwrap();
        assert_eq!(a, b);
        assert!(ModelBackend::new(&spec).plan_bandwidth(&plan) > 0.0);
    }

    #[test]
    fn host_backend_provisions_zeroed_striped_buffers() {
        let (_, view, place) = setup("synth-small", 4);
        let pool = WorkerPool::new(Arc::clone(&place)).without_os_pinning();
        let plan =
            AllocPlan::resolve(&view, &place, &AllocPolicy::Interleave, &small_cfg()).unwrap();
        let arenas = HostBackend::new(&pool).provision(&plan).unwrap();
        assert_eq!(arenas.len(), 4);
        for (i, arena) in arenas.iter().enumerate() {
            assert_eq!(arena.worker, i);
            assert_eq!(arena.len(), plan.bytes_per_worker);
            assert!(!arena.is_empty());
            assert!(arena.as_slice().iter().all(|&b| b == 0));
            assert_eq!(arena.stripes, plan.arenas[i].stripes);
        }
    }

    #[test]
    fn host_arenas_are_usable_per_worker() {
        let (_, view, place) = setup("synth-small", 4);
        let pool = WorkerPool::new(Arc::clone(&place)).without_os_pinning();
        let plan = AllocPlan::resolve(&view, &place, &AllocPolicy::Local, &small_cfg()).unwrap();
        let arenas = HostBackend::new(&pool).provision(&plan).unwrap();
        // Workers fill their own arenas through `run_each`.
        let sums: Vec<u64> = pool
            .run_each(arenas, |ctx, mut arena| {
                for b in arena.as_mut_slice() {
                    *b = ctx.id as u8 + 1;
                }
                arena.as_slice().iter().map(|&b| u64::from(b)).sum()
            })
            .into_iter()
            .collect();
        for (i, sum) in sums.iter().enumerate() {
            assert_eq!(*sum, (i as u64 + 1) * small_cfg().bytes_per_worker as u64);
        }
    }

    #[test]
    fn host_backend_rejects_mismatched_pool() {
        let (_, view, place) = setup("synth-small", 4);
        let pool = WorkerPool::with_workers(Arc::clone(&place), 2).without_os_pinning();
        let plan = AllocPlan::resolve(&view, &place, &AllocPolicy::Local, &small_cfg()).unwrap();
        assert_eq!(
            HostBackend::new(&pool).provision(&plan).err(),
            Some(AllocError::PoolMismatch { pool: 2, plan: 4 })
        );
    }
}
