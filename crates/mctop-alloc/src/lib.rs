//! # mctop-alloc — topology-aware memory placement
//!
//! The memory half of `mctop_alloc` (Sections 4–5 of the MCTOP paper):
//! where [`mctop_place`] decides *which hardware contexts run the
//! threads*, this crate decides *which NUMA nodes back their memory*.
//! An [`AllocPolicy`] plus a [`mctop_place::Placement`] resolve — over
//! the enriched topology behind an [`mctop::TopoView`] — into an
//! [`AllocPlan`]: one arena per worker, each arena striped over memory
//! nodes at page granularity, plus the per-socket bandwidth-saturation
//! thread counts that the RR_SCALE-style policies need.
//!
//! Two backends realize a plan behind the one [`MemoryBackend`] trait:
//!
//! - [`ModelBackend`] charges the plan's costs through
//!   [`mcsim::MemoryOracle`] — deterministic, noiseless, comparable
//!   across policies, which is what CI and the `BENCH_alloc.json`
//!   harness use;
//! - [`HostBackend`] provisions real buffers on the machine running the
//!   process: each stripe is zero-initialized (*first-touched*) by a
//!   pinned [`mctop_runtime::WorkerPool`] worker sitting on the
//!   stripe's node, so on a NUMA host with first-touch page placement
//!   the pages land on the planned nodes without `mbind`.
//!
//! # Example
//!
//! Resolve a bandwidth-proportional plan for eight workers on the
//! paper's Ivy Bridge machine and inspect the stripes:
//!
//! ```
//! use mctop_alloc::{AllocCfg, AllocPlan, AllocPolicy};
//! use mctop_place::{PlaceOpts, Placement, Policy};
//!
//! let reg = mctop::Registry::shipped();
//! let view = reg.view("ivy").unwrap();
//! let place = Placement::with_view(&view, Policy::RrCore, PlaceOpts::threads(8)).unwrap();
//!
//! let plan = AllocPlan::resolve(
//!     &view,
//!     &place,
//!     &AllocPolicy::BwProportional,
//!     &AllocCfg::default(),
//! )
//! .unwrap();
//! assert_eq!(plan.arenas.len(), 8);
//! // Every worker's arena is striped over both of Ivy's nodes, more
//! // bytes on the faster (local) route.
//! for arena in &plan.arenas {
//!     assert_eq!(arena.stripes.len(), 2);
//! }
//! ```

#![deny(missing_docs)]

pub mod backend;
pub mod model;
pub mod plan;
pub mod policy;

pub use backend::{
    HostArena,
    HostBackend,
    MemoryBackend,
    ModelBackend,
    ModeledArena, //
};
pub use plan::{
    AllocCfg,
    AllocPlan,
    NodeStripe,
    SocketSaturation,
    WorkerArena, //
};
pub use policy::{
    AllocError,
    AllocPolicy, //
};
