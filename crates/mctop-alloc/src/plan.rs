//! Plan resolution: policy × placement × enriched topology → one
//! page-striped arena per worker.

use mctop::view::TopoView;
use mctop_place::Placement;

use crate::policy::{
    AllocError,
    AllocPolicy, //
};

/// Sizing knobs for plan resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCfg {
    /// Arena bytes per worker (rounded up to whole pages).
    pub bytes_per_worker: usize,
    /// Page size used for stripe granularity.
    pub page_size: usize,
}

impl Default for AllocCfg {
    /// 64 MiB arenas of 4 KiB pages: far past every modelled LLC, so
    /// modeled costs are memory costs, and fine-grained enough that
    /// page rounding distorts stripe ratios by well under 1%.
    fn default() -> Self {
        AllocCfg {
            bytes_per_worker: 64 * 1024 * 1024,
            page_size: 4096,
        }
    }
}

/// A contiguous run of pages of one arena backed by one memory node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStripe {
    /// Backing memory node.
    pub node: usize,
    /// Whole pages in this stripe.
    pub pages: usize,
    /// Bytes in this stripe (`pages * page_size`).
    pub bytes: usize,
    /// The worker (dense placement index) that must first-touch this
    /// stripe so first-touch page placement lands it on `node`: the
    /// first placed worker whose socket is local to the node, falling
    /// back to the arena's owner when no placed worker sits there.
    pub touch_worker: usize,
}

/// One worker's resolved memory arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerArena {
    /// Dense worker index (placement slot).
    pub worker: usize,
    /// The worker's hardware context.
    pub hwc: usize,
    /// The worker's socket.
    pub socket: usize,
    /// Node stripes, ascending node id; bytes sum to the plan's
    /// (page-rounded) arena size. Zero-page stripes are omitted.
    pub stripes: Vec<NodeStripe>,
}

/// Bandwidth-saturation thread count of one socket, from the enriched
/// description: how many streaming threads saturate the socket's local
/// memory controller (`ceil(local_bw / single_core_bw)`, the RR_SCALE
/// input of Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketSaturation {
    /// Socket id.
    pub socket: usize,
    /// Its local node, if known.
    pub local_node: Option<usize>,
    /// Streaming threads needed to saturate the local controller
    /// (`None` when the topology lacks bandwidth measurements).
    pub threads: Option<usize>,
}

/// A fully-resolved memory plan: per-worker arenas plus plan-level
/// saturation data. Resolution is deterministic — the same view,
/// placement, policy and config always produce the identical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocPlan {
    /// The policy that produced the plan.
    pub policy: AllocPolicy,
    /// Machine name of the topology.
    pub machine: String,
    /// Arena bytes per worker, rounded up to whole pages.
    pub bytes_per_worker: usize,
    /// Page size of the stripes.
    pub page_size: usize,
    /// Memory nodes of the machine (totals always cover all of them).
    pub nodes: usize,
    /// One arena per placement slot, in placement order.
    pub arenas: Vec<WorkerArena>,
    /// Saturation thread counts for every socket of the machine.
    pub saturation: Vec<SocketSaturation>,
}

impl AllocPlan {
    /// Resolves a plan for every worker of `placement` over the
    /// enriched topology behind `view`.
    pub fn resolve(
        view: &TopoView,
        placement: &Placement,
        policy: &AllocPolicy,
        cfg: &AllocCfg,
    ) -> Result<AllocPlan, AllocError> {
        if cfg.bytes_per_worker == 0 || cfg.page_size == 0 {
            return Err(AllocError::ZeroArena);
        }
        let pages = cfg.bytes_per_worker.div_ceil(cfg.page_size);
        let bytes_per_worker = pages * cfg.page_size;
        let order = placement.order();

        // First placed worker on each node, for first-touch delegation.
        let mut first_on_node: Vec<Option<usize>> = vec![None; view.num_nodes()];
        for (w, &hwc) in order.iter().enumerate() {
            if let Some(node) = view.node_of(hwc) {
                first_on_node[node].get_or_insert(w);
            }
        }

        let mut arenas = Vec::with_capacity(order.len());
        for (worker, &hwc) in order.iter().enumerate() {
            let socket = view.socket_of(hwc);
            let weights = policy.socket_weights(view, socket)?;
            let per_node = apportion(pages, &weights);
            let stripes: Vec<NodeStripe> = per_node
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p > 0)
                .map(|(node, &p)| NodeStripe {
                    node,
                    pages: p,
                    bytes: p * cfg.page_size,
                    touch_worker: first_on_node[node].unwrap_or(worker),
                })
                .collect();
            arenas.push(WorkerArena {
                worker,
                hwc,
                socket,
                stripes,
            });
        }

        let saturation = (0..view.num_sockets())
            .map(|s| SocketSaturation {
                socket: s,
                local_node: view.sockets[s].local_node,
                threads: saturation_threads(view, s),
            })
            .collect();

        let plan = AllocPlan {
            policy: policy.clone(),
            machine: view.name.clone(),
            bytes_per_worker,
            page_size: cfg.page_size,
            nodes: view.num_nodes(),
            arenas,
            saturation,
        };
        // Observability: every resolved plan lands in the process-global
        // runtime counters (see `mctop_runtime::metrics`).
        let pages_per_node: Vec<u64> = plan
            .node_totals()
            .iter()
            .map(|&(_, pages, _)| pages as u64)
            .collect();
        mctop_runtime::metrics::global()
            .record_alloc_plan(plan.arenas.len() as u64, &pages_per_node);
        Ok(plan)
    }

    /// Total pages and bytes per arena stripe on every node of the
    /// machine, ascending node id (nodes with zero pages included).
    pub fn node_totals(&self) -> Vec<(usize, usize, usize)> {
        let mut pages = vec![0usize; self.nodes];
        for arena in &self.arenas {
            for stripe in &arena.stripes {
                pages[stripe.node] += stripe.pages;
            }
        }
        pages
            .iter()
            .enumerate()
            .map(|(node, &p)| (node, p, p * self.page_size))
            .collect()
    }

    /// The `mctop_alloc` statistics block (the memory-side sibling of
    /// the Fig. 7 placement printout). Deterministic; golden-tested
    /// through `mct query alloc-plan`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## MCTOP Alloc : {} on {}", self.policy, self.machine);
        let _ = writeln!(
            out,
            "# Workers          : {} x {} KiB arenas ({} pages of {} B)",
            self.arenas.len(),
            self.bytes_per_worker / 1024,
            self.bytes_per_worker / self.page_size,
            self.page_size
        );
        let sat: Vec<String> = self
            .saturation
            .iter()
            .map(|s| {
                let threads = s.threads.map_or_else(|| "?".to_string(), |t| t.to_string());
                format!("s{}: {threads}", s.socket)
            })
            .collect();
        let _ = writeln!(out, "# Saturation thr.  : {}", sat.join("  "));
        for arena in &self.arenas {
            let stripes: Vec<String> = arena
                .stripes
                .iter()
                .map(|s| format!("n{}: {:>6}p (touch w{})", s.node, s.pages, s.touch_worker))
                .collect();
            let _ = writeln!(
                out,
                "# worker {:>3} hwc {:>3} socket {:>2} : {}",
                arena.worker,
                arena.hwc,
                arena.socket,
                stripes.join("  ")
            );
        }
        let totals: Vec<String> = self
            .node_totals()
            .iter()
            .map(|&(node, pages, bytes)| format!("n{node}: {pages}p ({} KiB)", bytes / 1024))
            .collect();
        let _ = writeln!(out, "# Node totals      : {}", totals.join("  "));
        out
    }
}

/// Streaming threads needed to saturate a socket's local memory
/// controller, from the enriched measurements (`None` when the
/// bandwidth plugin has not run). Thin front for
/// [`mctop::model::Socket::threads_to_saturate`] — the one shared
/// definition of the RR_SCALE saturation arithmetic.
pub fn saturation_threads(topo: &mctop::Mctop, socket: usize) -> Option<usize> {
    topo.sockets[socket].threads_to_saturate()
}

/// Largest-remainder apportionment of `total` whole pages over
/// non-negative weights (ties broken toward lower node ids), so stripe
/// ratios track the weights as closely as whole pages allow.
fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || weights.is_empty() {
        return vec![0; weights.len()];
    }
    let mut out = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let quota = total as f64 * w / sum;
        let base = quota.floor() as usize;
        out.push(base);
        assigned += base;
        remainders.push((i, quota - base as f64));
    }
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("remainders are finite")
            .then(a.0.cmp(&b.0))
    });
    for &(i, _) in remainders.iter().take(total - assigned) {
        out[i] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop_place::{
        PlaceOpts,
        Policy, //
    };

    fn view(name: &str) -> std::sync::Arc<TopoView> {
        mctop::Registry::shipped().view(name).unwrap()
    }

    fn place(view: &TopoView, n: usize) -> Placement {
        Placement::with_view(view, Policy::RrCore, PlaceOpts::threads(n)).unwrap()
    }

    #[test]
    fn apportion_is_exact_and_fair() {
        assert_eq!(apportion(10, &[1.0, 1.0]), vec![5, 5]);
        assert_eq!(apportion(10, &[3.0, 1.0]), vec![8, 2]);
        // Remainders: 3.33/3.33/3.33 -> ties toward lower ids.
        assert_eq!(apportion(10, &[1.0, 1.0, 1.0]), vec![4, 3, 3]);
        assert_eq!(apportion(0, &[1.0, 2.0]), vec![0, 0]);
        let parts = apportion(16384, &[24.3, 14.2]);
        assert_eq!(parts.iter().sum::<usize>(), 16384);
    }

    #[test]
    fn local_plan_is_single_stripe_on_local_node() {
        let v = view("ivy");
        let p = place(&v, 8);
        let plan = AllocPlan::resolve(&v, &p, &AllocPolicy::Local, &AllocCfg::default()).unwrap();
        assert_eq!(plan.arenas.len(), 8);
        for arena in &plan.arenas {
            assert_eq!(arena.stripes.len(), 1);
            let stripe = &arena.stripes[0];
            assert_eq!(Some(stripe.node), v.node_of(arena.hwc));
            assert_eq!(stripe.bytes, plan.bytes_per_worker);
            // Local stripes are first-touched by a worker on the node —
            // which the owner itself is.
            assert_eq!(v.node_of(p.order()[stripe.touch_worker]), Some(stripe.node));
        }
    }

    #[test]
    fn interleave_splits_evenly() {
        let v = view("westmere");
        let p = place(&v, 16);
        let plan =
            AllocPlan::resolve(&v, &p, &AllocPolicy::Interleave, &AllocCfg::default()).unwrap();
        let pages = plan.bytes_per_worker / plan.page_size;
        for arena in &plan.arenas {
            assert_eq!(arena.stripes.len(), 8);
            let total: usize = arena.stripes.iter().map(|s| s.pages).sum();
            assert_eq!(total, pages);
            for s in &arena.stripes {
                assert!(s.pages.abs_diff(pages / 8) <= 1);
            }
        }
    }

    #[test]
    fn bw_proportional_tracks_measured_ratios() {
        let v = view("ivy");
        let p = place(&v, 4);
        let plan =
            AllocPlan::resolve(&v, &p, &AllocPolicy::BwProportional, &AllocCfg::default()).unwrap();
        for arena in &plan.arenas {
            let bws = &v.sockets[arena.socket].mem_bandwidths;
            let wsum: f64 = bws.iter().sum();
            let psum: f64 = arena.stripes.iter().map(|s| s.pages as f64).sum();
            for stripe in &arena.stripes {
                let got = stripe.pages as f64 / psum;
                let want = bws[stripe.node] / wsum;
                assert!(
                    (got - want).abs() < 0.01,
                    "node {}: {got} vs {want}",
                    stripe.node
                );
            }
        }
    }

    #[test]
    fn on_nodes_restricts_and_validates() {
        let v = view("westmere");
        let p = place(&v, 4);
        let plan = AllocPlan::resolve(
            &v,
            &p,
            &AllocPolicy::OnNodes(vec![2, 5]),
            &AllocCfg::default(),
        )
        .unwrap();
        for arena in &plan.arenas {
            let nodes: Vec<usize> = arena.stripes.iter().map(|s| s.node).collect();
            assert_eq!(nodes, vec![2, 5]);
        }
        assert_eq!(
            AllocPlan::resolve(&v, &p, &AllocPolicy::OnNodes(vec![]), &AllocCfg::default()),
            Err(AllocError::EmptyNodeSet)
        );
        assert_eq!(
            AllocPlan::resolve(
                &v,
                &p,
                &AllocPolicy::OnNodes(vec![99]),
                &AllocCfg::default()
            ),
            Err(AllocError::NodeOutOfRange { node: 99, nodes: 8 })
        );
    }

    #[test]
    fn remote_stripes_are_touched_by_remote_workers() {
        let v = view("ivy");
        // RR over both sockets: every node has a placed worker.
        let p = place(&v, 8);
        let plan =
            AllocPlan::resolve(&v, &p, &AllocPolicy::Interleave, &AllocCfg::default()).unwrap();
        for arena in &plan.arenas {
            for stripe in &arena.stripes {
                let toucher_hwc = p.order()[stripe.touch_worker];
                assert_eq!(v.node_of(toucher_hwc), Some(stripe.node));
            }
        }
    }

    #[test]
    fn saturation_counts_match_rr_scale_math() {
        // Ivy: 24.3 GB/s local / 6.1 GB/s per core -> 4 threads.
        let v = view("ivy");
        let p = place(&v, 2);
        let plan = AllocPlan::resolve(&v, &p, &AllocPolicy::Local, &AllocCfg::default()).unwrap();
        assert_eq!(plan.saturation.len(), 2);
        for s in &plan.saturation {
            assert_eq!(s.threads, Some(4));
        }
    }

    #[test]
    fn odd_sizes_round_up_to_pages() {
        let v = view("synth-small");
        let p = place(&v, 2);
        let cfg = AllocCfg {
            bytes_per_worker: 10_000,
            page_size: 4096,
        };
        let plan = AllocPlan::resolve(&v, &p, &AllocPolicy::Local, &cfg).unwrap();
        assert_eq!(plan.bytes_per_worker, 3 * 4096);
        assert_eq!(
            AllocPlan::resolve(
                &v,
                &p,
                &AllocPolicy::Local,
                &AllocCfg {
                    bytes_per_worker: 0,
                    page_size: 4096
                }
            ),
            Err(AllocError::ZeroArena)
        );
    }

    #[test]
    fn render_is_stable_and_complete() {
        let v = view("synth-small");
        let p = place(&v, 4);
        let plan =
            AllocPlan::resolve(&v, &p, &AllocPolicy::BwProportional, &AllocCfg::default()).unwrap();
        let a = plan.render();
        let b = plan.render();
        assert_eq!(a, b);
        assert!(a.contains("BW_PROPORTIONAL on synth-small"));
        assert!(a.contains("# worker   0"));
        assert!(a.contains("# Node totals"));
    }
}
