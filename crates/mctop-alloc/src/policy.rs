//! Allocation policies and their node-weight semantics.

use mctop::Mctop;

/// How a worker's arena is spread over the machine's memory nodes.
///
/// Policies are resolved per worker, from the point of view of the
/// socket the worker is placed on; the weights come from the enriched
/// topology (the Section 4 memory plugins), never from per-platform
/// constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Everything on the worker's local node (the default first-touch
    /// behaviour of a well-behaved OS, made explicit).
    Local,
    /// Pages spread evenly over every node of the machine (what
    /// `numactl --interleave=all` gives): maximum aggregate bandwidth
    /// for shared read-mostly data, at the cost of average latency.
    Interleave,
    /// Pages spread proportionally to the worker socket's measured
    /// bandwidth to each node — more bytes where the socket can stream
    /// faster, approaching every controller's saturation point
    /// together.
    BwProportional,
    /// Pages spread evenly over an explicit node set (application-
    /// managed partitioning).
    OnNodes(Vec<usize>),
}

impl AllocPolicy {
    /// Policy name, styled like the placement policy names of Table 2.
    pub fn name(&self) -> &'static str {
        match self {
            AllocPolicy::Local => "LOCAL",
            AllocPolicy::Interleave => "INTERLEAVE",
            AllocPolicy::BwProportional => "BW_PROPORTIONAL",
            AllocPolicy::OnNodes(_) => "ON_NODES",
        }
    }

    /// Per-node stripe weights for a worker placed on `socket`.
    ///
    /// The returned vector has one non-negative entry per memory node
    /// and a strictly positive sum; [`crate::plan`] turns it into whole
    /// pages with largest-remainder apportionment.
    pub fn socket_weights(&self, topo: &Mctop, socket: usize) -> Result<Vec<f64>, AllocError> {
        let n_nodes = topo.num_nodes();
        match self {
            AllocPolicy::Local => {
                let node = topo.sockets[socket]
                    .local_node
                    .ok_or(AllocError::NodeUnknown { socket })?;
                let mut w = vec![0.0; n_nodes];
                w[node] = 1.0;
                Ok(w)
            }
            AllocPolicy::Interleave => Ok(vec![1.0; n_nodes]),
            AllocPolicy::BwProportional => {
                let bws = &topo.sockets[socket].mem_bandwidths;
                if bws.len() != n_nodes || bws.iter().any(|&b| !b.is_finite() || b <= 0.0) {
                    return Err(AllocError::BandwidthUnavailable { socket });
                }
                Ok(bws.clone())
            }
            AllocPolicy::OnNodes(nodes) => {
                if nodes.is_empty() {
                    return Err(AllocError::EmptyNodeSet);
                }
                let mut w = vec![0.0; n_nodes];
                for &node in nodes {
                    if node >= n_nodes {
                        return Err(AllocError::NodeOutOfRange {
                            node,
                            nodes: n_nodes,
                        });
                    }
                    w[node] = 1.0;
                }
                Ok(w)
            }
        }
    }
}

impl std::fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocPolicy::OnNodes(nodes) => {
                let list: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
                write!(f, "ON_NODES({})", list.join(","))
            }
            other => f.write_str(other.name()),
        }
    }
}

impl std::str::FromStr for AllocPolicy {
    type Err = String;

    /// Parses the CLI spellings: `local`, `interleave`, `bw` (or
    /// `bw-proportional`), and `on-nodes:0,2`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "local" => Ok(AllocPolicy::Local),
            "interleave" => Ok(AllocPolicy::Interleave),
            "bw" | "bw-proportional" => Ok(AllocPolicy::BwProportional),
            _ => {
                if let Some(list) = s.strip_prefix("on-nodes:") {
                    let nodes: Result<Vec<usize>, _> =
                        list.split(',').map(|p| p.trim().parse()).collect();
                    return match nodes {
                        Ok(nodes) if !nodes.is_empty() => Ok(AllocPolicy::OnNodes(nodes)),
                        _ => Err(format!("invalid node list `{list}`")),
                    };
                }
                Err(format!(
                    "unknown allocation policy `{s}` \
                     (local, interleave, bw, on-nodes:<ids>)"
                ))
            }
        }
    }
}

/// Why a plan could not be resolved or provisioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The socket's local memory node is unknown (topology not enriched
    /// by the memory-latency plugin).
    NodeUnknown {
        /// Socket whose local node is missing.
        socket: usize,
    },
    /// The socket has no (or non-positive) per-node bandwidth
    /// measurements (topology not enriched by the bandwidth plugin).
    BandwidthUnavailable {
        /// Socket whose bandwidths are missing.
        socket: usize,
    },
    /// `OnNodes` was given an empty node set.
    EmptyNodeSet,
    /// `OnNodes` named a node the machine does not have.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// How many nodes the machine has.
        nodes: usize,
    },
    /// A zero-byte arena was requested.
    ZeroArena,
    /// The worker pool and the plan disagree on the worker count.
    PoolMismatch {
        /// Workers in the pool.
        pool: usize,
        /// Arenas in the plan.
        plan: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NodeUnknown { socket } => {
                write!(f, "socket {socket} has no known local node (not enriched)")
            }
            AllocError::BandwidthUnavailable { socket } => {
                write!(f, "socket {socket} has no per-node bandwidth measurements")
            }
            AllocError::EmptyNodeSet => f.write_str("ON_NODES requires at least one node"),
            AllocError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (machine has {nodes})")
            }
            AllocError::ZeroArena => f.write_str("arena size must be at least one byte"),
            AllocError::PoolMismatch { pool, plan } => {
                write!(f, "pool has {pool} workers but the plan has {plan} arenas")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!("local".parse::<AllocPolicy>().unwrap(), AllocPolicy::Local);
        assert_eq!(
            "interleave".parse::<AllocPolicy>().unwrap(),
            AllocPolicy::Interleave
        );
        assert_eq!(
            "bw".parse::<AllocPolicy>().unwrap(),
            AllocPolicy::BwProportional
        );
        assert_eq!(
            "bw-proportional".parse::<AllocPolicy>().unwrap(),
            AllocPolicy::BwProportional
        );
        assert_eq!(
            "on-nodes:0,2".parse::<AllocPolicy>().unwrap(),
            AllocPolicy::OnNodes(vec![0, 2])
        );
        assert!("on-nodes:".parse::<AllocPolicy>().is_err());
        assert!("numa".parse::<AllocPolicy>().is_err());
    }

    #[test]
    fn display_matches_table_style() {
        assert_eq!(AllocPolicy::Local.to_string(), "LOCAL");
        assert_eq!(
            AllocPolicy::OnNodes(vec![1, 3]).to_string(),
            "ON_NODES(1,3)"
        );
    }
}
