//! Machine specifications: the ground truth that the MCTOP-ALG
//! reproduction must rediscover from latency measurements alone.

use serde::{
    Deserialize,
    Serialize, //
};

use crate::interconnect::Interconnect;

/// Physical location of a hardware context within the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Socket index (0-based).
    pub socket: usize,
    /// Core index within the socket.
    pub core_in_socket: usize,
    /// SMT context index within the core (0 for the first context).
    pub smt: usize,
    /// Global core index (`socket * cores_per_socket + core_in_socket`).
    pub core: usize,
}

/// How the "operating system" numbers hardware contexts.
///
/// MCTOP-ALG must not assume any particular numbering, so the simulator
/// supports the two real-world schemes plus a deterministic scramble used
/// by robustness tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Numbering {
    /// Linux/x86 style: all first SMT contexts of every core (across all
    /// sockets) are numbered first, then the second contexts, and so on.
    /// On the paper's Ivy machine contexts 0 and 20 share a core.
    CoresFirst,
    /// Solaris/SPARC style: contexts of socket 0 first (core-major), then
    /// socket 1, and so on. On the paper's SPARC machine contexts 0-7
    /// share a core and 0-63 share a socket.
    SocketMajor,
    /// BIOS-interleaved: consecutive context ids alternate between
    /// sockets (first contexts of all cores round-robin across sockets,
    /// then the SMT siblings). The paper's 8-socket Westmere shows this
    /// kind of scattered numbering (Fig. 2a) — it is why "sequential"
    /// OS pinning lands threads all over the machine.
    SocketInterleaved,
    /// A deterministic pseudo-random permutation of `SocketMajor` derived
    /// from the seed. No real OS does this; inference must still work.
    Scrambled(u64),
}

/// One level of the data-cache hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Human name ("L1", "L2", "LLC").
    pub name: String,
    /// Capacity in bytes (per sharing domain).
    pub size: usize,
    /// Load-to-use latency in cycles.
    pub latency: u32,
    /// How many cores share one instance of this level.
    pub shared_by_cores: usize,
}

/// An intra-socket latency level: groups of `group_cores` cores whose
/// contexts communicate with `latency` cycles.
///
/// Most machines have a single level (core-to-core over the LLC); some
/// have intermediate levels, e.g. core pairs sharing an L2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntraLevel {
    /// Cores per group at this level. The last level must equal
    /// `cores_per_socket`.
    pub group_cores: usize,
    /// Hardware-context-to-hardware-context latency at this level, in
    /// cycles.
    pub latency: u32,
}

/// NUMA memory characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    /// Capacity of one memory node in GB.
    pub node_capacity_gb: f64,
    /// Load latency from a socket to its local node, in cycles.
    pub local_latency: u32,
    /// Extra latency per interconnect hop for remote accesses.
    pub hop_penalty: u32,
    /// Sequential read bandwidth from a socket to its local node, GB/s.
    pub local_bandwidth: f64,
    /// Bandwidth cap for one-hop remote accesses (interconnect bound).
    pub remote_bandwidth: f64,
    /// Bandwidth a single core can extract with sequential streams
    /// (used by the RR_SCALE placement policy).
    pub per_core_stream_bw: f64,
}

/// Parameters of the RAPL-like power model.
///
/// Calibrated against the wattages of Fig. 7 of the paper: the second
/// SMT context of a core is much cheaper to power than a fresh core, and
/// DRAM power is charged per active socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Idle (package) power of one socket, W.
    pub socket_base_w: f64,
    /// Extra power for the first active context of a core, W.
    pub core_w: f64,
    /// Extra power for each additional SMT context of an active core, W.
    pub smt_w: f64,
    /// DRAM power of one active socket under memory load, W.
    pub dram_w: f64,
    /// Whether the platform exposes RAPL-like counters (Intel only in the
    /// paper; the POWER placement policy needs this).
    pub has_rapl: bool,
}

/// Full description of a simulated machine. Fields are public: presets
/// construct these literally and tests tweak them freely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Short name ("ivy", "westmere", ...).
    pub name: String,
    /// Nominal core frequency in GHz (converts cycles to seconds).
    pub freq_ghz: f64,
    /// Number of sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Hardware contexts per core (1 = no SMT).
    pub smt_per_core: usize,
    /// Number of memory nodes (usually equals `sockets`; can be fewer,
    /// cf. footnote 2 of the paper).
    pub nodes: usize,
    /// Latency between two SMT contexts of the same core, cycles.
    /// Ignored when `smt_per_core == 1`.
    pub smt_latency: u32,
    /// Intra-socket levels from innermost to socket level.
    pub intra_levels: Vec<IntraLevel>,
    /// Socket-to-socket interconnect.
    pub interconnect: Interconnect,
    /// Data-cache hierarchy, innermost first.
    pub caches: Vec<CacheLevel>,
    /// NUMA memory model.
    pub mem: MemSpec,
    /// Power model.
    pub power: PowerSpec,
    /// Context numbering scheme.
    pub numbering: Numbering,
    /// True socket -> local memory node mapping.
    pub local_node_of_socket: Vec<usize>,
    /// Socket -> node mapping *as reported by the OS*. On the paper's
    /// Opteron this is wrong (footnote 1); the preset reproduces that.
    pub os_node_of_socket: Vec<usize>,
}

impl MachineSpec {
    /// Total number of hardware contexts.
    pub fn total_hwcs(&self) -> usize {
        self.sockets * self.cores_per_socket * self.smt_per_core
    }

    /// Total number of physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Whether the machine has SMT.
    pub fn has_smt(&self) -> bool {
        self.smt_per_core > 1
    }

    /// Decodes an OS context id into its physical location.
    ///
    /// # Panics
    ///
    /// Panics if `hwc >= total_hwcs()`.
    pub fn loc(&self, hwc: usize) -> Loc {
        assert!(hwc < self.total_hwcs(), "hwc {hwc} out of range");
        let canonical = match self.numbering {
            Numbering::CoresFirst => {
                let cores = self.total_cores();
                let smt = hwc / cores;
                let core = hwc % cores;
                (core, smt)
            }
            Numbering::SocketMajor => (hwc / self.smt_per_core, hwc % self.smt_per_core),
            Numbering::SocketInterleaved => {
                let cores = self.total_cores();
                let smt = hwc / cores;
                let slot = hwc % cores;
                // Slot s -> socket s % S, core_in_socket s / S.
                let socket = slot % self.sockets;
                let core_in_socket = slot / self.sockets;
                (socket * self.cores_per_socket + core_in_socket, smt)
            }
            Numbering::Scrambled(seed) => {
                let unscrambled = self.unscramble(hwc, seed);
                (
                    unscrambled / self.smt_per_core,
                    unscrambled % self.smt_per_core,
                )
            }
        };
        let (core, smt) = canonical;
        Loc {
            socket: core / self.cores_per_socket,
            core_in_socket: core % self.cores_per_socket,
            smt,
            core,
        }
    }

    /// Encodes a physical location into the OS context id (inverse of
    /// [`MachineSpec::loc`]).
    pub fn hwc_of(&self, core: usize, smt: usize) -> usize {
        assert!(core < self.total_cores() && smt < self.smt_per_core);
        match self.numbering {
            Numbering::CoresFirst => smt * self.total_cores() + core,
            Numbering::SocketMajor => core * self.smt_per_core + smt,
            Numbering::SocketInterleaved => {
                let socket = core / self.cores_per_socket;
                let core_in_socket = core % self.cores_per_socket;
                smt * self.total_cores() + core_in_socket * self.sockets + socket
            }
            Numbering::Scrambled(seed) => {
                let canonical = core * self.smt_per_core + smt;
                self.scramble(canonical, seed)
            }
        }
    }

    /// The deterministic permutation used by `Numbering::Scrambled`:
    /// a seeded Fisher-Yates shuffle of the identity, computed lazily.
    fn permutation(&self, seed: u64) -> Vec<usize> {
        let n = self.total_hwcs();
        let mut perm: Vec<usize> = (0..n).collect();
        // An xorshift generator is enough here; the permutation only
        // needs to be deterministic and seed-dependent.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    fn scramble(&self, canonical: usize, seed: u64) -> usize {
        self.permutation(seed)[canonical]
    }

    fn unscramble(&self, hwc: usize, seed: u64) -> usize {
        let perm = self.permutation(seed);
        perm.iter()
            .position(|&p| p == hwc)
            .expect("permutation is a bijection")
    }

    /// The true (noise-free) context-to-context communication latency in
    /// cycles: the cost of the RFO coherence walk of Fig. 4 of the paper.
    ///
    /// Returns 0 for `a == b`.
    pub fn true_latency(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        let la = self.loc(a);
        let lb = self.loc(b);
        if la.core == lb.core {
            return self.smt_latency;
        }
        if la.socket == lb.socket {
            // Find the innermost intra-socket level containing both cores.
            for level in &self.intra_levels {
                if la.core_in_socket / level.group_cores == lb.core_in_socket / level.group_cores {
                    return level.latency;
                }
            }
            // The last intra level must span the socket; reaching here is
            // a malformed spec.
            panic!("intra_levels of {} do not cover the socket", self.name);
        }
        self.interconnect.latency(la.socket, lb.socket)
    }

    /// The socket-level latency (context-to-context across sockets).
    pub fn cross_latency(&self, sa: usize, sb: usize) -> u32 {
        self.interconnect.latency(sa, sb)
    }

    /// Memory load latency from `socket` to `node`, cycles: local
    /// latency plus a per-hop penalty to the *nearest* socket attached
    /// to the node (a node can be shared by several sockets).
    pub fn mem_latency(&self, socket: usize, node: usize) -> u32 {
        let hops = self.hops_to_node(socket, node);
        self.mem.local_latency + hops as u32 * self.mem.hop_penalty
    }

    /// Interconnect hops from a socket to the nearest socket attached to
    /// `node` (0 when the socket itself is attached).
    pub fn hops_to_node(&self, socket: usize, node: usize) -> usize {
        self.local_node_of_socket
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == node)
            .map(|(s, _)| self.interconnect.hops(socket, s))
            .min()
            .unwrap_or_else(|| panic!("node {node} not owned by any socket"))
    }

    /// Sequential-read memory bandwidth from `socket` to `node`, GB/s.
    ///
    /// Local accesses see the controller bandwidth; remote accesses are
    /// capped by the weakest link on the path, with a deterministic
    /// per-pair degradation standing in for routing asymmetries
    /// (the paper's Fig. 1/2 remote bandwidths are visibly non-uniform).
    pub fn mem_bandwidth(&self, socket: usize, node: usize) -> f64 {
        let hops = self.hops_to_node(socket, node);
        if hops == 0 {
            return self.mem.local_bandwidth;
        }
        // The stream is capped by both the controller's remote budget
        // and the weakest link of the interconnect path to the nearest
        // socket attached to the node.
        let attached = self
            .local_node_of_socket
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == node)
            .map(|(s, _)| s)
            .min_by_key(|&s| self.interconnect.hops(socket, s))
            .expect("node is owned by some socket");
        let link_cap = self.interconnect.bandwidth(socket, attached);
        let base = self.mem.remote_bandwidth.min(link_cap);
        // Deterministic jitter in [0.85, 1.0]: hash of the pair.
        let h = (socket as u64)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(node as u64)
            .wrapping_mul(0x85EB_CA6B);
        let jitter = 0.85 + 0.15 * ((h >> 16) % 1000) as f64 / 1000.0;
        (base * jitter).min(self.mem.local_bandwidth)
    }

    /// The socket whose memory controller hosts `node` (inverse of the
    /// true socket->node map; for shared nodes, the first such socket).
    pub fn socket_of_node(&self, node: usize) -> usize {
        self.local_node_of_socket
            .iter()
            .position(|&n| n == node)
            .unwrap_or_else(|| panic!("node {node} not owned by any socket"))
    }

    /// All hardware contexts of a socket, in OS-id order.
    pub fn hwcs_of_socket(&self, socket: usize) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.total_hwcs())
            .filter(|&h| self.loc(h).socket == socket)
            .collect();
        out.sort_unstable();
        out
    }

    /// Converts cycles to seconds at the nominal frequency.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Validates internal consistency; used by preset tests.
    pub fn check(&self) -> Result<(), String> {
        if self.intra_levels.is_empty() {
            return Err("no intra-socket levels".into());
        }
        let last = self.intra_levels.last().unwrap();
        if last.group_cores != self.cores_per_socket {
            return Err(format!(
                "last intra level groups {} cores, socket has {}",
                last.group_cores, self.cores_per_socket
            ));
        }
        let mut prev_cores = 0usize;
        let mut prev_lat = if self.has_smt() { self.smt_latency } else { 0 };
        for level in &self.intra_levels {
            if level.group_cores <= prev_cores {
                return Err("intra levels must strictly grow".into());
            }
            if !self.cores_per_socket.is_multiple_of(level.group_cores) {
                return Err("intra level size must divide cores_per_socket".into());
            }
            if level.latency <= prev_lat {
                return Err("intra level latencies must strictly grow".into());
            }
            prev_cores = level.group_cores;
            prev_lat = level.latency;
        }
        if self.local_node_of_socket.len() != self.sockets
            || self.os_node_of_socket.len() != self.sockets
        {
            return Err("socket->node maps must have one entry per socket".into());
        }
        if self.local_node_of_socket.iter().any(|&n| n >= self.nodes) {
            return Err("socket->node map points past the last node".into());
        }
        if self.sockets > 1 {
            let max_intra = self.intra_levels.last().unwrap().latency;
            let min_cross = (0..self.sockets)
                .flat_map(|a| (0..self.sockets).map(move |b| (a, b)))
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| self.interconnect.latency(a, b))
                .min()
                .unwrap();
            if min_cross <= max_intra {
                return Err("cross-socket latency must exceed intra-socket".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn ivy_numbering_matches_paper_fig6() {
        // On Ivy (Fig. 6) contexts 0 and 20 are SMT siblings and contexts
        // 0..10 live on socket 0, 10..20 on socket 1.
        let ivy = presets::ivy();
        assert_eq!(ivy.loc(0).core, ivy.loc(20).core);
        assert_eq!(ivy.loc(0).socket, 0);
        assert_eq!(ivy.loc(9).socket, 0);
        assert_eq!(ivy.loc(10).socket, 1);
        assert_eq!(ivy.loc(19).socket, 1);
        assert_eq!(ivy.true_latency(0, 20), 28);
    }

    #[test]
    fn ivy_latency_classes() {
        let ivy = presets::ivy();
        assert_eq!(ivy.true_latency(3, 3), 0);
        // Same socket, different cores.
        assert_eq!(ivy.true_latency(0, 1), 112);
        // Across sockets.
        assert_eq!(ivy.true_latency(0, 10), 308);
        // Symmetry.
        for &(a, b) in &[(0usize, 1usize), (0, 10), (5, 25), (13, 37)] {
            assert_eq!(ivy.true_latency(a, b), ivy.true_latency(b, a));
        }
    }

    #[test]
    fn loc_roundtrip_all_presets() {
        for spec in presets::all_paper_platforms() {
            for hwc in 0..spec.total_hwcs() {
                let l = spec.loc(hwc);
                assert_eq!(spec.hwc_of(l.core, l.smt), hwc, "machine {}", spec.name);
            }
        }
    }

    #[test]
    fn scrambled_numbering_is_a_bijection() {
        let mut spec = presets::ivy();
        spec.numbering = Numbering::Scrambled(42);
        let n = spec.total_hwcs();
        let mut seen = vec![false; n];
        for core in 0..spec.total_cores() {
            for smt in 0..spec.smt_per_core {
                let h = spec.hwc_of(core, smt);
                assert!(!seen[h]);
                seen[h] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        for hwc in 0..n {
            let l = spec.loc(hwc);
            assert_eq!(spec.hwc_of(l.core, l.smt), hwc);
        }
    }

    #[test]
    fn sparc_socket_major() {
        let sparc = presets::sparc();
        // Fig. 3: contexts 0..8 share a core, 0..64 share socket 0.
        assert_eq!(sparc.loc(0).core, sparc.loc(7).core);
        assert_ne!(sparc.loc(7).core, sparc.loc(8).core);
        assert_eq!(sparc.loc(63).socket, 0);
        assert_eq!(sparc.loc(64).socket, 1);
        assert_eq!(sparc.true_latency(0, 7), 101);
        assert_eq!(sparc.true_latency(0, 8), 207);
    }

    #[test]
    fn mem_latency_grows_with_hops() {
        let west = presets::westmere();
        let local = west.mem_latency(0, west.local_node_of_socket[0]);
        for node in 0..west.nodes {
            assert!(west.mem_latency(0, node) >= local);
        }
    }

    #[test]
    fn all_presets_pass_check() {
        for spec in presets::all_paper_platforms() {
            spec.check()
                .unwrap_or_else(|e| panic!("{}: {}", spec.name, e));
        }
        for spec in presets::all_synthetic() {
            spec.check()
                .unwrap_or_else(|e| panic!("{}: {}", spec.name, e));
        }
    }

    #[test]
    fn remote_bandwidth_below_local() {
        for spec in presets::all_paper_platforms() {
            for s in 0..spec.sockets {
                for n in 0..spec.nodes {
                    let bw = spec.mem_bandwidth(s, n);
                    assert!(bw > 0.0);
                    assert!(bw <= spec.mem.local_bandwidth + 1e-9);
                }
            }
        }
    }
}
