//! A tiny discrete-event simulation core.
//!
//! The application-study models (lock contention for Fig. 8, merge
//! pipelines for Fig. 9) are discrete-event simulations over the machine
//! models. This module provides the event queue they share: a
//! time-ordered heap with FIFO tie-breaking so runs are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at an absolute time.
#[derive(Debug, Clone)]
struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue keyed by simulated cycles.
///
/// # Examples
///
/// ```
/// use mcsim::des::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(30, "c");
/// q.push(10, "a");
/// q.push(10, "b");
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((30, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Schedules `payload` at absolute `time`. Events scheduled in the
    /// past are clamped to the current time (they fire "now").
    pub fn push(&mut self, time: u64, payload: T) {
        let time = time.max(self.now);
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` `delay` cycles after the current time.
    pub fn push_after(&mut self, delay: u64, payload: T) {
        self.push(self.now + delay, payload);
    }

    /// Pops the earliest event and advances the clock to it.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.payload))
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(1, 0);
        q.push(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(10, ());
        q.push(20, ());
        q.pop();
        assert_eq!(q.now(), 10);
        // Scheduling in the past clamps to now.
        q.push(5, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 10);
        q.pop();
        assert_eq!(q.now(), 20);
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(100, "a");
        q.pop();
        q.push_after(50, "b");
        assert_eq!(q.pop(), Some((150, "b")));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
