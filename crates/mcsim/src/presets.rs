//! Machine presets.
//!
//! The five paper platforms (Section 2.1) are modelled with the exact
//! published structure and, where the paper prints them, the exact
//! latency/bandwidth numbers (Figs. 1-3, 6, 7). Synthetic shapes cover
//! corner cases that the evaluation machines do not.

use crate::interconnect::{
    Interconnect,
    Link, //
};
use crate::machine::{
    CacheLevel,
    IntraLevel,
    MachineSpec,
    MemSpec,
    Numbering,
    PowerSpec, //
};

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

/// Intel Xeon Ivy Bridge: 2 x E5-2680 v2, 10 cores/socket, SMT-2,
/// 40 contexts. The running example of Fig. 6: SMT latency 28 cy,
/// intra-socket 112 cy, cross-socket 308 cy.
pub fn ivy() -> MachineSpec {
    MachineSpec {
        name: "ivy".into(),
        freq_ghz: 2.8,
        sockets: 2,
        cores_per_socket: 10,
        smt_per_core: 2,
        nodes: 2,
        smt_latency: 28,
        intra_levels: vec![IntraLevel {
            group_cores: 10,
            latency: 112,
        }],
        interconnect: Interconnect::full(2, 188, 120, 16.0),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 32 * KB,
                latency: 4,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 256 * KB,
                latency: 12,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 25 * MB,
                latency: 42,
                shared_by_cores: 10,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 128.0,
            local_latency: 280,
            hop_penalty: 120,
            local_bandwidth: 24.3,
            remote_bandwidth: 16.0,
            per_core_stream_bw: 6.1,
        },
        power: PowerSpec {
            socket_base_w: 20.1,
            core_w: 3.5,
            smt_w: 1.16,
            dram_w: 45.2,
            has_rapl: true,
        },
        numbering: Numbering::CoresFirst,
        local_node_of_socket: vec![0, 1],
        os_node_of_socket: vec![0, 1],
    }
}

/// Intel Xeon Westmere: 8 x E7-8867L, 10 cores/socket, SMT-2,
/// 160 contexts (Fig. 2). SMT 28 cy, intra-socket 116 cy, direct
/// cross-socket 341 cy, two-hop 458 cy. Two fully-connected quads with
/// two cross links per socket.
pub fn westmere() -> MachineSpec {
    let mut links = Vec::new();
    // Quads {0,1,2,3} and {4,5,6,7} fully connected.
    for base in [0usize, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                links.push(Link {
                    a: base + i,
                    b: base + j,
                    wire: 117,
                    bandwidth: 10.9,
                });
            }
        }
    }
    // Each socket of quad 0 links to two sockets of quad 1.
    for i in 0..4usize {
        links.push(Link {
            a: i,
            b: i + 4,
            wire: 117,
            bandwidth: 10.9,
        });
        links.push(Link {
            a: i,
            b: (i + 1) % 4 + 4,
            wire: 117,
            bandwidth: 8.6,
        });
    }
    MachineSpec {
        name: "westmere".into(),
        freq_ghz: 2.1,
        sockets: 8,
        cores_per_socket: 10,
        smt_per_core: 2,
        nodes: 8,
        smt_latency: 28,
        intra_levels: vec![IntraLevel {
            group_cores: 10,
            latency: 116,
        }],
        interconnect: Interconnect::new(8, 224, links),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 32 * KB,
                latency: 4,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 256 * KB,
                latency: 11,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 30 * MB,
                latency: 46,
                shared_by_cores: 10,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 64.0,
            // Fig. 2a: local 369 cy / 13.1 GB/s; one hop ~497, two ~603.
            local_latency: 369,
            hop_penalty: 128,
            local_bandwidth: 13.1,
            remote_bandwidth: 10.9,
            per_core_stream_bw: 3.3,
        },
        power: PowerSpec {
            socket_base_w: 32.0,
            core_w: 6.0,
            smt_w: 1.8,
            dram_w: 50.0,
            has_rapl: false,
        },
        numbering: Numbering::SocketInterleaved,
        local_node_of_socket: (0..8).collect(),
        os_node_of_socket: (0..8).collect(),
    }
}

/// Intel Xeon Haswell: 4 x E7-4830 v3, 12 cores/socket, SMT-2,
/// 96 contexts. Fully-connected QPI (no graph printed in the paper).
pub fn haswell() -> MachineSpec {
    MachineSpec {
        name: "haswell".into(),
        freq_ghz: 2.7,
        sockets: 4,
        cores_per_socket: 12,
        smt_per_core: 2,
        nodes: 4,
        smt_latency: 26,
        intra_levels: vec![IntraLevel {
            group_cores: 12,
            latency: 110,
        }],
        interconnect: Interconnect::full(4, 200, 120, 12.8),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 32 * KB,
                latency: 4,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 256 * KB,
                latency: 12,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 30 * MB,
                latency: 44,
                shared_by_cores: 12,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 256.0,
            local_latency: 300,
            hop_penalty: 115,
            local_bandwidth: 31.5,
            remote_bandwidth: 12.8,
            per_core_stream_bw: 7.0,
        },
        power: PowerSpec {
            socket_base_w: 18.0,
            core_w: 4.2,
            smt_w: 1.3,
            dram_w: 40.0,
            has_rapl: true,
        },
        numbering: Numbering::SocketInterleaved,
        local_node_of_socket: vec![0, 1, 2, 3],
        os_node_of_socket: vec![0, 1, 2, 3],
    }
}

/// AMD Opteron: 4 x Opteron 6172 multi-chip modules = 8 dies ("sockets"),
/// 6 cores each, no SMT, 48 contexts (Fig. 1). Three cross-socket
/// levels: 197 cy inside an MCM, 217 cy over a direct HyperTransport
/// link, 300 cy over two hops ("level 4" in Fig. 1b).
///
/// The paper's machine had a *misconfigured OS node mapping*
/// (footnote 1): the OS view shipped here is wrong in the same way,
/// while the physical mapping is the identity. MCTOP-ALG + the memory
/// plugin must recover the physical one.
pub fn opteron() -> MachineSpec {
    let mut links = Vec::new();
    // MCM-internal links: 197 = 114 + 83.
    for m in 0..4usize {
        links.push(Link {
            a: 2 * m,
            b: 2 * m + 1,
            wire: 83,
            bandwidth: 5.3,
        });
    }
    // Direct HyperTransport links: even dies fully connected, odd dies
    // fully connected: 217 = 114 + 103.
    for i in 0..4usize {
        for j in (i + 1)..4 {
            links.push(Link {
                a: 2 * i,
                b: 2 * j,
                wire: 103,
                bandwidth: 3.0,
            });
            links.push(Link {
                a: 2 * i + 1,
                b: 2 * j + 1,
                wire: 103,
                bandwidth: 2.8,
            });
        }
    }
    // Remaining pairs (even-odd across MCMs) route MCM + HT:
    // 114 + 83 + 103 = 300 cycles, matching "level 4 (2 hops) 300 cy".
    MachineSpec {
        name: "opteron".into(),
        freq_ghz: 2.1,
        sockets: 8,
        cores_per_socket: 6,
        smt_per_core: 1,
        nodes: 8,
        smt_latency: 0,
        intra_levels: vec![IntraLevel {
            group_cores: 6,
            latency: 117,
        }],
        interconnect: Interconnect::new(8, 114, links),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 64 * KB,
                latency: 3,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 512 * KB,
                latency: 15,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 5 * MB,
                latency: 40,
                shared_by_cores: 6,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 16.0,
            // Fig. 1a: local 143 cy / 10.9 GB/s, 1-hop ~247..262,
            // 2-hop ~342..346.
            local_latency: 143,
            hop_penalty: 100,
            local_bandwidth: 10.9,
            remote_bandwidth: 5.3,
            per_core_stream_bw: 2.4,
        },
        power: PowerSpec {
            socket_base_w: 14.0,
            core_w: 7.5,
            smt_w: 0.0,
            dram_w: 22.0,
            has_rapl: false,
        },
        numbering: Numbering::SocketMajor,
        local_node_of_socket: (0..8).collect(),
        // The misconfigured OS swaps the node mapping of MCM partners.
        os_node_of_socket: vec![1, 0, 3, 2, 5, 4, 7, 6],
    }
}

/// Oracle SPARC T4-4: 4 sockets, 8 cores/socket, SMT-8, 256 contexts
/// (Fig. 3). SMT 101 cy, intra-socket 207 cy; glueless full
/// interconnect. Local memory 479 cy / 28.2 GB/s, remote ~685 / 15.2.
pub fn sparc() -> MachineSpec {
    MachineSpec {
        name: "sparc".into(),
        freq_ghz: 3.0,
        sockets: 4,
        cores_per_socket: 8,
        smt_per_core: 8,
        nodes: 4,
        smt_latency: 101,
        intra_levels: vec![IntraLevel {
            group_cores: 8,
            latency: 207,
        }],
        interconnect: Interconnect::full(4, 400, 135, 15.2),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 16 * KB,
                latency: 3,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 256 * KB,
                latency: 14,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 4 * MB,
                latency: 38,
                shared_by_cores: 8,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 256.0,
            local_latency: 479,
            hop_penalty: 206,
            local_bandwidth: 28.2,
            remote_bandwidth: 15.2,
            per_core_stream_bw: 3.6,
        },
        power: PowerSpec {
            socket_base_w: 45.0,
            core_w: 12.0,
            smt_w: 1.0,
            dram_w: 60.0,
            has_rapl: false,
        },
        numbering: Numbering::SocketMajor,
        local_node_of_socket: vec![0, 1, 2, 3],
        os_node_of_socket: vec![0, 1, 2, 3],
    }
}

/// All five evaluation platforms, in the order the paper's figures use.
pub fn all_paper_platforms() -> Vec<MachineSpec> {
    vec![ivy(), opteron(), haswell(), westmere(), sparc()]
}

/// Looks up a platform (paper, synthetic, or mesh-scale) by name.
pub fn by_name(name: &str) -> Option<MachineSpec> {
    let all = all_paper_platforms()
        .into_iter()
        .chain(all_synthetic())
        .chain(all_mesh_scale());
    all.into_iter().find(|m| m.name == name)
}

/// Small 2-socket SMT machine for fast tests: 2 x 4 cores x 2 contexts.
pub fn synthetic_small() -> MachineSpec {
    MachineSpec {
        name: "synth-small".into(),
        freq_ghz: 2.0,
        sockets: 2,
        cores_per_socket: 4,
        smt_per_core: 2,
        nodes: 2,
        smt_latency: 30,
        intra_levels: vec![IntraLevel {
            group_cores: 4,
            latency: 100,
        }],
        interconnect: Interconnect::full(2, 180, 110, 12.0),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 32 * KB,
                latency: 4,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 256 * KB,
                latency: 12,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 8 * MB,
                latency: 40,
                shared_by_cores: 4,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 32.0,
            local_latency: 250,
            hop_penalty: 100,
            local_bandwidth: 20.0,
            remote_bandwidth: 12.0,
            per_core_stream_bw: 6.0,
        },
        power: PowerSpec {
            socket_base_w: 15.0,
            core_w: 4.0,
            smt_w: 1.2,
            dram_w: 30.0,
            has_rapl: true,
        },
        numbering: Numbering::CoresFirst,
        local_node_of_socket: vec![0, 1],
        os_node_of_socket: vec![0, 1],
    }
}

/// A machine with an intermediate hwc_group level: pairs of cores share
/// an L2, so there are four latency levels inside the machine
/// (SMT 25 < shared-L2 55 < socket 105 < cross 290).
pub fn clustered_l2() -> MachineSpec {
    MachineSpec {
        name: "synth-clustered".into(),
        freq_ghz: 2.4,
        sockets: 2,
        cores_per_socket: 8,
        smt_per_core: 2,
        nodes: 2,
        smt_latency: 25,
        intra_levels: vec![
            IntraLevel {
                group_cores: 2,
                latency: 55,
            },
            IntraLevel {
                group_cores: 8,
                latency: 105,
            },
        ],
        interconnect: Interconnect::full(2, 170, 120, 14.0),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 32 * KB,
                latency: 4,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 512 * KB,
                latency: 14,
                shared_by_cores: 2,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 16 * MB,
                latency: 44,
                shared_by_cores: 8,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 64.0,
            local_latency: 260,
            hop_penalty: 110,
            local_bandwidth: 22.0,
            remote_bandwidth: 14.0,
            per_core_stream_bw: 5.5,
        },
        power: PowerSpec {
            socket_base_w: 16.0,
            core_w: 4.5,
            smt_w: 1.1,
            dram_w: 32.0,
            has_rapl: true,
        },
        numbering: Numbering::CoresFirst,
        local_node_of_socket: vec![0, 1],
        os_node_of_socket: vec![0, 1],
    }
}

/// A single-socket machine: no cross-socket level at all.
pub fn single_socket() -> MachineSpec {
    MachineSpec {
        name: "synth-single".into(),
        freq_ghz: 3.2,
        sockets: 1,
        cores_per_socket: 8,
        smt_per_core: 2,
        nodes: 1,
        smt_latency: 26,
        intra_levels: vec![IntraLevel {
            group_cores: 8,
            latency: 95,
        }],
        interconnect: Interconnect::new(1, 0, vec![]),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 32 * KB,
                latency: 4,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: MB,
                latency: 13,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 16 * MB,
                latency: 40,
                shared_by_cores: 8,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 64.0,
            local_latency: 230,
            hop_penalty: 0,
            local_bandwidth: 35.0,
            remote_bandwidth: 35.0,
            per_core_stream_bw: 9.0,
        },
        power: PowerSpec {
            socket_base_w: 12.0,
            core_w: 5.0,
            smt_w: 1.4,
            dram_w: 25.0,
            has_rapl: true,
        },
        numbering: Numbering::CoresFirst,
        local_node_of_socket: vec![0],
        os_node_of_socket: vec![0],
    }
}

/// No SMT, 2 sockets x 4 cores: CON_HWC / CON_CORE_HWC / CON_CORE must
/// coincide here (Section 6).
pub fn no_smt_small() -> MachineSpec {
    let mut m = synthetic_small();
    m.name = "synth-nosmt".into();
    m.smt_per_core = 1;
    m.smt_latency = 0;
    m
}

/// Four sockets sharing two memory nodes (footnote 2 of the paper:
/// "it is possible to have fewer memory nodes than sockets").
pub fn shared_node() -> MachineSpec {
    MachineSpec {
        name: "synth-shared-node".into(),
        freq_ghz: 2.2,
        sockets: 4,
        cores_per_socket: 4,
        smt_per_core: 1,
        nodes: 2,
        smt_latency: 0,
        intra_levels: vec![IntraLevel {
            group_cores: 4,
            latency: 100,
        }],
        interconnect: Interconnect::full(4, 190, 115, 11.0),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 32 * KB,
                latency: 4,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 256 * KB,
                latency: 12,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: 8 * MB,
                latency: 40,
                shared_by_cores: 4,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 64.0,
            local_latency: 260,
            hop_penalty: 105,
            local_bandwidth: 18.0,
            remote_bandwidth: 11.0,
            per_core_stream_bw: 5.0,
        },
        power: PowerSpec {
            socket_base_w: 14.0,
            core_w: 4.0,
            smt_w: 0.0,
            dram_w: 28.0,
            has_rapl: false,
        },
        numbering: Numbering::SocketMajor,
        local_node_of_socket: vec![0, 0, 1, 1],
        os_node_of_socket: vec![0, 0, 1, 1],
    }
}

/// `synthetic_small` with a scrambled context numbering: inference must
/// not depend on the OS id order.
pub fn scrambled() -> MachineSpec {
    let mut m = synthetic_small();
    m.name = "synth-scrambled".into();
    m.numbering = Numbering::Scrambled(0xC0FFEE);
    m
}

/// All synthetic machines.
pub fn all_synthetic() -> Vec<MachineSpec> {
    vec![
        synthetic_small(),
        clustered_l2(),
        single_socket(),
        no_smt_small(),
        shared_node(),
        scrambled(),
    ]
}

/// Shared body of the NoC-scale presets: tiny 2-core tiles, one tile
/// per socket, four shared memory controller nodes, socket-major
/// numbering (tile = context id / 2 — the structure-exploiting
/// collection in `mctop::alg` relies on that).
///
/// Uniform wire latency and bandwidth on every hop keep the
/// weakest-link path bandwidth independent of which of several
/// shortest paths the router picks, so the model stays well-defined
/// at any scale.
fn noc(name: String, sockets: usize, links: Vec<Link>, node_of: Vec<usize>) -> MachineSpec {
    MachineSpec {
        name,
        freq_ghz: 1.5,
        sockets,
        cores_per_socket: 2,
        smt_per_core: 1,
        nodes: 4,
        smt_latency: 0,
        intra_levels: vec![IntraLevel {
            group_cores: 2,
            latency: 90,
        }],
        interconnect: Interconnect::new(sockets, 150, links),
        caches: vec![
            CacheLevel {
                name: "L1".into(),
                size: 16 * KB,
                latency: 3,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "L2".into(),
                size: 128 * KB,
                latency: 10,
                shared_by_cores: 1,
            },
            CacheLevel {
                name: "LLC".into(),
                size: MB,
                latency: 30,
                shared_by_cores: 2,
            },
        ],
        mem: MemSpec {
            node_capacity_gb: 8.0,
            local_latency: 200,
            hop_penalty: 30,
            local_bandwidth: 12.0,
            remote_bandwidth: 6.0,
            per_core_stream_bw: 3.0,
        },
        power: PowerSpec {
            socket_base_w: 0.8,
            core_w: 0.4,
            smt_w: 0.0,
            dram_w: 10.0,
            has_rapl: false,
        },
        numbering: Numbering::SocketMajor,
        local_node_of_socket: node_of.clone(),
        os_node_of_socket: node_of,
    }
}

/// A `side x side` 2D mesh NoC: one 2-core tile per grid point,
/// 4-neighbour links, memory controllers in the four quadrants.
/// Latency between tiles is `150 + 60 * hops` — one distinct level per
/// Manhattan distance.
pub fn mesh(side: usize) -> MachineSpec {
    assert!(
        side >= 2 && side.is_multiple_of(2),
        "mesh side must be even and >= 2"
    );
    let sockets = side * side;
    let mut links = Vec::new();
    for y in 0..side {
        for x in 0..side {
            let s = y * side + x;
            if x + 1 < side {
                links.push(Link {
                    a: s,
                    b: s + 1,
                    wire: 60,
                    bandwidth: 8.0,
                });
            }
            if y + 1 < side {
                links.push(Link {
                    a: s,
                    b: s + side,
                    wire: 60,
                    bandwidth: 8.0,
                });
            }
        }
    }
    let node_of = (0..sockets)
        .map(|s| {
            let (x, y) = (s % side, s / side);
            usize::from(y >= side / 2) * 2 + usize::from(x >= side / 2)
        })
        .collect();
    noc(format!("synth-mesh-{sockets}"), sockets, links, node_of)
}

/// A multiplicative circulant NoC `C(n; 1, m, m^2, ...)`: tile `i`
/// links to `i +- m^j (mod n)` for every power of `m` below `n`. The
/// generator ladder gives logarithmic diameter — the "Routing in
/// Networks on Chip with Multiplicative Circulant Topology" family.
pub fn multiplicative_circulant(n: usize, m: usize) -> MachineSpec {
    assert!(m >= 2, "multiplier must be >= 2");
    let mut gens = Vec::new();
    let mut g = 1usize;
    while g < n {
        // Generators below n/2 only: g and n-g induce the same chords.
        assert!(g * 2 < n, "generator {g} degenerate for ring size {n}");
        gens.push(g);
        g *= m;
    }
    let mut links = Vec::new();
    for &g in &gens {
        for i in 0..n {
            let (a, b) = (i, (i + g) % n);
            links.push(Link {
                a: a.min(b),
                b: a.max(b),
                wire: 60,
                bandwidth: 8.0,
            });
        }
    }
    let node_of = (0..n).map(|s| s / n.div_ceil(4)).collect();
    noc(format!("synth-circulant-{n}"), n, links, node_of)
}

/// The NoC-scale ladder: committed as descriptions and tracked by the
/// `scale_inference` bench, but deliberately *not* part of
/// [`all_synthetic`] — only the smallest two are compiled into the
/// shipped registry.
pub fn all_mesh_scale() -> Vec<MachineSpec> {
    vec![
        mesh(8),
        mesh(12),
        mesh(16),
        multiplicative_circulant(64, 4),
        multiplicative_circulant(256, 4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_context_counts() {
        // Section 2.1: 40, 48, 96, 160, 256 hardware contexts.
        assert_eq!(ivy().total_hwcs(), 40);
        assert_eq!(opteron().total_hwcs(), 48);
        assert_eq!(haswell().total_hwcs(), 96);
        assert_eq!(westmere().total_hwcs(), 160);
        assert_eq!(sparc().total_hwcs(), 256);
    }

    #[test]
    fn westmere_cross_latencies_match_fig2() {
        let w = westmere();
        // Direct links: 341 cycles.
        assert_eq!(w.cross_latency(0, 1), 341);
        assert_eq!(w.cross_latency(0, 4), 341);
        // Two-hop pairs exist and cost 458.
        let levels = w.interconnect.latency_levels();
        assert_eq!(levels, vec![341, 458]);
    }

    #[test]
    fn opteron_three_cross_levels_match_fig1() {
        let o = opteron();
        // MCM partner: 197; direct HT: 217; 2-hop: 300.
        assert_eq!(o.cross_latency(0, 1), 197);
        assert_eq!(o.cross_latency(0, 2), 217);
        assert_eq!(o.cross_latency(0, 3), 300);
        assert_eq!(o.interconnect.latency_levels(), vec![197, 217, 300]);
    }

    #[test]
    fn opteron_os_mapping_is_wrong_on_purpose() {
        let o = opteron();
        assert_ne!(o.os_node_of_socket, o.local_node_of_socket);
    }

    #[test]
    fn opteron_memory_latencies_match_fig1a() {
        let o = opteron();
        assert_eq!(o.mem_latency(0, 0), 143);
        assert_eq!(o.mem_latency(0, 1), 243); // Paper: 247.
        assert_eq!(o.mem_latency(0, 3), 343); // Paper: 343.
    }

    #[test]
    fn sparc_memory_matches_fig3() {
        let s = sparc();
        assert_eq!(s.mem_latency(0, 0), 479);
        assert_eq!(s.mem_latency(0, 1), 685); // Paper: 679..689.
        assert!((s.mem_bandwidth(0, 0) - 28.2).abs() < 1e-9);
    }

    #[test]
    fn by_name_roundtrip() {
        for m in all_paper_platforms().into_iter().chain(all_synthetic()) {
            let found = by_name(&m.name).expect("preset by name");
            assert_eq!(found.total_hwcs(), m.total_hwcs());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn mesh_latency_is_manhattan_distance() {
        let m = mesh(8);
        assert_eq!(m.sockets, 64);
        assert_eq!(m.total_hwcs(), 128);
        // Corner to corner: 7 + 7 = 14 hops.
        assert_eq!(m.interconnect.hops(0, 63), 14);
        assert_eq!(m.cross_latency(0, 63), 150 + 60 * 14);
        // Neighbours: one hop.
        assert_eq!(m.cross_latency(0, 1), 210);
        assert_eq!(m.cross_latency(0, 8), 210);
        // One latency level per Manhattan distance 1..=14.
        let levels = m.interconnect.latency_levels();
        assert_eq!(levels.len(), 14);
        assert!(levels.windows(2).all(|w| w[1] - w[0] == 60));
    }

    #[test]
    fn circulant_diameter_is_logarithmic() {
        let c = multiplicative_circulant(256, 4);
        assert_eq!(c.sockets, 256);
        // Chords 1, 4, 16, 64 in both directions: degree 8.
        let deg0 = c
            .interconnect
            .links
            .iter()
            .filter(|l| l.a == 0 || l.b == 0)
            .count();
        assert_eq!(deg0, 8);
        let diameter = (0..c.sockets)
            .map(|s| c.interconnect.hops(0, s))
            .max()
            .unwrap();
        assert!(diameter <= 8, "diameter {diameter} not logarithmic");
    }

    #[test]
    fn mesh_scale_presets_pass_check() {
        for spec in all_mesh_scale() {
            spec.check()
                .unwrap_or_else(|e| panic!("{}: {}", spec.name, e));
            let found = by_name(&spec.name).expect("mesh-scale preset by name");
            assert_eq!(found, spec);
        }
    }

    #[test]
    fn shared_node_has_fewer_nodes_than_sockets() {
        let m = shared_node();
        assert!(m.nodes < m.sockets);
        assert_eq!(m.socket_of_node(0), 0);
        assert_eq!(m.socket_of_node(1), 2);
    }
}
