//! Memory and cache oracles: what the enrichment plugins of Section 4
//! measure (pointer-chase latency, sequential-stream bandwidth, cache
//! level sizes/latencies).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::machine::{
    CacheLevel,
    MachineSpec, //
};
use crate::noise::NoiseCfg;

/// Answers the microbenchmark questions of the paper's memory plugins:
/// a randomly-linked pointer chase over a working set (latency) and a
/// sequential sweep (bandwidth).
#[derive(Debug, Clone)]
pub struct MemoryOracle<'m> {
    spec: &'m MachineSpec,
    noise: NoiseCfg,
    rng: SmallRng,
}

impl<'m> MemoryOracle<'m> {
    /// Oracle with light measurement noise.
    pub fn new(spec: &'m MachineSpec, seed: u64) -> Self {
        MemoryOracle {
            spec,
            noise: NoiseCfg {
                rdtsc_cost: 0,
                sigma_frac: 0.01,
                ..NoiseCfg::default()
            },
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Noise-free oracle for deterministic tests.
    pub fn noiseless(spec: &'m MachineSpec) -> Self {
        MemoryOracle {
            spec,
            noise: NoiseCfg::none(),
            rng: SmallRng::seed_from_u64(0),
        }
    }

    /// Average load-to-use latency (cycles) of a random pointer chase
    /// over `working_set` bytes allocated on `node`, executed from a
    /// context on `socket`.
    ///
    /// Within a cache level the latency is that level's; between a
    /// level's capacity and 1.5x capacity the latency ramps linearly to
    /// the next level (conflict/partial misses), which is what real
    /// chase curves look like and what the cache-size plugin must cope
    /// with.
    pub fn chase_latency(&mut self, socket: usize, node: usize, working_set: usize) -> f64 {
        let mem_lat = self.spec.mem_latency(socket, node) as f64;
        let mut latencies: Vec<f64> = self.spec.caches.iter().map(|c| c.latency as f64).collect();
        latencies.push(mem_lat);
        let mut value = latencies[0];
        let mut found = false;
        for (i, cache) in self.spec.caches.iter().enumerate() {
            let cap = cache.size;
            let ramp_end = cap + cap / 2;
            if working_set <= cap {
                value = latencies[i];
                found = true;
                break;
            }
            if working_set <= ramp_end {
                let t = (working_set - cap) as f64 / (ramp_end - cap) as f64;
                value = latencies[i] + t * (latencies[i + 1] - latencies[i]);
                found = true;
                break;
            }
        }
        if !found {
            value = mem_lat;
        }
        let noisy = self.noise.apply(value, &mut self.rng) as f64;
        if self.noise.sigma_frac == 0.0 {
            value
        } else {
            noisy
        }
    }

    /// Aggregate sequential-read bandwidth (GB/s) achieved by `threads`
    /// contexts on `socket` streaming from `node`.
    pub fn stream_bandwidth(&mut self, socket: usize, node: usize, threads: usize) -> f64 {
        if threads == 0 {
            return 0.0;
        }
        let cap = self.spec.mem_bandwidth(socket, node);
        let per_core = self.spec.mem.per_core_stream_bw;
        (threads as f64 * per_core).min(cap)
    }

    /// How many threads on a socket are needed to saturate the local
    /// memory bandwidth (used by the RR_SCALE policy).
    pub fn threads_to_saturate(&self, socket: usize) -> usize {
        let node = self.spec.local_node_of_socket[socket];
        let cap = self.spec.mem_bandwidth(socket, node);
        (cap / self.spec.mem.per_core_stream_bw).ceil().max(1.0) as usize
    }

    /// Cache information as the operating system would report it
    /// (the cache plugin "additionally loads and includes the cache
    /// sizes from the operating system").
    pub fn os_cache_info(&self) -> Vec<CacheLevel> {
        self.spec.caches.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn chase_latency_steps_through_hierarchy() {
        let ivy = presets::ivy();
        let mut o = MemoryOracle::noiseless(&ivy);
        let node = ivy.local_node_of_socket[0];
        // Inside L1.
        assert_eq!(o.chase_latency(0, node, 16 * 1024), 4.0);
        // Inside L2 (past L1 ramp).
        assert_eq!(o.chase_latency(0, node, 128 * 1024), 12.0);
        // Inside LLC.
        assert_eq!(o.chase_latency(0, node, 8 * 1024 * 1024), 42.0);
        // Past LLC: memory latency.
        let mem = o.chase_latency(0, node, 512 * 1024 * 1024);
        assert_eq!(mem, ivy.mem_latency(0, node) as f64);
    }

    #[test]
    fn remote_chase_slower_than_local() {
        let west = presets::westmere();
        let mut o = MemoryOracle::noiseless(&west);
        let ws = 512 * 1024 * 1024;
        let local = o.chase_latency(0, west.local_node_of_socket[0], ws);
        for node in 0..west.nodes {
            assert!(o.chase_latency(0, node, ws) >= local);
        }
    }

    #[test]
    fn bandwidth_scales_then_saturates() {
        let ivy = presets::ivy();
        let mut o = MemoryOracle::noiseless(&ivy);
        let node = ivy.local_node_of_socket[0];
        let one = o.stream_bandwidth(0, node, 1);
        let many = o.stream_bandwidth(0, node, 64);
        assert_eq!(one, ivy.mem.per_core_stream_bw);
        assert_eq!(many, ivy.mem.local_bandwidth);
        assert!(one < many);
    }

    #[test]
    fn saturation_thread_count_is_consistent() {
        for spec in presets::all_paper_platforms() {
            let o = MemoryOracle::noiseless(&spec);
            for s in 0..spec.sockets {
                let k = o.threads_to_saturate(s);
                assert!(k >= 1);
                let mut om = MemoryOracle::noiseless(&spec);
                let node = spec.local_node_of_socket[s];
                let bw_k = om.stream_bandwidth(s, node, k);
                assert!((bw_k - spec.mem_bandwidth(s, node)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ramp_is_monotonic() {
        let ivy = presets::ivy();
        let mut o = MemoryOracle::noiseless(&ivy);
        let node = ivy.local_node_of_socket[0];
        let mut prev = 0.0;
        let mut ws = 1024;
        while ws < 1 << 30 {
            let lat = o.chase_latency(0, node, ws);
            assert!(lat + 1e-9 >= prev, "latency not monotonic at ws={ws}");
            prev = lat;
            ws *= 2;
        }
    }
}
