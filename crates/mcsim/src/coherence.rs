//! A single-cache-line MESI model.
//!
//! This is the machinery behind Observation 1 of the paper: coherence
//! protocols are deterministic in the absence of contention, so the cost
//! of a request-for-ownership (RFO, Fig. 4) between two fixed contexts is
//! a stable, topology-characterizing number. The latency oracle's
//! "lock-step CAS" probe is exactly [`LineSim::rfo`] against a line that
//! the partner thread just brought into the Modified state.

use serde::{
    Deserialize,
    Serialize, //
};

use crate::machine::MachineSpec;

/// MESI state of the line in one core's private caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mesi {
    /// Only fresh copy; memory is stale.
    Modified,
    /// Only copy, clean.
    Exclusive,
    /// One of several clean copies.
    Shared,
    /// Not present.
    Invalid,
}

/// Outcome of a coherence request: the deterministic latency plus a
/// description of the walk taken (for tests and the Fig. 4 demo).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Total cycles.
    pub latency: u32,
    /// Human-readable steps, in order.
    pub steps: Vec<&'static str>,
}

/// Simulates one cache line over the cores of a machine.
#[derive(Debug, Clone)]
pub struct LineSim<'m> {
    spec: &'m MachineSpec,
    /// Per-core MESI state.
    states: Vec<Mesi>,
    /// Memory node that homes the line.
    home_node: usize,
}

impl<'m> LineSim<'m> {
    /// A line homed on `home_node`, present nowhere.
    pub fn new(spec: &'m MachineSpec, home_node: usize) -> Self {
        assert!(home_node < spec.nodes);
        LineSim {
            spec,
            states: vec![Mesi::Invalid; spec.total_cores()],
            home_node,
        }
    }

    /// Current state in `core`'s private caches.
    pub fn state_of_core(&self, core: usize) -> Mesi {
        self.states[core]
    }

    fn core_to_core(&self, a_core: usize, b_core: usize) -> u32 {
        // Use the first context of each core; the transfer latency is a
        // property of the cores, not the SMT contexts.
        let a = self.spec.hwc_of(a_core, 0);
        let b = self.spec.hwc_of(b_core, 0);
        self.spec.true_latency(a, b)
    }

    /// Request-for-ownership by `hwc` (e.g. a CAS): after this the line
    /// is Modified in the requester's core and Invalid everywhere else.
    /// Returns the deterministic walk.
    pub fn rfo(&mut self, hwc: usize) -> Walk {
        let req = self.spec.loc(hwc).core;
        let mut steps = vec!["1-RFO"];
        let latency;
        match self.states[req] {
            Mesi::Modified | Mesi::Exclusive => {
                // Private-cache hit; upgrade is free.
                steps.push("hit-private");
                latency = self.spec.caches.first().map_or(2, |c| c.latency);
            }
            Mesi::Shared => {
                // Upgrade: invalidate the other sharers. The
                // invalidations are broadcast in parallel; the cost is
                // the farthest acknowledgement.
                steps.push("2-upgrade");
                steps.push("5-invalidate");
                latency = self.farthest_sharer(req).max(1);
            }
            Mesi::Invalid => {
                steps.push("2-miss");
                if let Some(owner) = self.owner() {
                    // Dirty or exclusive in another core: fetch from its
                    // private caches (the Fig. 4 walk).
                    steps.push("3-miss");
                    steps.push(if self.same_socket(req, owner) {
                        "4a-hit"
                    } else {
                        "4b-miss"
                    });
                    steps.push("5-inv");
                    steps.push("6-granted");
                    latency = self.core_to_core(req, owner);
                } else if self.states.contains(&Mesi::Shared) {
                    // Clean copies elsewhere: fetch one, invalidate all.
                    steps.push("5-invalidate");
                    latency = self.farthest_sharer(req).max(1);
                } else {
                    // Memory fetch from the home node.
                    steps.push("mem-fetch");
                    latency = self
                        .spec
                        .mem_latency(self.spec.loc(hwc).socket, self.home_node);
                }
            }
        }
        for s in self.states.iter_mut() {
            *s = Mesi::Invalid;
        }
        self.states[req] = Mesi::Modified;
        Walk { latency, steps }
    }

    /// Plain load by `hwc`: the line becomes Shared (or Exclusive if it
    /// was nowhere).
    pub fn read(&mut self, hwc: usize) -> Walk {
        let req = self.spec.loc(hwc).core;
        let mut steps = vec!["1-load"];
        let latency;
        match self.states[req] {
            Mesi::Invalid => {
                steps.push("2-miss");
                if let Some(owner) = self.owner() {
                    steps.push("3-forward");
                    latency = self.core_to_core(req, owner);
                    // Dirty data is written back; both keep Shared.
                    self.states[owner] = Mesi::Shared;
                    self.states[req] = Mesi::Shared;
                } else if self.states.contains(&Mesi::Shared) {
                    steps.push("3-share");
                    latency = self.nearest_sharer(req).max(1);
                    self.states[req] = Mesi::Shared;
                } else {
                    steps.push("mem-fetch");
                    latency = self
                        .spec
                        .mem_latency(self.spec.loc(hwc).socket, self.home_node);
                    self.states[req] = Mesi::Exclusive;
                }
            }
            _ => {
                steps.push("hit-private");
                latency = self.spec.caches.first().map_or(2, |c| c.latency);
            }
        }
        Walk { latency, steps }
    }

    fn owner(&self) -> Option<usize> {
        self.states
            .iter()
            .position(|&s| matches!(s, Mesi::Modified | Mesi::Exclusive))
    }

    fn same_socket(&self, core_a: usize, core_b: usize) -> bool {
        core_a / self.spec.cores_per_socket == core_b / self.spec.cores_per_socket
    }

    fn farthest_sharer(&self, req: usize) -> u32 {
        self.states
            .iter()
            .enumerate()
            .filter(|&(c, &s)| s == Mesi::Shared && c != req)
            .map(|(c, _)| self.core_to_core(req, c))
            .max()
            .unwrap_or(0)
    }

    fn nearest_sharer(&self, req: usize) -> u32 {
        self.states
            .iter()
            .enumerate()
            .filter(|&(c, &s)| s == Mesi::Shared && c != req)
            .map(|(c, _)| self.core_to_core(req, c))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn rfo_ping_pong_reports_topology_latency() {
        // The lock-step measurement of Fig. 5: y CASes, then x CASes.
        let ivy = presets::ivy();
        let mut line = LineSim::new(&ivy, 0);
        line.rfo(10); // Thread y on socket 1.
        let walk = line.rfo(0); // Thread x on socket 0 measures.
        assert_eq!(walk.latency, ivy.true_latency(0, 10));
        assert!(walk.steps.contains(&"4b-miss"));
        assert!(walk.steps.contains(&"6-granted"));
    }

    #[test]
    fn rfo_same_socket_walk() {
        let ivy = presets::ivy();
        let mut line = LineSim::new(&ivy, 0);
        line.rfo(1);
        let walk = line.rfo(0);
        assert_eq!(walk.latency, 112);
        assert!(walk.steps.contains(&"4a-hit"));
    }

    #[test]
    fn repeated_rfo_hits_private_cache() {
        let ivy = presets::ivy();
        let mut line = LineSim::new(&ivy, 0);
        line.rfo(0);
        let walk = line.rfo(0);
        assert!(walk.steps.contains(&"hit-private"));
        assert!(walk.latency <= 4);
    }

    #[test]
    fn determinism_same_schedule_same_latency() {
        // Observation 1: replaying the same schedule gives identical
        // latencies.
        let west = presets::westmere();
        let run = |a: usize, b: usize| {
            let mut line = LineSim::new(&west, 0);
            line.rfo(b);
            line.rfo(a).latency
        };
        for &(a, b) in &[(0usize, 35usize), (1, 2), (0, 80), (17, 93)] {
            assert_eq!(run(a, b), run(a, b));
            assert_eq!(run(a, b), run(b, a), "symmetric pair ({a},{b})");
        }
    }

    #[test]
    fn cold_read_fetches_from_memory() {
        let ivy = presets::ivy();
        let mut line = LineSim::new(&ivy, 1);
        let walk = line.read(0);
        assert!(walk.steps.contains(&"mem-fetch"));
        assert_eq!(walk.latency, ivy.mem_latency(0, 1));
        assert_eq!(line.state_of_core(0), Mesi::Exclusive);
    }

    #[test]
    fn shared_upgrade_invalidates_all() {
        let ivy = presets::ivy();
        let mut line = LineSim::new(&ivy, 0);
        line.read(0);
        line.read(1);
        line.read(10);
        let walk = line.rfo(0);
        assert!(walk.steps.contains(&"5-invalidate"));
        // Farthest sharer is on the other socket.
        assert_eq!(walk.latency, ivy.true_latency(0, 10));
        assert_eq!(line.state_of_core(ivy.loc(10).core), Mesi::Invalid);
    }
}
