//! # mcsim — simulated multi-core machines
//!
//! This crate is the *hardware substrate* of the MCTOP reproduction. The
//! paper ("Abstracting Multi-Core Topologies with MCTOP", EuroSys '17)
//! infers multi-core topologies from core-to-core cache-coherence latency
//! measurements taken on five physical machines. Those machines are not
//! available here, so `mcsim` models them: socket/core/SMT structure,
//! interconnect graphs, cache hierarchies, NUMA memory latencies and
//! bandwidths, and an Intel-RAPL-like power model.
//!
//! The central type is [`machine::MachineSpec`]. The oracles in
//! [`latency`], [`memory`] and [`power`] answer the same questions the
//! paper's measurement threads ask real hardware, including the noise
//! phenomena the paper has to fight (rdtsc overhead, DVFS ramp-up,
//! spurious outliers, SMT slowdown of co-located spin loops).
//!
//! Five presets mirror the evaluation platforms of the paper
//! ([`presets::ivy`], [`presets::westmere`], [`presets::haswell`],
//! [`presets::opteron`], [`presets::sparc`]); additional synthetic shapes
//! exercise corner cases (single socket, shared L2 clusters, shared
//! memory nodes, scrambled context numbering).

pub mod coherence;
pub mod des;
pub mod interconnect;
pub mod latency;
pub mod machine;
pub mod memory;
pub mod noise;
pub mod power;
pub mod presets;
pub mod stats;

pub use interconnect::{
    Interconnect,
    Link, //
};
pub use latency::LatencyOracle;
pub use machine::{
    CacheLevel,
    Loc,
    MachineSpec,
    MemSpec,
    Numbering,
    PowerSpec, //
};
pub use memory::MemoryOracle;
pub use noise::{
    DvfsCfg,
    NoiseCfg, //
};
pub use power::PowerModel;
