//! Small statistics helpers shared by the measurement pipeline
//! (median-of-n probes, stdev thresholds, CDF clustering) and the
//! benchmark harnesses (median-of-11 runs, as in Section 7).

/// Median of a slice (averages the two middle elements for even sizes).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median_u32(values: &[u32]) -> u32 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        ((v[n / 2 - 1] as u64 + v[n / 2] as u64) / 2) as u32
    }
}

/// Median of f64 values.
pub fn median_f64(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Arithmetic mean.
pub fn mean(values: &[u32]) -> f64 {
    assert!(!values.is_empty());
    values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn stdev(values: &[u32]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values
        .iter()
        .map(|&v| (v as f64 - m) * (v as f64 - m))
        .sum::<f64>()
        / values.len() as f64;
    var.sqrt()
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let s: f64 = values.iter().map(|v| v.ln()).sum();
    (s / values.len() as f64).exp()
}

/// Empirical CDF sample points `(value, fraction <= value)` of the
/// input, over its sorted distinct values. This is the curve of
/// Fig. 6 (2a) from which MCTOP-ALG extracts latency clusters.
pub fn cdf_points(values: &[u32]) -> Vec<(u32, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let n = v.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < v.len() {
        let val = v[i];
        let mut j = i;
        while j < v.len() && v[j] == val {
            j += 1;
        }
        out.push((val, j as f64 / n));
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median_u32(&[3, 1, 2]), 2);
        assert_eq!(median_u32(&[4, 1, 2, 3]), 2);
        assert_eq!(median_u32(&[7]), 7);
        assert_eq!(median_f64(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn stdev_basics() {
        assert_eq!(stdev(&[5, 5, 5, 5]), 0.0);
        let s = stdev(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(stdev(&[1]), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_reaches_one_and_is_monotone() {
        let pts = cdf_points(&[1, 1, 2, 5, 5, 5]);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts[0], (1, 2.0 / 6.0));
    }

    #[test]
    fn cdf_empty() {
        assert!(cdf_points(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "median of empty slice")]
    fn median_empty_panics() {
        median_u32(&[]);
    }
}
