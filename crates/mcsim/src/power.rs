//! RAPL-like power model (Section 4, "Power Consumption").
//!
//! The paper measures, on Intel machines: idle power, full power, the
//! power of the first hardware context of a core, and the power of the
//! second context of an already-active core. Those four numbers are
//! exactly what the POWER placement policy and the energy results of
//! Figs. 10-11 need, so the model is parameterized directly by them.

use crate::machine::MachineSpec;

/// Per-socket and total power for a given set of active contexts.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// Watts per socket (package, without DRAM).
    pub socket_w: Vec<f64>,
    /// Watts per socket including DRAM (only sockets with active
    /// contexts draw DRAM power).
    pub socket_w_dram: Vec<f64>,
}

impl PowerBreakdown {
    /// Total package power.
    pub fn total(&self) -> f64 {
        self.socket_w.iter().sum()
    }

    /// Total power including DRAM.
    pub fn total_with_dram(&self) -> f64 {
        self.socket_w_dram.iter().sum()
    }
}

/// Evaluates the power model of a machine.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel<'m> {
    spec: &'m MachineSpec,
}

impl<'m> PowerModel<'m> {
    /// A model over `spec`. Works on every machine; whether the numbers
    /// would be *measurable* on real hardware is `spec.power.has_rapl`.
    pub fn new(spec: &'m MachineSpec) -> Self {
        PowerModel { spec }
    }

    /// Whether the platform exposes power counters (Intel only in the
    /// paper).
    pub fn available(&self) -> bool {
        self.spec.power.has_rapl
    }

    /// Idle power of the whole processor (all sockets powered, nothing
    /// running).
    pub fn idle(&self) -> f64 {
        self.spec.sockets as f64 * self.spec.power.socket_base_w
    }

    /// Power of an execution with the given active hardware contexts.
    pub fn estimate(&self, active_hwcs: &[usize]) -> PowerBreakdown {
        let p = &self.spec.power;
        let mut first_ctx = vec![false; self.spec.total_cores()];
        let mut extra_ctx = vec![0usize; self.spec.total_cores()];
        for &h in active_hwcs {
            let core = self.spec.loc(h).core;
            if first_ctx[core] {
                extra_ctx[core] += 1;
            } else {
                first_ctx[core] = true;
            }
        }
        let mut socket_w = vec![p.socket_base_w; self.spec.sockets];
        let mut active_socket = vec![false; self.spec.sockets];
        for core in 0..self.spec.total_cores() {
            let socket = core / self.spec.cores_per_socket;
            if first_ctx[core] {
                socket_w[socket] += p.core_w + extra_ctx[core] as f64 * p.smt_w;
                active_socket[socket] = true;
            }
        }
        let socket_w_dram = socket_w
            .iter()
            .zip(&active_socket)
            .map(|(&w, &act)| if act { w + p.dram_w } else { w })
            .collect();
        PowerBreakdown {
            socket_w,
            socket_w_dram,
        }
    }

    /// Full power: every context active, with DRAM loaded.
    pub fn full(&self) -> f64 {
        let all: Vec<usize> = (0..self.spec.total_hwcs()).collect();
        self.estimate(&all).total_with_dram()
    }

    /// Marginal power of activating `hwc` given the already-active set.
    pub fn marginal(&self, active: &[usize], hwc: usize) -> f64 {
        let before = self.estimate(active).total_with_dram();
        let mut with: Vec<usize> = active.to_vec();
        with.push(hwc);
        self.estimate(&with).total_with_dram() - before
    }

    /// Energy (joules) of running `active_hwcs` for `seconds`.
    pub fn energy(&self, active_hwcs: &[usize], seconds: f64, with_dram: bool) -> f64 {
        let b = self.estimate(active_hwcs);
        let w = if with_dram {
            b.total_with_dram()
        } else {
            b.total()
        };
        w * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// Reproduces the wattages of Fig. 7 of the paper: CON_HWC with 30
    /// threads on Ivy puts 20 contexts (10 cores) on socket 0 and 10
    /// contexts (5 cores) on socket 1.
    #[test]
    fn fig7_ivy_power_lines() {
        let ivy = presets::ivy();
        let pm = PowerModel::new(&ivy);
        let mut active: Vec<usize> = Vec::new();
        // Socket 0: cores 0..10, both contexts.
        for core in 0..10 {
            active.push(ivy.hwc_of(core, 0));
            active.push(ivy.hwc_of(core, 1));
        }
        // Socket 1: cores 10..15, both contexts.
        for core in 10..15 {
            active.push(ivy.hwc_of(core, 0));
            active.push(ivy.hwc_of(core, 1));
        }
        let b = pm.estimate(&active);
        assert!(
            (b.socket_w[0] - 66.7).abs() < 0.2,
            "socket0 {}",
            b.socket_w[0]
        );
        assert!(
            (b.socket_w[1] - 43.4).abs() < 0.2,
            "socket1 {}",
            b.socket_w[1]
        );
        assert!((b.total() - 110.1).abs() < 0.3, "total {}", b.total());
        assert!(
            (b.total_with_dram() - 200.6).abs() < 0.6,
            "dram {}",
            b.total_with_dram()
        );
    }

    #[test]
    fn second_smt_context_cheaper_than_fresh_core() {
        let ivy = presets::ivy();
        let pm = PowerModel::new(&ivy);
        let active = vec![ivy.hwc_of(0, 0)];
        let second_ctx = pm.marginal(&active, ivy.hwc_of(0, 1));
        let fresh_core = pm.marginal(&active, ivy.hwc_of(1, 0));
        assert!(second_ctx < fresh_core);
    }

    #[test]
    fn idle_below_full() {
        for spec in presets::all_paper_platforms() {
            let pm = PowerModel::new(&spec);
            assert!(pm.idle() < pm.full(), "{}", spec.name);
        }
    }

    #[test]
    fn inactive_socket_draws_no_dram() {
        let ivy = presets::ivy();
        let pm = PowerModel::new(&ivy);
        let active = vec![ivy.hwc_of(0, 0)];
        let b = pm.estimate(&active);
        assert_eq!(b.socket_w_dram[1], b.socket_w[1]);
        assert!(b.socket_w_dram[0] > b.socket_w[0]);
    }

    #[test]
    fn rapl_availability_matches_vendor() {
        assert!(presets::ivy().power.has_rapl);
        assert!(presets::haswell().power.has_rapl);
        assert!(!presets::opteron().power.has_rapl);
        assert!(!presets::sparc().power.has_rapl);
    }

    #[test]
    fn energy_scales_with_time() {
        let ivy = presets::ivy();
        let pm = PowerModel::new(&ivy);
        let active = vec![0, 1, 2];
        let e1 = pm.energy(&active, 1.0, true);
        let e2 = pm.energy(&active, 2.0, true);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }
}
