//! The context-to-context latency oracle: what the paper's lock-step
//! CAS threads (Fig. 5) would measure on the simulated machine.

use rand::rngs::SmallRng;
use rand::{
    Rng,
    SeedableRng, //
};

use crate::machine::MachineSpec;
use crate::noise::{
    DvfsCfg,
    NoiseCfg, //
};

/// Simulates the measurement pair of Fig. 5 of the paper on a machine
/// spec, with realistic noise, DVFS ramp-up, and SMT interference.
///
/// # Examples
///
/// ```
/// use mcsim::{presets, LatencyOracle};
///
/// let ivy = presets::ivy();
/// let mut oracle = LatencyOracle::new(&ivy, 42);
/// oracle.wait_max_freq(0);
/// oracle.wait_max_freq(1);
/// let raw = oracle.probe_raw(0, 1);
/// // Raw measurements include the rdtsc read cost.
/// assert!(raw >= 112);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyOracle<'m> {
    spec: &'m MachineSpec,
    noise: NoiseCfg,
    dvfs: DvfsCfg,
    /// Base seed of the run; per-stream generators are derived from it
    /// (see [`LatencyOracle::reseed_stream`]).
    seed: u64,
    rng: SmallRng,
    /// Per-core busy units, drives the DVFS factor.
    warmth: Vec<u32>,
    /// Total raw probes issued (for the inference-cost accounting of
    /// Section 3.5).
    probes: u64,
}

/// Derives the seed of an independent randomness stream from the run
/// seed and a stream tag (a strong 128-bit-ish mix, so `(seed, tag)`
/// pairs land far apart even for adjacent tags).
pub fn stream_seed(seed: u64, tag: u64) -> u64 {
    // splitmix64 finalizer over both words, chained.
    let mut z = seed ^ tag.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= tag;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<'m> LatencyOracle<'m> {
    /// Oracle with default noise and DVFS enabled.
    pub fn new(spec: &'m MachineSpec, seed: u64) -> Self {
        Self::with_cfg(spec, seed, NoiseCfg::default(), DvfsCfg::default())
    }

    /// Oracle with explicit noise and DVFS configuration.
    pub fn with_cfg(spec: &'m MachineSpec, seed: u64, noise: NoiseCfg, dvfs: DvfsCfg) -> Self {
        LatencyOracle {
            spec,
            noise,
            dvfs,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            warmth: vec![0; spec.total_cores()],
            probes: 0,
        }
    }

    /// Rebinds the oracle's randomness to the stream identified by
    /// `tag`: from here on, samples are drawn from a generator seeded
    /// with [`stream_seed`]`(seed, tag)` regardless of how many samples
    /// any other stream consumed. This is what makes measurement
    /// results a pure function of `(seed, stream, sample index)` — the
    /// foundation of the deterministic parallel collection contract
    /// (two oracles cloned from the same run produce identical samples
    /// for the same stream, in any global order).
    pub fn reseed_stream(&mut self, tag: u64) {
        self.rng = SmallRng::seed_from_u64(stream_seed(self.seed, tag));
    }

    /// Noise-free oracle (still includes the rdtsc cost in raw probes).
    pub fn noiseless(spec: &'m MachineSpec) -> Self {
        Self::with_cfg(spec, 0, NoiseCfg::none(), DvfsCfg::disabled())
    }

    /// The machine being probed.
    pub fn spec(&self) -> &MachineSpec {
        self.spec
    }

    /// Number of raw probes issued so far.
    pub fn probe_count(&self) -> u64 {
        self.probes
    }

    /// Number of hardware contexts (OS dependency #1 of Section 3).
    pub fn num_hwcs(&self) -> usize {
        self.spec.total_hwcs()
    }

    /// Number of memory nodes (OS dependency #2 of Section 3).
    pub fn num_nodes(&self) -> usize {
        self.spec.nodes
    }

    /// One raw lock-step measurement between contexts `a` and `b`:
    /// true RFO latency, inflated by the DVFS factor of the colder core,
    /// plus rdtsc cost, jitter, outliers, and quantization.
    pub fn probe_raw(&mut self, a: usize, b: usize) -> u32 {
        self.probes += 1;
        let true_lat = self.spec.true_latency(a, b) as f64;
        let ca = self.spec.loc(a).core;
        let cb = self.spec.loc(b).core;
        let factor = self
            .dvfs
            .factor(self.warmth[ca])
            .max(self.dvfs.factor(self.warmth[cb]));
        self.warm(ca, 1);
        if cb != ca {
            self.warm(cb, 1);
        }
        self.noise.apply(true_lat * factor, &mut self.rng)
    }

    /// What a calibration loop measuring back-to-back rdtsc reads
    /// observes: the true cost plus slight jitter.
    pub fn rdtsc_cost_estimate(&mut self) -> u32 {
        let jitter = if self.noise.sigma_frac > 0.0 {
            self.rng.gen_range(-2i64..=2) as f64
        } else {
            0.0
        };
        (self.noise.rdtsc_cost as f64 + jitter).max(0.0).round() as u32
    }

    /// Duration (in cycles) of a fixed spin loop of `iters` iterations
    /// executed simultaneously on `ctxs`. Used for both DVFS detection
    /// and SMT detection (Section 3.5): contexts sharing a core slow
    /// each other down; cold cores run slow.
    pub fn spin_duration(&mut self, ctxs: &[usize], iters: u64) -> u64 {
        assert!(!ctxs.is_empty());
        let mut worst = 0f64;
        for (i, &c) in ctxs.iter().enumerate() {
            let core = self.spec.loc(c).core;
            let mut t = iters as f64 * self.dvfs.factor(self.warmth[core]);
            // SMT resource sharing: each co-located context in the set
            // slows this one down substantially.
            let co_located = ctxs
                .iter()
                .enumerate()
                .filter(|&(j, &o)| j != i && self.spec.loc(o).core == core)
                .count();
            t *= 1.0 + 0.75 * co_located as f64;
            if self.noise.sigma_frac > 0.0 {
                t *= 1.0
                    + 0.2 * self.noise.sigma_frac * crate::noise::approx_std_normal(&mut self.rng);
            }
            worst = worst.max(t);
        }
        for &c in ctxs {
            let core = self.spec.loc(c).core;
            self.warm(core, (iters / 64).max(1) as u32);
        }
        worst as u64
    }

    /// Spins on `ctx` until its core reaches maximum frequency: the DVFS
    /// countermeasure of Section 3.5 ("libmctop explicitly waits for the
    /// frequency of both cores to reach its maximum").
    ///
    /// Returns the number of detection rounds used.
    pub fn wait_max_freq(&mut self, ctx: usize) -> u32 {
        let mut rounds = 0;
        loop {
            let d1 = self.spin_duration(&[ctx], 4096);
            let d2 = self.spin_duration(&[ctx], 4096);
            rounds += 1;
            // If a subsequent run of the same loop is no faster, the core
            // has stopped transitioning between DVFS states.
            if d2 as f64 >= d1 as f64 * 0.98 || rounds > 64 {
                return rounds;
            }
        }
    }

    fn warm(&mut self, core: usize, units: u32) {
        self.warmth[core] = self.warmth[core].saturating_add(units);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn noiseless_probe_is_truth_plus_rdtsc() {
        let ivy = presets::ivy();
        let mut o = LatencyOracle::noiseless(&ivy);
        assert_eq!(o.probe_raw(0, 1), 112 + 24);
        assert_eq!(o.probe_raw(0, 10), 308 + 24);
        assert_eq!(o.probe_raw(0, 20), 28 + 24);
    }

    #[test]
    fn cold_cores_probe_slow_then_stabilize() {
        let ivy = presets::ivy();
        let noise = NoiseCfg {
            sigma_frac: 0.0,
            outlier_prob: 0.0,
            ..NoiseCfg::default()
        };
        let mut o = LatencyOracle::with_cfg(&ivy, 1, noise, DvfsCfg::default());
        let cold = o.probe_raw(0, 1);
        // Warm both cores fully.
        o.wait_max_freq(0);
        o.wait_max_freq(1);
        let warm = o.probe_raw(0, 1);
        assert!(cold > warm, "cold {cold} vs warm {warm}");
        assert_eq!(warm, 112 + 24);
    }

    #[test]
    fn wait_max_freq_converges() {
        let ivy = presets::ivy();
        let mut o = LatencyOracle::new(&ivy, 3);
        let rounds = o.wait_max_freq(5);
        assert!(rounds <= 64);
        // Afterwards the spin duration is stable.
        let d1 = o.spin_duration(&[5], 256);
        let d2 = o.spin_duration(&[5], 256);
        assert!((d1 as f64 - d2 as f64).abs() / (d1 as f64) < 0.1);
    }

    #[test]
    fn smt_siblings_slow_each_other() {
        let ivy = presets::ivy();
        let mut o = LatencyOracle::noiseless(&ivy);
        let solo = o.spin_duration(&[0], 10_000);
        // Contexts 0 and 20 share a core on Ivy.
        let paired_same_core = o.spin_duration(&[0, 20], 10_000);
        let paired_diff_core = o.spin_duration(&[0, 1], 10_000);
        assert!(paired_same_core as f64 > solo as f64 * 1.5);
        assert!(paired_diff_core < paired_same_core);
    }

    #[test]
    fn probe_counter_counts() {
        let ivy = presets::ivy();
        let mut o = LatencyOracle::noiseless(&ivy);
        for _ in 0..10 {
            o.probe_raw(0, 1);
        }
        assert_eq!(o.probe_count(), 10);
    }

    #[test]
    fn median_of_noisy_probes_recovers_truth() {
        let west = presets::westmere();
        let mut o = LatencyOracle::new(&west, 9);
        o.wait_max_freq(0);
        o.wait_max_freq(40);
        let rdtsc = o.rdtsc_cost_estimate();
        let mut vals: Vec<u32> = (0..501).map(|_| o.probe_raw(0, 40)).collect();
        vals.sort_unstable();
        let median = vals[vals.len() / 2].saturating_sub(rdtsc);
        let truth = west.true_latency(0, 40);
        let err = (median as f64 - truth as f64).abs() / truth as f64;
        assert!(err < 0.05, "median {median} truth {truth}");
    }
}
