//! Socket-to-socket interconnect graphs.
//!
//! Cross-socket communication latency is modelled as
//! `overhead + sum(wire latency over the cheapest path)`, which
//! reproduces the paper's observed pattern that a 2-hop latency is far
//! less than twice a 1-hop latency (e.g. Westmere: 341 cy direct vs
//! 458 cy over two hops).

use std::sync::OnceLock;

use serde::{
    DeError,
    Deserialize,
    Serialize,
    Value, //
};

/// A direct link between two sockets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// First endpoint (socket index).
    pub a: usize,
    /// Second endpoint (socket index).
    pub b: usize,
    /// Wire latency contribution of this link, cycles. The end-to-end
    /// context-to-context latency over a path is
    /// `overhead + sum(wire)`.
    pub wire: u32,
    /// Peak bandwidth of this link, GB/s.
    pub bandwidth: f64,
}

/// One entry of the all-pairs routing table: cheapest-path wire
/// latency, hop count, and the weakest link bandwidth along the path
/// the relaxation chose.
#[derive(Debug, Clone, Copy)]
struct Route {
    wire: u32,
    hops: u32,
    min_bw: f64,
}

/// The interconnect: a weighted graph over sockets.
#[derive(Debug, Clone)]
pub struct Interconnect {
    /// Number of sockets.
    pub sockets: usize,
    /// Fixed protocol overhead added to every cross-socket transfer.
    pub overhead: u32,
    /// Direct links (undirected).
    pub links: Vec<Link>,
    /// Lazily built all-pairs routing table (row-major by source).
    /// Mesh-scale graphs issue millions of latency/hop queries during
    /// inference; recomputing the relaxation per query made collection
    /// quadratic-times-quadratic. Derived state: never serialized,
    /// never compared.
    routes: OnceLock<Vec<Route>>,
}

impl PartialEq for Interconnect {
    fn eq(&self, other: &Self) -> bool {
        self.sockets == other.sockets
            && self.overhead == other.overhead
            && self.links == other.links
    }
}

impl Serialize for Interconnect {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("sockets".to_string(), self.sockets.to_value()),
            ("overhead".to_string(), self.overhead.to_value()),
            ("links".to_string(), self.links.to_value()),
        ])
    }
}

impl Deserialize for Interconnect {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Interconnect {
            sockets: serde::__field(v, "sockets")?,
            overhead: serde::__field(v, "overhead")?,
            links: serde::__field(v, "links")?,
            routes: OnceLock::new(),
        })
    }
}

impl Interconnect {
    /// Builds an interconnect. Routing queries fill an all-pairs table
    /// on first use.
    pub fn new(sockets: usize, overhead: u32, links: Vec<Link>) -> Self {
        let ic = Interconnect {
            sockets,
            overhead,
            links,
            routes: OnceLock::new(),
        };
        ic.assert_connected();
        ic
    }

    /// A fully-connected interconnect with uniform links.
    pub fn full(sockets: usize, overhead: u32, wire: u32, bandwidth: f64) -> Self {
        let mut links = Vec::new();
        for a in 0..sockets {
            for b in (a + 1)..sockets {
                links.push(Link {
                    a,
                    b,
                    wire,
                    bandwidth,
                });
            }
        }
        Interconnect::new(sockets, overhead, links)
    }

    fn assert_connected(&self) {
        if self.sockets <= 1 {
            return;
        }
        let mut seen = vec![false; self.sockets];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            for l in &self.links {
                let next = if l.a == s {
                    l.b
                } else if l.b == s {
                    l.a
                } else {
                    continue;
                };
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "interconnect graph is disconnected"
        );
    }

    fn neighbors(&self, s: usize) -> impl Iterator<Item = (usize, &Link)> {
        self.links.iter().filter_map(move |l| {
            if l.a == s {
                Some((l.b, l))
            } else if l.b == s {
                Some((l.a, l))
            } else {
                None
            }
        })
    }

    /// The all-pairs routing table, built on first use.
    ///
    /// Each source row runs the same Gauss-Seidel relaxation the
    /// original on-demand search used — including its sweep order over
    /// sockets and its per-socket link order — because the bandwidth
    /// carried along equal-`(wire, hops)` paths depends on which path
    /// reaches the fixpoint key first. Committed description files pin
    /// those bandwidths, so the sweep is replicated verbatim, only with
    /// adjacency lists instead of a full link scan per socket.
    fn routes(&self) -> &[Route] {
        self.routes.get_or_init(|| {
            let adj: Vec<Vec<(usize, u32, f64)>> = (0..self.sockets)
                .map(|s| {
                    self.neighbors(s)
                        .map(|(n, l)| (n, l.wire, l.bandwidth))
                        .collect()
                })
                .collect();
            let mut table = Vec::with_capacity(self.sockets * self.sockets);
            for src in 0..self.sockets {
                let mut best: Vec<Option<(u32, usize, f64)>> = vec![None; self.sockets];
                best[src] = Some((0, 0, f64::INFINITY));
                for _ in 0..self.sockets {
                    let mut changed = false;
                    for s in 0..self.sockets {
                        let Some((w, h, bw)) = best[s] else { continue };
                        for &(next, wire, link_bw) in &adj[s] {
                            let cand = (w + wire, h + 1, bw.min(link_bw));
                            if best[next].is_none_or(|cur| (cand.0, cand.1) < (cur.0, cur.1)) {
                                best[next] = Some(cand);
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                for entry in best.iter().take(self.sockets) {
                    let (wire, hops, min_bw) = entry.expect("graph is connected");
                    table.push(Route {
                        wire,
                        hops: hops as u32,
                        min_bw,
                    });
                }
            }
            table
        })
    }

    fn route(&self, src: usize, dst: usize) -> Route {
        assert!(src < self.sockets && dst < self.sockets);
        self.routes()[src * self.sockets + dst]
    }

    /// End-to-end context-to-context latency across sockets, cycles.
    pub fn latency(&self, src: usize, dst: usize) -> u32 {
        if src == dst {
            return 0;
        }
        self.overhead + self.route(src, dst).wire
    }

    /// Number of hops on the cheapest path (0 for `src == dst`, 1 for a
    /// direct link). Ties in wire latency are broken toward fewer hops.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        self.route(src, dst).hops as usize
    }

    /// Whether two sockets share a direct link.
    pub fn directly_connected(&self, a: usize, b: usize) -> bool {
        self.links
            .iter()
            .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
    }

    /// Effective bandwidth between two sockets: the weakest link on the
    /// cheapest path, halved per extra hop (the forwarded traffic shares
    /// the intermediate socket's links).
    pub fn bandwidth(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            return f64::INFINITY;
        }
        let r = self.route(src, dst);
        r.min_bw / (r.hops.max(1) as f64)
    }

    /// All distinct cross-socket latency values, ascending.
    pub fn latency_levels(&self) -> Vec<u32> {
        let mut vals: Vec<u32> = (0..self.sockets)
            .flat_map(|a| ((a + 1)..self.sockets).map(move |b| (a, b)))
            .map(|(a, b)| self.latency(a, b))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Interconnect {
        let links = (0..n)
            .map(|i| Link {
                a: i,
                b: (i + 1) % n,
                wire: 100,
                bandwidth: 10.0,
            })
            .collect();
        Interconnect::new(n, 200, links)
    }

    #[test]
    fn direct_link_latency() {
        let ic = ring(4);
        assert_eq!(ic.latency(0, 1), 300);
        assert_eq!(ic.hops(0, 1), 1);
    }

    #[test]
    fn two_hop_latency_sub_additive() {
        let ic = ring(4);
        // 0 -> 2 must go around: 2 hops, one overhead.
        assert_eq!(ic.latency(0, 2), 400);
        assert_eq!(ic.hops(0, 2), 2);
        assert!(ic.latency(0, 2) < 2 * ic.latency(0, 1));
    }

    #[test]
    fn full_mesh_single_level() {
        let ic = Interconnect::full(4, 220, 120, 12.0);
        assert_eq!(ic.latency_levels(), vec![340]);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(ic.hops(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn symmetry() {
        let ic = ring(6);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(ic.latency(a, b), ic.latency(b, a));
                assert_eq!(ic.hops(a, b), ic.hops(b, a));
            }
        }
    }

    #[test]
    fn bandwidth_weakest_link_and_hop_sharing() {
        let ic = Interconnect::new(
            3,
            200,
            vec![
                Link {
                    a: 0,
                    b: 1,
                    wire: 100,
                    bandwidth: 10.0,
                },
                Link {
                    a: 1,
                    b: 2,
                    wire: 100,
                    bandwidth: 4.0,
                },
            ],
        );
        assert_eq!(ic.bandwidth(0, 1), 10.0);
        // Two hops: weakest link 4.0, shared over 2 hops.
        assert_eq!(ic.bandwidth(0, 2), 2.0);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_rejected() {
        let _ = Interconnect::new(
            3,
            200,
            vec![Link {
                a: 0,
                b: 1,
                wire: 1,
                bandwidth: 1.0,
            }],
        );
    }
}
