//! Measurement noise channels.
//!
//! Section 3.5 of the paper lists the practical enemies of user-space
//! latency measurement: rdtsc read cost, DVFS ramp-up, SMT interference
//! from background processes, and occasional spurious values. The
//! simulator reproduces each so that the MCTOP-ALG implementation's
//! countermeasures (median-of-n, stdev thresholds, retry escalation,
//! DVFS warm-up spins) are exercised for real.

use rand::Rng;
use serde::{
    Deserialize,
    Serialize, //
};

/// Stochastic noise applied to every raw probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseCfg {
    /// Relative standard deviation of Gaussian-ish jitter.
    pub sigma_frac: f64,
    /// Probability that a probe is a spurious outlier (interrupt,
    /// background process).
    pub outlier_prob: f64,
    /// Multiplier applied to outlier probes.
    pub outlier_mult: f64,
    /// Timestamp-counter granularity: measurements are quantized to this
    /// many cycles.
    pub quantum: u32,
    /// True cost of reading the timestamp counter twice, included in
    /// every raw measurement (the prober must estimate and subtract it).
    pub rdtsc_cost: u32,
}

impl Default for NoiseCfg {
    fn default() -> Self {
        NoiseCfg {
            sigma_frac: 0.015,
            outlier_prob: 5e-4,
            outlier_mult: 3.0,
            quantum: 4,
            rdtsc_cost: 24,
        }
    }
}

impl NoiseCfg {
    /// No noise at all: probes return the true latency plus the exact
    /// rdtsc cost. Used by determinism tests.
    pub fn none() -> Self {
        NoiseCfg {
            sigma_frac: 0.0,
            outlier_prob: 0.0,
            outlier_mult: 1.0,
            quantum: 1,
            rdtsc_cost: 24,
        }
    }

    /// Hostile conditions: heavy jitter and frequent outliers, for the
    /// failure-injection tests of the validation path.
    pub fn hostile() -> Self {
        NoiseCfg {
            sigma_frac: 0.30,
            outlier_prob: 0.05,
            outlier_mult: 6.0,
            quantum: 4,
            rdtsc_cost: 24,
        }
    }

    /// Applies jitter, outliers and quantization to a true latency.
    /// `gauss` must be a standard-normal-ish sample.
    pub fn apply<R: Rng>(&self, true_cycles: f64, rng: &mut R) -> u32 {
        let mut v = true_cycles;
        if self.sigma_frac > 0.0 {
            v *= 1.0 + self.sigma_frac * approx_std_normal(rng);
        }
        if self.outlier_prob > 0.0 && rng.gen_bool(self.outlier_prob) {
            v *= self.outlier_mult;
        }
        v += self.rdtsc_cost as f64;
        let q = self.quantum.max(1) as f64;
        let quantized = (v / q).round() * q;
        quantized.max(0.0) as u32
    }
}

/// Approximate standard normal: sum of 12 uniforms minus 6 (Irwin-Hall).
/// Accurate enough for measurement jitter and avoids an extra dependency.
pub fn approx_std_normal<R: Rng>(rng: &mut R) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    s - 6.0
}

/// Dynamic voltage/frequency scaling behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsCfg {
    /// Whether DVFS is active (the paper notes inference is faster and
    /// more stable with DVFS disabled).
    pub enabled: bool,
    /// Number of busy "probe units" a core needs to reach max frequency.
    pub ramp_units: u32,
    /// Slowdown factor of a completely cold core.
    pub cold_mult: f64,
}

impl Default for DvfsCfg {
    fn default() -> Self {
        DvfsCfg {
            enabled: true,
            ramp_units: 120,
            cold_mult: 1.8,
        }
    }
}

impl DvfsCfg {
    /// DVFS switched off in the BIOS.
    pub fn disabled() -> Self {
        DvfsCfg {
            enabled: false,
            ramp_units: 0,
            cold_mult: 1.0,
        }
    }

    /// Current slowdown multiplier for a core with `warmth` busy units.
    pub fn factor(&self, warmth: u32) -> f64 {
        if !self.enabled || warmth >= self.ramp_units {
            return 1.0;
        }
        let progress = warmth as f64 / self.ramp_units.max(1) as f64;
        self.cold_mult - (self.cold_mult - 1.0) * progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_probe_is_exact() {
        let cfg = NoiseCfg::none();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(cfg.apply(112.0, &mut rng), 112 + 24);
    }

    #[test]
    fn default_noise_stays_near_truth() {
        let cfg = NoiseCfg::default();
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<u32> = (0..2000).map(|_| cfg.apply(300.0, &mut rng)).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        // Median should sit within a couple of quanta of true + rdtsc.
        assert!((median - 324.0).abs() <= 8.0, "median {median}");
    }

    #[test]
    fn outliers_do_appear_under_hostile_noise() {
        let cfg = NoiseCfg::hostile();
        let mut rng = SmallRng::seed_from_u64(3);
        let n_outliers = (0..5000)
            .filter(|_| cfg.apply(100.0, &mut rng) > 300)
            .count();
        assert!(
            n_outliers > 20,
            "expected visible outliers, got {n_outliers}"
        );
    }

    #[test]
    fn quantization_grid() {
        let cfg = NoiseCfg {
            sigma_frac: 0.0,
            outlier_prob: 0.0,
            ..NoiseCfg::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for lat in [100.0, 101.0, 113.0, 297.0] {
            let v = cfg.apply(lat, &mut rng);
            assert_eq!(v % cfg.quantum, 0);
        }
    }

    #[test]
    fn dvfs_factor_ramps_down_to_one() {
        let dvfs = DvfsCfg::default();
        assert!(dvfs.factor(0) > 1.7);
        assert!(dvfs.factor(60) > 1.0);
        assert_eq!(dvfs.factor(120), 1.0);
        assert_eq!(dvfs.factor(10_000), 1.0);
        assert_eq!(DvfsCfg::disabled().factor(0), 1.0);
    }

    #[test]
    fn approx_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| approx_std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
