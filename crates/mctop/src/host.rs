//! The real-machine measurement backend (Linux).
//!
//! This is the genuine article: two threads pinned with
//! `sched_setaffinity`, a lock-step schedule over an atomic
//! compare-and-swap on a shared cache line (Fig. 5 of the paper), and
//! wall-clock timing. It needs exactly the three OS facilities the paper
//! lists: the number of contexts, the number of memory nodes, and
//! pinning.
//!
//! Latencies are reported in *nanoseconds* rather than cycles — the
//! clustering and component logic are unit-agnostic, so the pipeline is
//! unchanged. On the container-grade machines this reproduction runs on,
//! the inferred topology is whatever the host really is (often a single
//! level); the simulated backend covers the paper's multi-socket
//! platforms.

use std::sync::atomic::{
    AtomicU32,
    AtomicU64,
    Ordering, //
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::alg::probe::Prober;

/// Extra attempts [`HostProber::measure_pair`] makes after a transient
/// backend failure (measurement-thread spawn error, short batch).
const MAX_BACKEND_RETRIES: u32 = 3;
/// First retry backoff; doubles per attempt up to `BACKOFF_CAP`.
const BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Deterministic backoff ceiling — keeps the worst-case stall per pair
/// bounded (1 + 2 + 4 ms with the default budget).
const BACKOFF_CAP: Duration = Duration::from_millis(4);

/// Sentinel `phase` value aborting both measurement threads early.
const PHASE_ABORT: u32 = u32::MAX;

/// A [`Prober`] measuring the machine the process runs on.
#[derive(Debug)]
pub struct HostProber {
    n_hwcs: usize,
    n_nodes: usize,
    /// Cached batch of samples for the current pair (the trait is
    /// per-sample; measuring in batches amortizes thread spawns).
    cache: Vec<u32>,
    cache_pair: (usize, usize),
    batch: usize,
    /// Transient failures absorbed by [`HostProber::measure_pair`]
    /// (surfaced through [`Prober::backend_retries`]).
    backend_retries: u64,
    /// Test hook: fail the next N measurement attempts.
    #[cfg(test)]
    fail_next: u32,
}

impl HostProber {
    /// Discovers the host's context and node counts.
    pub fn new() -> std::io::Result<Self> {
        let n_hwcs = std::thread::available_parallelism()?.get();
        let n_nodes = count_numa_nodes();
        Ok(HostProber {
            n_hwcs,
            n_nodes,
            cache: Vec::new(),
            cache_pair: (usize::MAX, usize::MAX),
            batch: 64,
            backend_retries: 0,
            #[cfg(test)]
            fail_next: 0,
        })
    }

    /// Measures `rounds` lock-step CAS latencies between two contexts.
    /// Each round: thread `b` CASes the line (bringing it Modified in
    /// its caches), both threads synchronize on a spin barrier, thread
    /// `a` times its own CAS.
    ///
    /// One attempt, no retry; an empty vector means the measurement
    /// threads could not be spawned. [`HostProber::measure_pair`] is
    /// the fault-hardened path the [`Prober`] impl uses.
    pub fn measure_batch(&self, a: usize, b: usize, rounds: usize) -> Vec<u32> {
        self.try_measure_batch(a, b, rounds).unwrap_or_default()
    }

    /// One measurement attempt; a thread-spawn failure (e.g. `EAGAIN`
    /// under pid/memory pressure) is returned instead of panicking.
    fn try_measure_batch(&self, a: usize, b: usize, rounds: usize) -> std::io::Result<Vec<u32>> {
        let line = Arc::new(AtomicU64::new(0));
        let phase = Arc::new(AtomicU32::new(0));
        let results = Arc::new(parking_lot::Mutex::new(Vec::with_capacity(rounds)));

        let owner = {
            let line = Arc::clone(&line);
            let phase = Arc::clone(&phase);
            std::thread::Builder::new()
                .name("mctop-probe-owner".into())
                .spawn(move || {
                    pin_to(b);
                    for r in 0..rounds as u32 {
                        // Bring the line into Modified state.
                        let _ = line.compare_exchange(
                            u64::from(r),
                            u64::from(r) + 1,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                        line.store(u64::from(r), Ordering::Release);
                        // Signal the measuring thread and wait for the
                        // next round (or the abort sentinel, set when
                        // the measurer failed to spawn).
                        phase.store(2 * r + 1, Ordering::Release);
                        loop {
                            let p = phase.load(Ordering::Acquire);
                            if p == PHASE_ABORT {
                                return;
                            }
                            if p == 2 * r + 2 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })?
        };
        let measurer = {
            let line = Arc::clone(&line);
            let phase = Arc::clone(&phase);
            let results = Arc::clone(&results);
            std::thread::Builder::new()
                .name("mctop-probe-measurer".into())
                .spawn(move || {
                    pin_to(a);
                    let mut local = Vec::with_capacity(rounds);
                    for r in 0..rounds as u32 {
                        while phase.load(Ordering::Acquire) != 2 * r + 1 {
                            std::hint::spin_loop();
                        }
                        let t = Instant::now();
                        let _ = line.compare_exchange(
                            u64::from(r),
                            u64::from(r) + 1000,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                        let ns = t.elapsed().as_nanos().min(u128::from(u32::MAX)) as u32;
                        local.push(ns);
                        phase.store(2 * r + 2, Ordering::Release);
                    }
                    results.lock().extend(local);
                })
        };
        let measurer = match measurer {
            Ok(h) => h,
            Err(e) => {
                // Unstick the owner (it spins waiting for a measurer
                // that will never exist), then report the failure.
                phase.store(PHASE_ABORT, Ordering::Release);
                let _ = owner.join();
                return Err(e);
            }
        };
        let _ = owner.join();
        let _ = measurer.join();
        let out = results.lock().clone();
        Ok(out)
    }

    /// [`HostProber::measure_batch`] with bounded retry: a transient
    /// failure (spawn error, short batch from a died thread) is retried
    /// up to `MAX_BACKEND_RETRIES` times with exponential backoff
    /// (deterministically capped at `BACKOFF_CAP`), each absorbed
    /// failure counted in [`Prober::backend_retries`]. A persistent
    /// failure degrades to zero samples — like pin failure, the
    /// pipeline keeps running with degraded data rather than dying
    /// mid-collection.
    pub fn measure_pair(&mut self, a: usize, b: usize, rounds: usize) -> Vec<u32> {
        let mut backoff = BACKOFF_BASE;
        for attempt in 0..=MAX_BACKEND_RETRIES {
            match self.attempt_batch(a, b, rounds) {
                Ok(samples) if samples.len() == rounds => return samples,
                Ok(_) | Err(_) => {}
            }
            if attempt < MAX_BACKEND_RETRIES {
                self.backend_retries += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
        }
        vec![0; rounds]
    }

    fn attempt_batch(&mut self, a: usize, b: usize, rounds: usize) -> std::io::Result<Vec<u32>> {
        #[cfg(test)]
        if self.fail_next > 0 {
            self.fail_next -= 1;
            return Err(std::io::Error::other("injected transient failure"));
        }
        self.try_measure_batch(a, b, rounds)
    }
}

impl Prober for HostProber {
    fn num_hwcs(&self) -> usize {
        self.n_hwcs
    }

    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    fn probe(&mut self, a: usize, b: usize) -> u32 {
        if self.cache_pair != (a, b) || self.cache.is_empty() {
            self.cache = self.measure_pair(a, b, self.batch);
            self.cache_pair = (a, b);
        }
        self.cache.pop().unwrap_or(0)
    }

    fn probe_batch(&mut self, a: usize, b: usize, out: &mut Vec<u32>, count: usize) {
        // One thread-pair spawn for the whole batch instead of one per
        // `batch` samples through the per-sample cache.
        let samples = self.measure_pair(a, b, count);
        out.clear();
        out.extend(samples);
    }

    /// The host backend is stateless apart from its sample cache: a
    /// fork is a fresh prober over the same machine, able to pin its
    /// own measurement thread pair to a disjoint context pair. Retry
    /// accounting starts at zero — the phase runners fold each fork's
    /// delta separately.
    fn fork(&self) -> Option<Self> {
        Some(HostProber {
            n_hwcs: self.n_hwcs,
            n_nodes: self.n_nodes,
            cache: Vec::new(),
            cache_pair: (usize::MAX, usize::MAX),
            batch: self.batch,
            backend_retries: 0,
            #[cfg(test)]
            fail_next: 0,
        })
    }

    fn backend_retries(&self) -> u64 {
        self.backend_retries
    }

    fn rdtsc_cost(&mut self) -> u32 {
        // Cost of a back-to-back Instant::now() pair, the timing
        // overhead embedded in every sample.
        let t = Instant::now();
        let inner = Instant::now();
        let _ = inner;
        t.elapsed().as_nanos().min(u128::from(u32::MAX)) as u32
    }

    fn spin_duration(&mut self, ctxs: &[usize], iters: u64) -> u64 {
        let start = Instant::now();
        let handles: Vec<_> = ctxs
            .iter()
            .map(|&c| {
                std::thread::spawn(move || {
                    pin_to(c);
                    let mut x = 0u64;
                    for i in 0..iters {
                        // A dependent chain the optimizer cannot elide.
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                        std::hint::black_box(x);
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    fn machine_name(&self) -> String {
        "host".into()
    }
}

/// Pins the calling thread to one CPU. Failure (permissions, cpuset) is
/// tolerated: measurements degrade but the pipeline still runs.
fn pin_to(cpu: usize) {
    // SAFETY: `cpu_set_t` is a plain bitmask; zeroing it is its
    // documented initialization, CPU_SET writes within its bounds when
    // `cpu < CPU_SETSIZE`, and `sched_setaffinity(0, ...)` only affects
    // the calling thread. No memory is shared or retained by the kernel
    // past the call.
    unsafe {
        if cpu >= libc::CPU_SETSIZE as usize {
            return;
        }
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(cpu, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
    }
}

/// Counts `/sys/devices/system/node/node*` entries; 1 if unavailable.
fn count_numa_nodes() -> usize {
    match std::fs::read_dir("/sys/devices/system/node") {
        Ok(entries) => {
            let n = entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.starts_with("node") && name[4..].chars().all(|c| c.is_ascii_digit())
                })
                .count();
            n.max(1)
        }
        Err(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_shape_is_sane() {
        let p = HostProber::new().unwrap();
        assert!(p.num_hwcs() >= 1);
        assert!(p.num_nodes() >= 1);
    }

    #[test]
    fn probe_returns_samples() {
        let mut p = HostProber::new().unwrap();
        if p.num_hwcs() < 2 {
            return; // Single-CPU environment: nothing to measure.
        }
        let v1 = p.probe(0, 1);
        let v2 = p.probe(0, 1);
        // Communication across contexts takes measurable time.
        assert!(v1 > 0 || v2 > 0);
    }

    #[test]
    fn transient_failures_are_retried_and_counted() {
        let mut p = HostProber::new().unwrap();
        p.fail_next = 2;
        let samples = p.measure_pair(0, 0, 8);
        assert_eq!(samples.len(), 8, "recovered batch has full length");
        assert_eq!(
            Prober::backend_retries(&p),
            2,
            "both absorbed failures counted"
        );
        // A later healthy batch does not add retries.
        let _ = p.measure_pair(0, 0, 4);
        assert_eq!(Prober::backend_retries(&p), 2);
    }

    #[test]
    fn persistent_failure_degrades_to_zeros_after_bounded_retries() {
        let mut p = HostProber::new().unwrap();
        p.fail_next = u32::MAX; // never recovers within the budget
        let samples = p.measure_pair(0, 0, 4);
        assert_eq!(samples, vec![0; 4], "degraded batch keeps its shape");
        assert_eq!(
            Prober::backend_retries(&p),
            u64::from(MAX_BACKEND_RETRIES),
            "retry budget is bounded"
        );
        assert_eq!(
            u32::MAX - p.fail_next,
            MAX_BACKEND_RETRIES + 1,
            "initial attempt plus the retry budget, nothing more"
        );
    }

    #[test]
    fn probe_batch_survives_transient_failures() {
        let mut p = HostProber::new().unwrap();
        if p.num_hwcs() < 2 {
            return; // Single-CPU environment: nothing to measure.
        }
        p.fail_next = 1;
        let mut out = Vec::new();
        p.probe_batch(0, 1, &mut out, 16);
        assert_eq!(out.len(), 16);
        assert!(out.iter().any(|&x| x > 0), "real samples after retry");
        assert_eq!(Prober::backend_retries(&p), 1);
    }

    #[test]
    fn spin_duration_scales_with_iters() {
        // Real wall-clock timing on a possibly loaded CI machine:
        // compare medians of several runs and only require a loose
        // ordering for a 40x work difference.
        let mut p = HostProber::new().unwrap();
        let median = |p: &mut HostProber, iters: u64| -> u64 {
            let mut v: Vec<u64> = (0..5).map(|_| p.spin_duration(&[0], iters)).collect();
            v.sort_unstable();
            v[2]
        };
        let short = median(&mut p, 100_000);
        let long = median(&mut p, 4_000_000);
        assert!(long > short, "long {long} <= short {short}");
    }
}
