//! The real-machine measurement backend (Linux).
//!
//! This is the genuine article: two threads pinned with
//! `sched_setaffinity`, a lock-step schedule over an atomic
//! compare-and-swap on a shared cache line (Fig. 5 of the paper), and
//! wall-clock timing. It needs exactly the three OS facilities the paper
//! lists: the number of contexts, the number of memory nodes, and
//! pinning.
//!
//! Latencies are reported in *nanoseconds* rather than cycles — the
//! clustering and component logic are unit-agnostic, so the pipeline is
//! unchanged. On the container-grade machines this reproduction runs on,
//! the inferred topology is whatever the host really is (often a single
//! level); the simulated backend covers the paper's multi-socket
//! platforms.

use std::sync::atomic::{
    AtomicU32,
    AtomicU64,
    Ordering, //
};
use std::sync::Arc;
use std::time::Instant;

use crate::alg::probe::Prober;

/// A [`Prober`] measuring the machine the process runs on.
#[derive(Debug)]
pub struct HostProber {
    n_hwcs: usize,
    n_nodes: usize,
    /// Cached batch of samples for the current pair (the trait is
    /// per-sample; measuring in batches amortizes thread spawns).
    cache: Vec<u32>,
    cache_pair: (usize, usize),
    batch: usize,
}

impl HostProber {
    /// Discovers the host's context and node counts.
    pub fn new() -> std::io::Result<Self> {
        let n_hwcs = std::thread::available_parallelism()?.get();
        let n_nodes = count_numa_nodes();
        Ok(HostProber {
            n_hwcs,
            n_nodes,
            cache: Vec::new(),
            cache_pair: (usize::MAX, usize::MAX),
            batch: 64,
        })
    }

    /// Measures `rounds` lock-step CAS latencies between two contexts.
    /// Each round: thread `b` CASes the line (bringing it Modified in
    /// its caches), both threads synchronize on a spin barrier, thread
    /// `a` times its own CAS.
    pub fn measure_batch(&self, a: usize, b: usize, rounds: usize) -> Vec<u32> {
        let line = Arc::new(AtomicU64::new(0));
        let phase = Arc::new(AtomicU32::new(0));
        let results = Arc::new(parking_lot::Mutex::new(Vec::with_capacity(rounds)));

        let owner = {
            let line = Arc::clone(&line);
            let phase = Arc::clone(&phase);
            std::thread::spawn(move || {
                pin_to(b);
                for r in 0..rounds as u32 {
                    // Bring the line into Modified state.
                    let _ = line.compare_exchange(
                        u64::from(r),
                        u64::from(r) + 1,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    line.store(u64::from(r), Ordering::Release);
                    // Signal the measuring thread and wait for the next
                    // round.
                    phase.store(2 * r + 1, Ordering::Release);
                    while phase.load(Ordering::Acquire) != 2 * r + 2 {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let measurer = {
            let line = Arc::clone(&line);
            let phase = Arc::clone(&phase);
            let results = Arc::clone(&results);
            std::thread::spawn(move || {
                pin_to(a);
                let mut local = Vec::with_capacity(rounds);
                for r in 0..rounds as u32 {
                    while phase.load(Ordering::Acquire) != 2 * r + 1 {
                        std::hint::spin_loop();
                    }
                    let t = Instant::now();
                    let _ = line.compare_exchange(
                        u64::from(r),
                        u64::from(r) + 1000,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    let ns = t.elapsed().as_nanos().min(u128::from(u32::MAX)) as u32;
                    local.push(ns);
                    phase.store(2 * r + 2, Ordering::Release);
                }
                results.lock().extend(local);
            })
        };
        let _ = owner.join();
        let _ = measurer.join();
        let out = results.lock().clone();
        out
    }
}

impl Prober for HostProber {
    fn num_hwcs(&self) -> usize {
        self.n_hwcs
    }

    fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    fn probe(&mut self, a: usize, b: usize) -> u32 {
        if self.cache_pair != (a, b) || self.cache.is_empty() {
            self.cache = self.measure_batch(a, b, self.batch);
            self.cache_pair = (a, b);
        }
        self.cache.pop().unwrap_or(0)
    }

    fn probe_batch(&mut self, a: usize, b: usize, out: &mut Vec<u32>, count: usize) {
        // One thread-pair spawn for the whole batch instead of one per
        // `batch` samples through the per-sample cache.
        out.clear();
        out.extend(self.measure_batch(a, b, count));
    }

    /// The host backend is stateless apart from its sample cache: a
    /// fork is a fresh prober over the same machine, able to pin its
    /// own measurement thread pair to a disjoint context pair.
    fn fork(&self) -> Option<Self> {
        Some(HostProber {
            n_hwcs: self.n_hwcs,
            n_nodes: self.n_nodes,
            cache: Vec::new(),
            cache_pair: (usize::MAX, usize::MAX),
            batch: self.batch,
        })
    }

    fn rdtsc_cost(&mut self) -> u32 {
        // Cost of a back-to-back Instant::now() pair, the timing
        // overhead embedded in every sample.
        let t = Instant::now();
        let inner = Instant::now();
        let _ = inner;
        t.elapsed().as_nanos().min(u128::from(u32::MAX)) as u32
    }

    fn spin_duration(&mut self, ctxs: &[usize], iters: u64) -> u64 {
        let start = Instant::now();
        let handles: Vec<_> = ctxs
            .iter()
            .map(|&c| {
                std::thread::spawn(move || {
                    pin_to(c);
                    let mut x = 0u64;
                    for i in 0..iters {
                        // A dependent chain the optimizer cannot elide.
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                        std::hint::black_box(x);
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    fn machine_name(&self) -> String {
        "host".into()
    }
}

/// Pins the calling thread to one CPU. Failure (permissions, cpuset) is
/// tolerated: measurements degrade but the pipeline still runs.
fn pin_to(cpu: usize) {
    // SAFETY: `cpu_set_t` is a plain bitmask; zeroing it is its
    // documented initialization, CPU_SET writes within its bounds when
    // `cpu < CPU_SETSIZE`, and `sched_setaffinity(0, ...)` only affects
    // the calling thread. No memory is shared or retained by the kernel
    // past the call.
    unsafe {
        if cpu >= libc::CPU_SETSIZE as usize {
            return;
        }
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(cpu, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
    }
}

/// Counts `/sys/devices/system/node/node*` entries; 1 if unavailable.
fn count_numa_nodes() -> usize {
    match std::fs::read_dir("/sys/devices/system/node") {
        Ok(entries) => {
            let n = entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.starts_with("node") && name[4..].chars().all(|c| c.is_ascii_digit())
                })
                .count();
            n.max(1)
        }
        Err(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_shape_is_sane() {
        let p = HostProber::new().unwrap();
        assert!(p.num_hwcs() >= 1);
        assert!(p.num_nodes() >= 1);
    }

    #[test]
    fn probe_returns_samples() {
        let mut p = HostProber::new().unwrap();
        if p.num_hwcs() < 2 {
            return; // Single-CPU environment: nothing to measure.
        }
        let v1 = p.probe(0, 1);
        let v2 = p.probe(0, 1);
        // Communication across contexts takes measurable time.
        assert!(v1 > 0 || v2 > 0);
    }

    #[test]
    fn spin_duration_scales_with_iters() {
        // Real wall-clock timing on a possibly loaded CI machine:
        // compare medians of several runs and only require a loose
        // ordering for a 40x work difference.
        let mut p = HostProber::new().unwrap();
        let median = |p: &mut HostProber, iters: u64| -> u64 {
            let mut v: Vec<u64> = (0..5).map(|_| p.spin_duration(&[0], iters)).collect();
            v.sort_unstable();
            v[2]
        };
        let short = median(&mut p, 100_000);
        let long = median(&mut p, 4_000_000);
        assert!(long > short, "long {long} <= short {short}");
    }
}
