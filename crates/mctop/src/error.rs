//! Error type of the library.

use std::fmt;

/// Everything that can go wrong while inferring, enriching, loading or
/// validating a topology.
#[derive(Debug)]
pub enum McTopError {
    /// A pair's latency measurements never stabilized below the stdev
    /// threshold, even after the retry escalation of Section 3.5.
    UnstableMeasurements {
        /// The offending context pair.
        pair: (usize, usize),
        /// The best relative standard deviation achieved.
        stdev_frac: f64,
    },
    /// The CDF clustering step could not produce a usable set of
    /// latency clusters (Section 3.6, "Unsuccessful Clustering").
    ClusteringFailed(String),
    /// Component construction found an asymmetric or non-hierarchical
    /// structure (components of unequal cardinality, non-clique groups
    /// below the socket level, a context in two components, ...).
    IrregularTopology(String),
    /// A description file could not be parsed or fails validation.
    InvalidDescription(String),
    /// The requested plugin or backend is unavailable on this platform
    /// (e.g. power measurements on non-Intel machines).
    Unavailable(&'static str),
    /// The topology has no latency level with the required role (e.g. a
    /// hand-written description without a socket level); level-indexed
    /// queries cannot answer.
    MissingLevel {
        /// The role that was looked up ("socket", ...).
        role: &'static str,
    },
    /// Filesystem error while reading/writing description files.
    Io(std::io::Error),
}

impl fmt::Display for McTopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McTopError::UnstableMeasurements { pair, stdev_frac } => write!(
                f,
                "measurements for contexts ({}, {}) never stabilized (stdev {:.1}% of median); \
                 retry with different settings",
                pair.0,
                pair.1,
                stdev_frac * 100.0
            ),
            McTopError::ClusteringFailed(msg) => write!(f, "latency clustering failed: {msg}"),
            McTopError::IrregularTopology(msg) => write!(f, "irregular topology: {msg}"),
            McTopError::InvalidDescription(msg) => write!(f, "invalid description: {msg}"),
            McTopError::Unavailable(what) => write!(f, "unavailable on this platform: {what}"),
            McTopError::MissingLevel { role } => {
                write!(f, "topology has no {role}-level latency cluster")
            }
            McTopError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for McTopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McTopError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for McTopError {
    fn from(e: std::io::Error) -> Self {
        McTopError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = McTopError::UnstableMeasurements {
            pair: (3, 17),
            stdev_frac: 0.21,
        };
        let s = e.to_string();
        assert!(s.contains("(3, 17)"));
        assert!(s.contains("21.0%"));
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = McTopError::from(io);
        assert!(e.source().is_some());
    }
}
