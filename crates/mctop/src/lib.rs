//! # mctop — multi-core topology abstraction
//!
//! Rust reproduction of `libmctop` from *Abstracting Multi-Core
//! Topologies with MCTOP* (Chatzopoulos, Guerraoui, Harris, Trigonakis —
//! EuroSys '17).
//!
//! The crate provides:
//!
//! - [`model::Mctop`]: the MCTOP abstraction (Table 1 of the paper) —
//!   hardware contexts, hwc groups, sockets, memory nodes and
//!   interconnects, linked vertically (hierarchy) and horizontally
//!   (proximity), augmented with latencies, bandwidths, cache and power
//!   measurements.
//! - [`alg`]: MCTOP-ALG (Section 3) — topology inference from
//!   context-to-context communication latencies alone: probe collection
//!   (Fig. 5), CDF clustering, latency normalization, recursive
//!   component construction, and role assignment.
//! - [`enrich`]: the measurement plugins of Section 4 (memory latency,
//!   memory bandwidth, cache latency/size, power).
//! - [`query`]: the topology query engine used by the high-level
//!   policies of Sections 5-6.
//! - [`view`]: [`view::TopoView`], the precomputed index layer over the
//!   query engine — built once per topology, it answers the socket-level
//!   queries with O(1) table lookups and is what the placement, sorting
//!   and runtime layers build on.
//! - [`fmt`]: Graphviz and textual renderings (Figs. 1-3).
//! - [`desc`]: description files (create once, load afterwards), with a
//!   mandatory provenance header and the canonical deterministic
//!   generator behind the committed `descs/` library.
//! - [`registry`]: [`registry::Registry`], the thread-safe loader that
//!   resolves descriptions by machine name and memoizes one shared
//!   [`Arc<TopoView>`](view::TopoView) per topology.
//! - Probe backends: [`backend::SimProber`] over the `mcsim` machine
//!   models, and on Linux [`host::HostProber`] which measures the real
//!   machine the process runs on.
//!
//! # Examples
//!
//! Infer the topology of the paper's Ivy Bridge machine and query it:
//!
//! ```
//! use mctop::alg::ProbeConfig;
//! use mctop::backend::SimProber;
//!
//! let spec = mcsim::presets::ivy();
//! let mut prober = SimProber::noiseless(&spec);
//! let topo = mctop::infer(&mut prober, &ProbeConfig::fast()).unwrap();
//!
//! assert_eq!(topo.num_sockets(), 2);
//! assert_eq!(topo.num_cores(), 20);
//! assert_eq!(topo.smt(), 2);
//! // Contexts 0 and 20 share a core on Ivy (Fig. 6).
//! assert_eq!(topo.get_latency(0, 20), 28);
//! assert_eq!(topo.get_latency(0, 10), 308);
//! ```

#![deny(missing_docs)]

pub mod alg;
pub mod backend;
pub mod desc;
pub mod enrich;
pub mod error;
pub mod fmt;
#[cfg(target_os = "linux")]
pub mod host;
pub mod model;
pub mod policies;
pub mod query;
pub mod registry;
pub mod view;

pub use alg::probe::{
    AdaptiveCfg,
    PairSelection,
    ProbeConfig,
    Prober,
    PruneCfg, //
};
pub use error::McTopError;
pub use model::Mctop;
pub use registry::Registry;
pub use view::TopoView;

/// Runs the full MCTOP-ALG pipeline (Section 3): collects the latency
/// table, clusters and normalizes it, builds components, assigns roles,
/// and returns the topology.
///
/// This is the equivalent of the first `libmctop` run on a machine;
/// enrich the result with [`enrich`] plugins and persist it with
/// [`desc::save`].
pub fn infer<P: Prober>(prober: &mut P, cfg: &ProbeConfig) -> Result<Mctop, McTopError> {
    alg::run(prober, cfg)
}

/// [`infer`] with the collection phase spread over `jobs` forked
/// probers measuring disjoint context pairs concurrently (Section 3.5).
/// Deterministic: the result is byte-identical to [`infer`] for every
/// `jobs` value.
pub fn infer_jobs<P: Prober + Send>(
    prober: &mut P,
    cfg: &ProbeConfig,
    jobs: usize,
) -> Result<Mctop, McTopError> {
    alg::run_jobs(prober, cfg, jobs)
}
