//! High-level portable policies — the motivating examples of
//! Sections 1 and 5 of the paper, written once against the query
//! engine and correct on any machine:
//!
//! - "use one hardware context per core";
//! - "use any two sockets (if available) that minimize latency";
//! - "use two sockets with maximum bandwidth";
//! - "use the maximum number of threads, in the two most remote
//!   sockets, so that each thread has access to at least 3 MB of LLC";
//! - "use n cores that are the closest to core x".
//!
//! All policies take a [`TopoView`]: the caller builds the view once
//! per topology and every policy below is then a cache lookup plus a
//! short loop, instead of a fresh scan over the model arenas.
//!
//! # Examples
//!
//! ```
//! let view = mctop::Registry::shipped().view("ivy").unwrap();
//! // "Use one hardware context per core": 20 physical cores on Ivy.
//! let per_core = mctop::policies::one_hwc_per_core(&view);
//! assert_eq!(per_core.len(), 20);
//! // "Use any two sockets that minimize latency".
//! assert_eq!(mctop::policies::two_sockets_min_latency(&view), Some((0, 1)));
//! ```

use crate::view::TopoView;

/// One hardware context per core, machine-wide, in core order
/// (the "avoid SMT siblings" policy).
pub fn one_hwc_per_core(view: &TopoView) -> Vec<usize> {
    view.cores
        .iter()
        .map(|&cg| view.groups[cg].hwcs[0])
        .collect()
}

/// The two sockets with minimum communication latency, if the machine
/// has at least two sockets.
pub fn two_sockets_min_latency(view: &TopoView) -> Option<(usize, usize)> {
    view.min_latency_socket_pair()
}

/// The two sockets with the highest local memory bandwidth (requires
/// the bandwidth plugin), best first.
pub fn two_sockets_max_bandwidth(view: &TopoView) -> Option<(usize, usize)> {
    let ranked = view.sockets_by_local_bandwidth();
    if ranked.len() < 2 || view.local_bandwidth(ranked[0]).is_none() {
        return None;
    }
    Some((ranked[0], ranked[1]))
}

/// The pair of sockets with maximum communication latency between them
/// (the "two most remote sockets").
pub fn two_most_remote_sockets(view: &TopoView) -> Option<(usize, usize)> {
    view.max_latency_socket_pair()
}

/// The Section-1 composite: as many threads as possible on the two most
/// remote sockets such that each thread keeps at least `llc_per_thread`
/// bytes of LLC. Returns the chosen contexts (unique cores first on
/// each socket). Requires the cache plugin; `None` when the machine has
/// fewer than two sockets or no cache measurements.
pub fn threads_on_remote_sockets_with_llc(
    view: &TopoView,
    llc_per_thread: usize,
) -> Option<Vec<usize>> {
    let (a, b) = two_most_remote_sockets(view)?;
    let llc = view.caches.as_ref()?.last()?.size_estimate;
    if llc_per_thread == 0 {
        return None;
    }
    // Threads per socket bounded by the LLC budget (each socket has its
    // own LLC) and by the socket's context count.
    let per_socket = (llc / llc_per_thread).max(1);
    let mut out = Vec::new();
    for s in [a, b] {
        out.extend(view.socket_hwcs_cores_first(s).iter().take(per_socket));
    }
    Some(out)
}

/// The `n` cores closest to the core of context `x`, by communication
/// latency (excluding `x`'s own core); ties toward lower core ids.
pub fn closest_cores_to(view: &TopoView, x: usize, n: usize) -> Vec<usize> {
    let my_core = view.core_of(x);
    let mut others: Vec<usize> = (0..view.num_cores()).filter(|&c| c != my_core).collect();
    others.sort_by_key(|&c| {
        let rep = view.groups[view.cores[c]].hwcs[0];
        (view.get_latency(x, rep), c)
    });
    others.truncate(n);
    others
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use crate::enrich::{
        enrich_all,
        SimEnricher, //
    };
    use crate::model::Mctop;

    fn enriched(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let mut t = crate::alg::run(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    fn view(spec: &mcsim::MachineSpec) -> TopoView {
        TopoView::build(&enriched(spec)).unwrap()
    }

    #[test]
    fn one_context_per_core_avoids_siblings() {
        let v = view(&mcsim::presets::ivy());
        let picks = one_hwc_per_core(&v);
        assert_eq!(picks.len(), 20);
        let mut cores: Vec<usize> = picks.iter().map(|&h| v.core_of(h)).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 20);
        // No two picks share a core: pairwise latency is never the SMT
        // latency.
        for (i, &a) in picks.iter().enumerate() {
            for &b in picks.iter().skip(i + 1) {
                assert!(v.get_latency(a, b) > 28);
            }
        }
    }

    #[test]
    fn min_latency_sockets_on_opteron_are_an_mcm_pair() {
        let v = view(&mcsim::presets::opteron());
        let (a, b) = two_sockets_min_latency(&v).unwrap();
        assert_eq!(v.socket_latency(a, b), 197);
    }

    #[test]
    fn most_remote_sockets_on_opteron_are_two_hops_apart() {
        let v = view(&mcsim::presets::opteron());
        let (a, b) = two_most_remote_sockets(&v).unwrap();
        assert_eq!(v.socket_latency(a, b), 300);
        assert_eq!(v.socket_hops(a, b), 2);
    }

    #[test]
    fn max_bandwidth_pair_requires_enrichment() {
        let spec = mcsim::presets::westmere();
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let bare = TopoView::build(&crate::alg::run(&mut p, &cfg).unwrap()).unwrap();
        assert!(two_sockets_max_bandwidth(&bare).is_none());
        let v = view(&spec);
        let (a, b) = two_sockets_max_bandwidth(&v).unwrap();
        assert_ne!(a, b);
        let bw_a = v.local_bandwidth(a).unwrap();
        for s in 0..v.num_sockets() {
            assert!(v.local_bandwidth(s).unwrap() <= bw_a + 1e-9);
        }
    }

    #[test]
    fn llc_budget_policy_scales_with_requirement() {
        let v = view(&mcsim::presets::ivy());
        // Ivy LLC ~25 MB: 3 MB per thread allows ~8 threads per socket.
        let picks = threads_on_remote_sockets_with_llc(&v, 3 * 1024 * 1024).unwrap();
        let used = v.sockets_used_by(&picks);
        assert_eq!(used.len(), 2);
        let per_socket = picks.len() / 2;
        assert!((6..=9).contains(&per_socket), "{per_socket} threads/socket");
        // A tighter budget admits fewer threads.
        let fewer = threads_on_remote_sockets_with_llc(&v, 12 * 1024 * 1024).unwrap();
        assert!(fewer.len() < picks.len());
        // The policy is meaningless with a zero budget.
        assert!(threads_on_remote_sockets_with_llc(&v, 0).is_none());
    }

    #[test]
    fn closest_cores_respect_topology() {
        let v = view(&mcsim::presets::clustered_l2());
        // Context 0's core shares an L2 with exactly one other core:
        // that core must come first.
        let order = closest_cores_to(&v, 0, 4);
        assert_eq!(order.len(), 4);
        let first_rep = v.groups[v.cores[order[0]]].hwcs[0];
        assert_eq!(v.get_latency(0, first_rep), 55);
        // And no remote-socket core before a local one.
        let sockets: Vec<usize> = order
            .iter()
            .map(|&c| v.groups[v.cores[c]].hwcs[0])
            .map(|h| v.socket_of(h))
            .collect();
        assert_eq!(sockets, vec![0, 0, 0, 0]);
    }
}
