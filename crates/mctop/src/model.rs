//! The MCTOP topology abstraction: the structures of Table 1 of the
//! paper, linked vertically (hierarchy) and horizontally (proximity),
//! plus the enriched low-level measurements of Section 4.
//!
//! Structures live in arenas inside [`Mctop`] and reference each other
//! by index. This mirrors the pointer web of the C library while staying
//! `Send + Sync` and trivially serializable.

use serde::{
    Deserialize,
    Serialize, //
};

/// A latency cluster: minimum, median and maximum of the raw values that
/// MCTOP-ALG grouped together (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatTriplet {
    /// Smallest raw value in the cluster.
    pub min: u32,
    /// Median (the value used for normalization).
    pub median: u32,
    /// Largest raw value in the cluster.
    pub max: u32,
}

impl LatTriplet {
    /// A degenerate triplet for an exact value.
    pub fn exact(v: u32) -> Self {
        LatTriplet {
            min: v,
            median: v,
            max: v,
        }
    }
}

/// The role MCTOP-ALG assigned to a latency level (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LevelRole {
    /// Level 0: a hardware context with itself.
    SelfLevel,
    /// Hardware contexts of the same core (SMT).
    Smt,
    /// An intermediate group inside a socket (e.g. cores sharing an L2).
    IntraGroup,
    /// The socket level.
    Socket,
    /// Communication between sockets over `hops` interconnect hops.
    CrossSocket {
        /// Interconnect hops (1 = direct link).
        hops: usize,
    },
}

/// Metadata of one latency level of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyLevel {
    /// Index in `Mctop::levels` (0 = self).
    pub index: usize,
    /// The latency cluster of this level.
    pub latency: LatTriplet,
    /// Assigned role.
    pub role: LevelRole,
}

/// `hw_context` of Table 1: the lowest scheduling unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwContext {
    /// OS id of this context (index into `Mctop::hwcs`).
    pub id: usize,
    /// Parent core (index into `Mctop::cores`).
    pub core: usize,
    /// Parent socket (index into `Mctop::sockets`).
    pub socket: usize,
    /// Successor in proximity order: the distinct context with the
    /// smallest communication latency (ties broken by id). The
    /// "horizontal" link of Section 2.
    pub next_closest: usize,
}

/// `hwc_group` of Table 1: a group of contexts or of smaller groups —
/// a core, a cluster of cores sharing a cache, or a socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwcGroup {
    /// Index into `Mctop::groups`.
    pub id: usize,
    /// Latency level of this group (index into `Mctop::levels`).
    pub level: usize,
    /// Communication latency between members, cycles (level median).
    pub latency: u32,
    /// All hardware contexts contained, ascending OS id.
    pub hwcs: Vec<usize>,
    /// Child groups (`Mctop::groups` indices); empty for core-level
    /// groups whose children are the `hwcs` themselves.
    pub children: Vec<usize>,
    /// Parent group, if any.
    pub parent: Option<usize>,
    /// The socket this group belongs to (its own index for sockets).
    pub socket: Option<usize>,
}

/// `socket` of Table 1: a socket-level hwc group plus NUMA and
/// interconnect information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Socket {
    /// Socket index (index into `Mctop::sockets`).
    pub id: usize,
    /// The socket's group in `Mctop::groups`.
    pub group: usize,
    /// Hardware contexts of this socket, ascending OS id.
    pub hwcs: Vec<usize>,
    /// Core groups of this socket (`Mctop::groups` indices).
    pub cores: Vec<usize>,
    /// Local memory node, once known (provisional until the memory
    /// plugin measures it; see `Mctop::node_assignment`).
    pub local_node: Option<usize>,
    /// Measured load latency to every node, cycles (memory plugin).
    pub mem_latencies: Vec<u32>,
    /// Measured bandwidth to every node, GB/s (bandwidth plugin).
    pub mem_bandwidths: Vec<f64>,
    /// Bandwidth a single core extracts from the local node, GB/s
    /// (bandwidth plugin; drives the RR_SCALE placement policy).
    pub single_core_bw: Option<f64>,
}

impl Socket {
    /// Bandwidth to the local node, if measured.
    pub fn local_bandwidth(&self) -> Option<f64> {
        let node = self.local_node?;
        self.mem_bandwidths.get(node).copied()
    }

    /// Latency to the local node, if measured.
    pub fn local_latency(&self) -> Option<u32> {
        let node = self.local_node?;
        self.mem_latencies.get(node).copied()
    }

    /// Streaming threads needed to saturate this socket's local memory
    /// controller: `ceil(local_bw / single_core_bw)`, at least 1. This
    /// is the single definition of the saturation arithmetic shared by
    /// the RR_SCALE placement policy and the `mctop-alloc` plans;
    /// `None` when the bandwidth plugin has not measured the socket.
    pub fn threads_to_saturate(&self) -> Option<usize> {
        let local = self.local_bandwidth()?;
        let single = self.single_core_bw?;
        if single <= 0.0 {
            return None;
        }
        Some(((local / single).ceil() as usize).max(1))
    }
}

/// `node` of Table 1: a memory node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node index.
    pub id: usize,
    /// Socket hosting this node's controller, once known.
    pub home_socket: Option<usize>,
    /// Capacity in GB, if known.
    pub capacity_gb: Option<f64>,
}

/// `interconnect` of Table 1: the connection between two sockets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectLink {
    /// Lower socket id.
    pub a: usize,
    /// Higher socket id.
    pub b: usize,
    /// Context-to-context latency across this connection, cycles.
    pub latency: u32,
    /// Hops (1 = direct; >1 means the sockets are not directly wired
    /// and traffic is forwarded, the "lvl 4 (2 hops)" of Figs. 1-2).
    pub hops: usize,
    /// Measured cross-socket memory bandwidth, GB/s (bandwidth plugin).
    pub bandwidth: Option<f64>,
}

/// How the socket->node mapping in this topology was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeAssignment {
    /// Guessed (identity) — no measurement or OS information yet.
    Provisional,
    /// Reported by the operating system (may be wrong; cf. footnote 1).
    OsReported,
    /// Measured by the memory-latency plugin: each socket's local node
    /// is the node it reaches with minimum latency.
    Measured,
}

/// One measured cache level (cache plugin, Section 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelInfo {
    /// Level name ("L1", "L2", "LLC").
    pub name: String,
    /// Estimated size in bytes (from the latency knee).
    pub size_estimate: usize,
    /// Size as reported by the OS, if available.
    pub os_size: Option<usize>,
    /// Estimated load-to-use latency, cycles.
    pub latency: u32,
}

/// Power measurements (power plugin; Intel-only in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerInfo {
    /// Idle power of the whole processor, W.
    pub idle_w: f64,
    /// Power with every context active and DRAM loaded, W.
    pub full_w: f64,
    /// Per-socket idle (base) power, W.
    pub socket_base_w: f64,
    /// Marginal power of the first context of a core, W.
    pub first_ctx_w: f64,
    /// Marginal power of the second context of an active core, W.
    pub second_ctx_w: f64,
    /// DRAM power of one active socket, W.
    pub dram_socket_w: f64,
}

impl PowerInfo {
    /// Estimated power (W) of running the given contexts, using the
    /// same accounting the paper's Fig. 7 output shows.
    pub fn estimate(&self, topo: &Mctop, active_hwcs: &[usize], with_dram: bool) -> f64 {
        let mut first = vec![false; topo.num_cores()];
        let mut extra = vec![0usize; topo.num_cores()];
        let mut socket_active = vec![false; topo.num_sockets()];
        for &h in active_hwcs {
            let core = topo.hwcs[h].core;
            if first[core] {
                extra[core] += 1;
            } else {
                first[core] = true;
            }
            socket_active[topo.hwcs[h].socket] = true;
        }
        let mut w = topo.num_sockets() as f64 * self.socket_base_w;
        for core in 0..topo.num_cores() {
            if first[core] {
                w += self.first_ctx_w + extra[core] as f64 * self.second_ctx_w;
            }
        }
        if with_dram {
            w += socket_active.iter().filter(|&&a| a).count() as f64 * self.dram_socket_w;
        }
        w
    }
}

/// `mctop` of Table 1: the root structure linking everything together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mctop {
    /// Machine name (free-form; presets use "ivy", "westmere", ...).
    pub name: String,
    /// Whether the machine has SMT and how many contexts share a core.
    pub smt: usize,
    /// Latency levels, ascending.
    pub levels: Vec<LatencyLevel>,
    /// All hardware contexts, indexed by OS id.
    pub hwcs: Vec<HwContext>,
    /// Group arena: cores, intermediate groups, sockets.
    pub groups: Vec<HwcGroup>,
    /// Core-level groups, ordered by smallest member context.
    pub cores: Vec<usize>,
    /// Sockets.
    pub sockets: Vec<Socket>,
    /// Memory nodes.
    pub nodes: Vec<Node>,
    /// Socket-to-socket connections (every pair, with hop counts).
    pub links: Vec<InterconnectLink>,
    /// Normalized context-to-context latency table (row-major, N x N).
    pub lat_table: Vec<u32>,
    /// Provenance of the socket->node mapping.
    pub node_assignment: NodeAssignment,
    /// Cache measurements, once the cache plugin ran.
    pub caches: Option<Vec<CacheLevelInfo>>,
    /// Power measurements, once the power plugin ran.
    pub power: Option<PowerInfo>,
    /// Nominal frequency in GHz, if known (used to convert cycles to
    /// wall-clock time in reports; measurement-only topologies leave it
    /// unset).
    pub freq_ghz: Option<f64>,
}

impl Mctop {
    /// Number of hardware contexts.
    pub fn num_hwcs(&self) -> usize {
        self.hwcs.len()
    }

    /// Number of physical cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Number of memory nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Contexts per core (1 = no SMT).
    pub fn smt(&self) -> usize {
        self.smt
    }

    /// Whether the machine has SMT.
    pub fn has_smt(&self) -> bool {
        self.smt > 1
    }

    /// Normalized communication latency between two contexts
    /// (`mctop_get_latency` of Section 2).
    pub fn get_latency(&self, a: usize, b: usize) -> u32 {
        let n = self.num_hwcs();
        assert!(a < n && b < n, "context out of range");
        self.lat_table[a * n + b]
    }

    /// The local memory node of a context
    /// (`mctop_get_local_node` of Section 2).
    pub fn get_local_node(&self, hwc: usize) -> Option<usize> {
        self.sockets[self.hwcs[hwc].socket].local_node
    }

    /// Core group ids of a socket (`mctop_socket_get_cores`).
    pub fn socket_get_cores(&self, socket: usize) -> &[usize] {
        &self.sockets[socket].cores
    }

    /// Hardware contexts of a socket.
    pub fn socket_get_hwcs(&self, socket: usize) -> &[usize] {
        &self.sockets[socket].hwcs
    }

    /// The socket of a context.
    pub fn socket_of(&self, hwc: usize) -> usize {
        self.hwcs[hwc].socket
    }

    /// The core group of a context.
    pub fn core_of(&self, hwc: usize) -> &HwcGroup {
        &self.groups[self.hwcs[hwc].core_group_id(self)]
    }

    /// The interconnect link record for a socket pair.
    pub fn link(&self, a: usize, b: usize) -> Option<&InterconnectLink> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.links.iter().find(|l| l.a == lo && l.b == hi)
    }

    /// Maximum latency level of the machine.
    pub fn max_latency(&self) -> u32 {
        self.levels.last().map_or(0, |l| l.latency.median)
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} sockets x {} cores x {} contexts ({} hw contexts, {} nodes, {} levels)",
            self.name,
            self.num_sockets(),
            self.num_cores() / self.num_sockets().max(1),
            self.smt,
            self.num_hwcs(),
            self.num_nodes(),
            self.levels.len()
        )
    }
}

impl HwContext {
    /// The group id (arena index) of this context's core.
    fn core_group_id(&self, topo: &Mctop) -> usize {
        topo.cores[self.core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lat_triplet_exact() {
        let t = LatTriplet::exact(112);
        assert_eq!(t.min, 112);
        assert_eq!(t.median, 112);
        assert_eq!(t.max, 112);
    }

    #[test]
    fn power_info_estimate_counts_cores_and_smt() {
        // A hand-built 1-socket, 2-core, SMT-2 topology is enough to
        // test the accounting.
        let topo = tiny_topology();
        let p = PowerInfo {
            idle_w: 10.0,
            full_w: 30.0,
            socket_base_w: 10.0,
            first_ctx_w: 4.0,
            second_ctx_w: 1.0,
            dram_socket_w: 20.0,
        };
        // One context: base + core.
        assert_eq!(p.estimate(&topo, &[0], false), 14.0);
        // Both contexts of core 0: base + core + smt.
        assert_eq!(p.estimate(&topo, &[0, 2], false), 15.0);
        // Spread on two cores: base + 2 * core.
        assert_eq!(p.estimate(&topo, &[0, 1], false), 18.0);
        // DRAM charged once for the single active socket.
        assert_eq!(p.estimate(&topo, &[0], true), 34.0);
    }

    /// 1 socket, 2 cores, 2 SMT contexts: contexts (0,2) on core 0 and
    /// (1,3) on core 1 (CoresFirst numbering).
    pub(crate) fn tiny_topology() -> Mctop {
        let levels = vec![
            LatencyLevel {
                index: 0,
                latency: LatTriplet::exact(0),
                role: LevelRole::SelfLevel,
            },
            LatencyLevel {
                index: 1,
                latency: LatTriplet::exact(30),
                role: LevelRole::Smt,
            },
            LatencyLevel {
                index: 2,
                latency: LatTriplet::exact(100),
                role: LevelRole::Socket,
            },
        ];
        let groups = vec![
            HwcGroup {
                id: 0,
                level: 1,
                latency: 30,
                hwcs: vec![0, 2],
                children: vec![],
                parent: Some(2),
                socket: Some(0),
            },
            HwcGroup {
                id: 1,
                level: 1,
                latency: 30,
                hwcs: vec![1, 3],
                children: vec![],
                parent: Some(2),
                socket: Some(0),
            },
            HwcGroup {
                id: 2,
                level: 2,
                latency: 100,
                hwcs: vec![0, 1, 2, 3],
                children: vec![0, 1],
                parent: None,
                socket: Some(0),
            },
        ];
        let hwcs = vec![
            HwContext {
                id: 0,
                core: 0,
                socket: 0,
                next_closest: 2,
            },
            HwContext {
                id: 1,
                core: 1,
                socket: 0,
                next_closest: 3,
            },
            HwContext {
                id: 2,
                core: 0,
                socket: 0,
                next_closest: 0,
            },
            HwContext {
                id: 3,
                core: 1,
                socket: 0,
                next_closest: 1,
            },
        ];
        let mut lat = vec![100u32; 16];
        for i in 0..4 {
            lat[i * 4 + i] = 0;
        }
        lat[2] = 30;
        lat[2 * 4] = 30;
        lat[4 + 3] = 30;
        lat[3 * 4 + 1] = 30;
        Mctop {
            name: "tiny".into(),
            smt: 2,
            levels,
            hwcs,
            groups,
            cores: vec![0, 1],
            sockets: vec![Socket {
                id: 0,
                group: 2,
                hwcs: vec![0, 1, 2, 3],
                cores: vec![0, 1],
                local_node: Some(0),
                mem_latencies: vec![250],
                mem_bandwidths: vec![20.0],
                single_core_bw: Some(6.0),
            }],
            nodes: vec![Node {
                id: 0,
                home_socket: Some(0),
                capacity_gb: None,
            }],
            links: vec![],
            lat_table: lat,
            node_assignment: NodeAssignment::Provisional,
            caches: None,
            power: None,
            freq_ghz: None,
        }
    }

    #[test]
    fn tiny_topology_queries() {
        let t = tiny_topology();
        assert_eq!(t.num_hwcs(), 4);
        assert_eq!(t.num_cores(), 2);
        assert_eq!(t.num_sockets(), 1);
        assert_eq!(t.get_latency(0, 2), 30);
        assert_eq!(t.get_latency(0, 1), 100);
        assert_eq!(t.get_local_node(3), Some(0));
        assert_eq!(t.max_latency(), 100);
        assert!(t.summary().contains("tiny"));
        assert!(t.link(0, 0).is_none());
    }
}
