//! The topology query engine (Section 5: "Essentially, MCTOP provides a
//! topology query engine for multi-cores").
//!
//! These queries are the vocabulary in which the high-level performance
//! policies are written: closest sockets, maximum-bandwidth sockets,
//! maximum latency among a set of contexts, and so on. None of them
//! mention a concrete machine — that is what makes policies portable.
//!
//! The `impl Mctop` methods here are thin wrappers over the reference
//! implementations in [`crate::view`]'s `naive` module; they recompute
//! their answer on every call. Hot paths (placement construction, merge
//! trees, policy loops) should build a [`crate::view::TopoView`] once
//! and use its precomputed O(1) lookups instead.
//!
//! # Examples
//!
//! ```
//! let topo = mctop::Registry::shipped().topo("ivy").unwrap();
//! // Ivy has two sockets 308 cycles apart (Fig. 6).
//! assert_eq!(topo.closest_sockets(0), vec![1]);
//! assert_eq!(topo.socket_latency(0, 1), 308);
//! // Contexts 0 and 20 are SMT siblings of core 0 on socket 0.
//! assert_eq!(topo.socket_of(20), 0);
//! ```

use crate::error::McTopError;
use crate::model::Mctop;
use crate::view::naive;

impl Mctop {
    /// Sockets sorted by communication latency from `socket`, closest
    /// first (excluding `socket` itself). Ties break toward lower ids.
    pub fn closest_sockets(&self, socket: usize) -> Vec<usize> {
        naive::closest_sockets(self, socket)
    }

    /// Context-to-context latency between two sockets (via their link
    /// record; `u32::MAX` if unknown).
    pub fn socket_latency(&self, a: usize, b: usize) -> u32 {
        naive::socket_latency(self, a, b)
    }

    /// Index of the socket level in `levels`, if MCTOP-ALG assigned
    /// one. Inferred topologies always have a socket level; `None` can
    /// only come out of hand-edited description files.
    pub fn socket_level_index(&self) -> Option<usize> {
        naive::socket_level_index(self)
    }

    /// Like [`Mctop::socket_level_index`], but failing loudly instead
    /// of leaving the caller to misattribute level 0.
    pub fn require_socket_level(&self) -> Result<usize, McTopError> {
        self.socket_level_index()
            .ok_or(McTopError::MissingLevel { role: "socket" })
    }

    /// Median intra-socket communication latency (the socket level's
    /// median; falls back to the highest intra-socket level on
    /// topologies without a socket level).
    pub fn intra_socket_latency(&self) -> u32 {
        naive::intra_socket_latency(self)
    }

    /// The pair of distinct sockets with minimum latency, if the machine
    /// has at least two sockets ("use any two sockets that minimize
    /// latency", Section 1).
    pub fn min_latency_socket_pair(&self) -> Option<(usize, usize)> {
        naive::min_latency_socket_pair(self)
    }

    /// The pair of distinct sockets with maximum latency (the "two most
    /// remote sockets").
    pub fn max_latency_socket_pair(&self) -> Option<(usize, usize)> {
        naive::max_latency_socket_pair(self)
    }

    /// Sockets sorted by local memory bandwidth, descending (requires
    /// the bandwidth plugin). Sockets without measurements sort last.
    pub fn sockets_by_local_bandwidth(&self) -> Vec<usize> {
        naive::sockets_by_local_bandwidth(self)
    }

    /// The socket with the maximum local memory bandwidth.
    pub fn max_bandwidth_socket(&self) -> usize {
        self.sockets_by_local_bandwidth()[0]
    }

    /// Maximum communication latency between any two of the given
    /// contexts: the backoff quantum of the "educated backoffs" policy
    /// (Section 5).
    pub fn max_latency_between(&self, hwcs: &[usize]) -> u32 {
        let mut max = 0;
        for (i, &a) in hwcs.iter().enumerate() {
            for &b in hwcs.iter().skip(i + 1) {
                max = max.max(self.get_latency(a, b));
            }
        }
        max
    }

    /// Minimum local bandwidth among the sockets used by the given
    /// contexts (the "Min bandwidth" line of Fig. 7).
    pub fn min_bandwidth_of(&self, hwcs: &[usize]) -> Option<f64> {
        let mut min: Option<f64> = None;
        for s in self.sockets_used_by(hwcs) {
            let bw = self.sockets[s].local_bandwidth()?;
            min = Some(min.map_or(bw, |m: f64| m.min(bw)));
        }
        min
    }

    /// The distinct sockets used by the given contexts, ascending.
    pub fn sockets_used_by(&self, hwcs: &[usize]) -> Vec<usize> {
        let mut s: Vec<usize> = hwcs.iter().map(|&h| self.hwcs[h].socket).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// All contexts of the socket, unique cores first (first context of
    /// every core, then second contexts, ...). This is the iteration
    /// order of the `CON_CORE`-flavoured policies.
    pub fn socket_hwcs_cores_first(&self, socket: usize) -> Vec<usize> {
        naive::socket_hwcs_cores_first(self, socket)
    }

    /// Contexts of a socket in compact order (all contexts of core 0,
    /// then core 1, ...). Iteration order of `CON_HWC`.
    pub fn socket_hwcs_compact(&self, socket: usize) -> Vec<usize> {
        naive::socket_hwcs_compact(self, socket)
    }

    /// Walks sockets in a bandwidth-then-proximity order: start from the
    /// socket with maximum local bandwidth, then repeatedly append the
    /// unvisited socket best connected (lowest latency) to the last one.
    /// This is the socket order of the CON_* policies of Section 6.
    pub fn socket_order_bandwidth_proximity(&self) -> Vec<usize> {
        naive::socket_order_bandwidth_proximity(self)
    }

    /// Cross-socket bandwidth between two sockets, if measured.
    pub fn cross_bandwidth(&self, a: usize, b: usize) -> Option<f64> {
        self.link(a, b).and_then(|l| l.bandwidth)
    }

    /// Estimated LLC share (bytes) available to each of `k` threads
    /// placed on one socket — policies like "each thread has access to
    /// at least 3 MB of LLC" (Section 1) build on this.
    pub fn llc_share_per_thread(&self, k: usize) -> Option<usize> {
        let caches = self.caches.as_ref()?;
        let llc = caches.last()?;
        if k == 0 {
            return Some(llc.size_estimate);
        }
        Some(llc.size_estimate / k)
    }
}

#[cfg(test)]
mod tests {
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use crate::model::Mctop;
    use mcsim::presets;

    fn infer(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        crate::alg::run(&mut p, &cfg).unwrap()
    }

    #[test]
    fn closest_sockets_on_opteron_prefers_mcm_partner() {
        let t = infer(&presets::opteron());
        let order = t.closest_sockets(0);
        // Socket 1 (MCM partner, 197 cy) first; 2-hop sockets last.
        assert_eq!(order[0], 1);
        let last = *order.last().unwrap();
        assert_eq!(t.socket_latency(0, last), 300);
    }

    #[test]
    fn min_latency_pair_is_an_mcm_pair() {
        let t = infer(&presets::opteron());
        let (a, b) = t.min_latency_socket_pair().unwrap();
        assert_eq!(t.socket_latency(a, b), 197);
    }

    #[test]
    fn max_latency_between_spans_sockets() {
        let t = infer(&presets::synthetic_small());
        // Contexts on the same socket.
        let same = t.max_latency_between(&[0, 1, 2]);
        assert_eq!(same, 100);
        // Contexts across sockets.
        let cross = t.max_latency_between(&[0, 1, 4]);
        assert_eq!(cross, 290);
        // SMT pair only.
        assert_eq!(t.max_latency_between(&[0, 8]), 30);
        assert_eq!(t.max_latency_between(&[3]), 0);
    }

    #[test]
    fn cores_first_order_interleaves_smt() {
        let t = infer(&presets::synthetic_small());
        let order = t.socket_hwcs_cores_first(0);
        // Socket 0 of synth-small: cores {0,8},{1,9},{2,10},{3,11}.
        assert_eq!(order, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        let compact = t.socket_hwcs_compact(0);
        assert_eq!(compact, vec![0, 8, 1, 9, 2, 10, 3, 11]);
    }

    #[test]
    fn socket_order_covers_all_sockets() {
        for spec in [presets::synthetic_small(), presets::no_smt_small()] {
            let t = infer(&spec);
            let order = t.socket_order_bandwidth_proximity();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..t.num_sockets()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sockets_used_by_dedups() {
        let t = infer(&presets::synthetic_small());
        assert_eq!(t.sockets_used_by(&[0, 1, 8]), vec![0]);
        assert_eq!(t.sockets_used_by(&[0, 4]), vec![0, 1]);
    }
}
