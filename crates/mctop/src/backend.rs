//! The simulated measurement backend: adapts `mcsim`'s latency oracle to
//! the [`Prober`] interface.
//!
//! This is the stand-in for the paper's five physical machines (see
//! DESIGN.md): the inference algorithm sees exactly the three OS
//! facilities it needs (context count, node count, "pinning" — here,
//! choosing which simulated contexts the measurement pair occupies) and
//! raw noisy latency samples.

use mcsim::{
    LatencyOracle,
    MachineSpec,
    NoiseCfg, //
};

use crate::alg::probe::{
    ProbeStream,
    Prober, //
};

/// A [`Prober`] over a simulated machine.
#[derive(Debug, Clone)]
pub struct SimProber<'m> {
    oracle: LatencyOracle<'m>,
    spec: &'m MachineSpec,
}

impl<'m> SimProber<'m> {
    /// Prober with the default noise model and DVFS enabled.
    pub fn new(spec: &'m MachineSpec, seed: u64) -> Self {
        SimProber {
            oracle: LatencyOracle::new(spec, seed),
            spec,
        }
    }

    /// Prober with explicit noise (DVFS stays on).
    pub fn with_noise(spec: &'m MachineSpec, seed: u64, noise: NoiseCfg) -> Self {
        SimProber {
            oracle: LatencyOracle::with_cfg(spec, seed, noise, mcsim::DvfsCfg::default()),
            spec,
        }
    }

    /// Noise-free, DVFS-free prober (deterministic inference).
    pub fn noiseless(spec: &'m MachineSpec) -> Self {
        SimProber {
            oracle: LatencyOracle::noiseless(spec),
            spec,
        }
    }

    /// The underlying machine spec (ground truth for tests).
    pub fn spec(&self) -> &MachineSpec {
        self.spec
    }

    /// Raw probes issued so far.
    pub fn probes_issued(&self) -> u64 {
        self.oracle.probe_count()
    }
}

impl Prober for SimProber<'_> {
    fn num_hwcs(&self) -> usize {
        self.spec.total_hwcs()
    }

    fn num_nodes(&self) -> usize {
        self.spec.nodes
    }

    fn probe(&mut self, a: usize, b: usize) -> u32 {
        self.oracle.probe_raw(a, b)
    }

    fn rdtsc_cost(&mut self) -> u32 {
        self.oracle.rdtsc_cost_estimate()
    }

    fn spin_duration(&mut self, ctxs: &[usize], iters: u64) -> u64 {
        self.oracle.spin_duration(ctxs, iters)
    }

    fn warmup(&mut self, ctx: usize) {
        self.oracle.wait_max_freq(ctx);
    }

    fn begin_stream(&mut self, stream: ProbeStream) {
        self.oracle.reseed_stream(stream.tag());
    }

    /// Simulated samples are pure functions of their stream, so
    /// concurrent measurement needs no round isolation.
    fn concurrent_pairs_interfere(&self) -> bool {
        false
    }

    /// Forks share the machine spec, the noise configuration, and the
    /// DVFS warm-up state accumulated so far; with the per-stream
    /// reseeding of [`Prober::begin_stream`] their samples for a given
    /// stream are identical to the parent's, so disjoint pairs can be
    /// measured concurrently without changing any result.
    fn fork(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn machine_name(&self) -> String {
        self.spec.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::presets;

    #[test]
    fn prober_reports_machine_shape() {
        let spec = presets::ivy();
        let p = SimProber::noiseless(&spec);
        assert_eq!(p.num_hwcs(), 40);
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.machine_name(), "ivy");
    }

    #[test]
    fn probe_counts_accumulate() {
        let spec = presets::synthetic_small();
        let mut p = SimProber::noiseless(&spec);
        p.probe(0, 1);
        p.probe(0, 2);
        assert_eq!(p.probes_issued(), 2);
    }
}
