//! Description files (Section 2: "MCTOP topologies are stored in
//! description files, which are created by libmctop once and are then
//! used to load the topology").
//!
//! The format is versioned JSON — human-inspectable like the original
//! `.mct` files, and stable across library versions thanks to the
//! explicit version gate.

use std::path::Path;

use serde::{
    Deserialize,
    Serialize, //
};

use crate::alg::validate;
use crate::error::McTopError;
use crate::model::Mctop;

/// Current description-file format version.
pub const VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct DescFile {
    version: u32,
    topology: Mctop,
}

/// Serializes a topology to a description string.
pub fn to_string(topo: &Mctop) -> Result<String, McTopError> {
    serde_json::to_string_pretty(&DescFile {
        version: VERSION,
        topology: topo.clone(),
    })
    .map_err(|e| McTopError::InvalidDescription(e.to_string()))
}

/// Parses and validates a description string.
pub fn from_str(s: &str) -> Result<Mctop, McTopError> {
    let file: DescFile =
        serde_json::from_str(s).map_err(|e| McTopError::InvalidDescription(e.to_string()))?;
    if file.version != VERSION {
        return Err(McTopError::InvalidDescription(format!(
            "unsupported description version {} (expected {VERSION})",
            file.version
        )));
    }
    validate::validate(&file.topology)?;
    Ok(file.topology)
}

/// Writes the description file for a topology.
pub fn save(topo: &Mctop, path: &Path) -> Result<(), McTopError> {
    std::fs::write(path, to_string(topo)?)?;
    Ok(())
}

/// Loads a previously saved topology ("created once, then used to load
/// the topology").
pub fn load(path: &Path) -> Result<Mctop, McTopError> {
    let s = std::fs::read_to_string(path)?;
    from_str(&s)
}

/// Default description-file name for a machine.
pub fn default_filename(machine_name: &str) -> String {
    format!("{machine_name}.mct.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use mcsim::presets;

    fn infer(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        crate::alg::run(&mut p, &cfg).unwrap()
    }

    #[test]
    fn roundtrip_preserves_topology() {
        let topo = infer(&presets::synthetic_small());
        let s = to_string(&topo).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn file_roundtrip() {
        let topo = infer(&presets::no_smt_small());
        let dir = std::env::temp_dir();
        let path = dir.join(default_filename(&topo.name));
        save(&topo, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(topo, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_rejected() {
        let topo = infer(&presets::synthetic_small());
        let s = to_string(&topo)
            .unwrap()
            .replace("\"version\": 1", "\"version\": 99");
        let err = from_str(&s).unwrap_err();
        assert!(matches!(err, McTopError::InvalidDescription(_)));
    }

    #[test]
    fn corrupt_payload_rejected_by_validation() {
        let topo = infer(&presets::synthetic_small());
        let s = to_string(&topo).unwrap();
        // Surgical corruption: make the latency table asymmetric.
        let mut v: serde_json::Value = serde_json::from_str(&s).unwrap();
        v["topology"]["lat_table"][1] = serde_json::json!(9999);
        let res = from_str(&v.to_string());
        assert!(matches!(res, Err(McTopError::IrregularTopology(_))));
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str("not json").is_err());
        assert!(from_str("{}").is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/mctop.json")).unwrap_err();
        assert!(matches!(err, McTopError::Io(_)));
    }
}
