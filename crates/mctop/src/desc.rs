//! Description files (Section 2: "MCTOP topologies are stored in
//! description files, which are created by libmctop once and are then
//! used to load the topology").
//!
//! The format is versioned JSON — human-inspectable like the original
//! `.mct` files, and stable across library versions thanks to the
//! explicit version gate. Every file carries a [`Provenance`] header
//! recording how it was produced (machine name, probe configuration,
//! seed, generator), so a loaded topology can always be traced back to
//! the inference run that created it and regenerated bit-for-bit. A
//! payload without the header is rejected with
//! [`McTopError::InvalidDescription`] — a matching `version` number
//! alone is not enough to accept a file.
//!
//! [`canonical`] is the single source of truth for the committed
//! `descs/` library: a deterministic (noiseless, fixed-config)
//! inference plus full enrichment. `mct regen-descs`, the shipped
//! registry and the golden tests all go through it.
//!
//! # Examples
//!
//! ```
//! // Parse a shipped description and inspect its provenance header.
//! let text = mctop::registry::shipped_source("ivy").unwrap();
//! let (topo, prov) = mctop::desc::from_str_full(text).unwrap();
//! assert_eq!(topo.name, "ivy");
//! assert_eq!(prov.machine, "ivy");
//! assert!(prov.enriched);
//! assert_eq!(prov.seed, None); // canonical descriptions are noiseless
//! ```

use std::path::Path;

use serde::{
    Deserialize,
    Serialize, //
};

use crate::alg::probe::ProbeConfig;
use crate::alg::validate;
use crate::backend::SimProber;
use crate::enrich::{
    enrich_all,
    SimEnricher, //
};
use crate::error::McTopError;
use crate::model::Mctop;

/// Current description-file format version. Version 2 added the
/// mandatory provenance header.
pub const VERSION: u32 = 2;

/// The generator string written by the canonical regeneration path.
pub const CANONICAL_GENERATOR: &str = "mct regen-descs";

/// How a description file was produced: the header embedded at the top
/// of every file.
///
/// `format_version` must agree with the file's `version` field and
/// `machine` with the topology's own name; [`from_str`] rejects files
/// where they diverge, so a topology pasted into a newer envelope (or
/// renamed on disk) does not load silently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Format version the file was written with.
    pub format_version: u32,
    /// Machine the topology was inferred on.
    pub machine: String,
    /// Tool or code path that wrote the file.
    pub generator: String,
    /// Probe repetitions per context pair.
    pub probe_reps: usize,
    /// Accepted relative standard deviation of the probe samples.
    pub probe_stdev_frac: f64,
    /// Noise seed of the measurement backend; `None` for a noiseless
    /// (fully deterministic) run.
    pub seed: Option<u64>,
    /// Whether the Section-4 enrichment plugins ran.
    pub enriched: bool,
}

impl Provenance {
    /// Header for a topology inferred on `machine` with `cfg`.
    pub fn new(machine: &str, cfg: &ProbeConfig, seed: Option<u64>, enriched: bool) -> Provenance {
        Provenance {
            format_version: VERSION,
            machine: machine.to_string(),
            generator: "mctop".to_string(),
            probe_reps: cfg.reps,
            probe_stdev_frac: cfg.stdev_frac,
            seed,
            enriched,
        }
    }

    /// Same header with an explicit generator string.
    pub fn with_generator(mut self, generator: &str) -> Provenance {
        self.generator = generator.to_string();
        self
    }
}

#[derive(Serialize, Deserialize)]
struct DescFile {
    version: u32,
    provenance: Provenance,
    topology: Mctop,
}

/// The probe configuration of the canonical regeneration path: few
/// repetitions (the noiseless oracle returns identical samples, so the
/// median is exact) with the default acceptance thresholds.
pub fn canonical_probe_config() -> ProbeConfig {
    ProbeConfig {
        reps: 3,
        ..ProbeConfig::fast()
    }
}

/// Socket count at and above which the canonical path switches to
/// mesh-scale collection: pruned pairs plus closure reconstruction, and
/// a finer clustering config. Every committed cache-coherent platform
/// sits far below (max 8 sockets); the mesh/circulant NoC presets sit
/// at or above.
pub const MESH_SCALE_SOCKETS: usize = 32;

/// The canonical probe configuration *for a machine*: the plain
/// [`canonical_probe_config`] for cache-coherent boxes, and the
/// mesh-scale variant for NoC-scale machines ([`MESH_SCALE_SOCKETS`]+
/// sockets).
///
/// The mesh-scale variant differs in two ways:
///
/// - collection is pruned ([`crate::alg::PairSelection::Pruned`]) —
///   exact on these machines, so the desc file is byte-identical to an
///   exhaustive run, just quadratically cheaper to regenerate;
/// - clustering uses a finer relative gap (hop-count latency ladders
///   have many closely spaced levels: a 16x16 mesh has 30 distinct
///   cross levels 60 cycles apart, which the default 8% relative gap
///   would merge at the top and the default 12-level cap would reject).
///
/// Existing (small) machines keep the exact historical config, so the
/// committed goldens cannot move.
pub fn canonical_probe_config_for(spec: &mcsim::MachineSpec) -> ProbeConfig {
    let base = canonical_probe_config();
    if spec.sockets < MESH_SCALE_SOCKETS {
        return base;
    }
    let ctxs = spec.total_hwcs();
    ProbeConfig {
        pairs: crate::alg::PairSelection::Pruned(crate::alg::PruneCfg::for_machine(
            ctxs / spec.sockets,
            spec.sockets,
        )),
        cluster: crate::alg::cluster::ClusterCfg {
            rel_gap: 0.02,
            abs_gap: 8,
            max_levels: 64,
        },
        ..base
    }
}

/// Deterministically infers and enriches the canonical topology of a
/// simulated machine: the exact content of the committed
/// `descs/<name>.mct.json`. Noiseless probing, [`canonical_probe_config`],
/// all enrichment plugins, nominal frequency attached.
pub fn canonical(spec: &mcsim::MachineSpec) -> Result<(Mctop, Provenance), McTopError> {
    canonical_jobs(spec, 1)
}

/// [`canonical`] with the collection phase spread over `jobs` workers.
///
/// The collection determinism contract
/// ([`crate::alg::probe::collect_parallel`]) guarantees the result is
/// byte-for-byte the same for every `jobs` value, so the worker count
/// is a pure wall-clock knob: `mct regen-descs` may use all cores and
/// still reproduce the committed `descs/` files exactly. It is
/// deliberately *not* recorded in the provenance header.
pub fn canonical_jobs(
    spec: &mcsim::MachineSpec,
    jobs: usize,
) -> Result<(Mctop, Provenance), McTopError> {
    let cfg = canonical_probe_config_for(spec);
    let mut prober = SimProber::noiseless(spec);
    let mut topo = crate::alg::run_jobs(&mut prober, &cfg, jobs)?;
    let mut mem = SimEnricher::new(spec);
    let mut pow = SimEnricher::new(spec);
    enrich_all(&mut topo, &mut mem, &mut pow)?;
    topo.freq_ghz = Some(spec.freq_ghz);
    let prov = Provenance::new(&spec.name, &cfg, None, true).with_generator(CANONICAL_GENERATOR);
    Ok((topo, prov))
}

/// [`canonical`] rendered as description-file text.
pub fn canonical_string(spec: &mcsim::MachineSpec) -> Result<String, McTopError> {
    canonical_string_jobs(spec, 1)
}

/// [`canonical_jobs`] rendered as description-file text.
pub fn canonical_string_jobs(spec: &mcsim::MachineSpec, jobs: usize) -> Result<String, McTopError> {
    let (topo, prov) = canonical_jobs(spec, jobs)?;
    to_string(&topo, &prov)
}

/// Serializes a topology and its provenance header to a description
/// string.
pub fn to_string(topo: &Mctop, prov: &Provenance) -> Result<String, McTopError> {
    serde_json::to_string_pretty(&DescFile {
        version: VERSION,
        provenance: prov.clone(),
        topology: topo.clone(),
    })
    .map_err(|e| McTopError::InvalidDescription(e.to_string()))
}

/// Parses and validates a description string.
pub fn from_str(s: &str) -> Result<Mctop, McTopError> {
    from_str_full(s).map(|(topo, _)| topo)
}

/// Parses and validates a description string, returning the provenance
/// header alongside the topology.
pub fn from_str_full(s: &str) -> Result<(Mctop, Provenance), McTopError> {
    // Check the envelope before deserializing the payload, so files
    // from other format versions fail with the version-gate message
    // (not whatever field the full parse trips over first).
    let raw: serde_json::Value =
        serde_json::from_str(s).map_err(|e| McTopError::InvalidDescription(e.to_string()))?;
    let version = raw
        .0
        .get("version")
        .ok_or_else(|| McTopError::InvalidDescription("missing field `version`".into()))
        .and_then(|v| {
            u32::from_value(v).map_err(|e| McTopError::InvalidDescription(e.to_string()))
        })?;
    if version != VERSION {
        return Err(McTopError::InvalidDescription(format!(
            "unsupported description version {version} (expected {VERSION})"
        )));
    }
    if raw.0.get("provenance").is_none() {
        return Err(McTopError::InvalidDescription(
            "missing provenance header (a bare topology payload is not a description file)".into(),
        ));
    }
    let file =
        DescFile::from_value(&raw.0).map_err(|e| McTopError::InvalidDescription(e.to_string()))?;
    // The header must agree with both the envelope and the payload: a
    // field-for-field compatible topology is still rejected unless its
    // provenance says it was written in this format for this machine.
    if file.provenance.format_version != file.version {
        return Err(McTopError::InvalidDescription(format!(
            "provenance format_version {} disagrees with file version {}",
            file.provenance.format_version, file.version
        )));
    }
    if file.provenance.machine != file.topology.name {
        return Err(McTopError::InvalidDescription(format!(
            "provenance machine `{}` disagrees with topology name `{}`",
            file.provenance.machine, file.topology.name
        )));
    }
    validate::validate(&file.topology)?;
    Ok((file.topology, file.provenance))
}

/// Writes the description file for a topology.
pub fn save(topo: &Mctop, prov: &Provenance, path: &Path) -> Result<(), McTopError> {
    std::fs::write(path, to_string(topo, prov)?)?;
    Ok(())
}

/// Loads a previously saved topology ("created once, then used to load
/// the topology").
pub fn load(path: &Path) -> Result<Mctop, McTopError> {
    load_full(path).map(|(topo, _)| topo)
}

/// Loads a previously saved topology together with its provenance.
pub fn load_full(path: &Path) -> Result<(Mctop, Provenance), McTopError> {
    let s = std::fs::read_to_string(path)?;
    from_str_full(&s)
}

/// Default description-file name for a machine.
pub fn default_filename(machine_name: &str) -> String {
    format!("{machine_name}.mct.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim::presets;

    fn infer_with_header(spec: &mcsim::MachineSpec) -> (Mctop, Provenance) {
        let mut p = SimProber::noiseless(spec);
        let cfg = canonical_probe_config();
        let topo = crate::alg::run(&mut p, &cfg).unwrap();
        let prov = Provenance::new(&spec.name, &cfg, None, false);
        (topo, prov)
    }

    #[test]
    fn roundtrip_preserves_topology_and_provenance() {
        let (topo, prov) = infer_with_header(&presets::synthetic_small());
        let s = to_string(&topo, &prov).unwrap();
        let (back, back_prov) = from_str_full(&s).unwrap();
        assert_eq!(topo, back);
        assert_eq!(prov, back_prov);
    }

    #[test]
    fn file_roundtrip() {
        let (topo, prov) = infer_with_header(&presets::no_smt_small());
        let dir = std::env::temp_dir();
        let path = dir.join(default_filename(&topo.name));
        save(&topo, &prov, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(topo, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_version_rejected() {
        let (topo, prov) = infer_with_header(&presets::synthetic_small());
        let s = to_string(&topo, &prov)
            .unwrap()
            .replace(&format!("\"version\": {VERSION}"), "\"version\": 99");
        let err = from_str(&s).unwrap_err();
        assert!(matches!(err, McTopError::InvalidDescription(_)));
    }

    #[test]
    fn missing_provenance_rejected_not_defaulted() {
        let (topo, prov) = infer_with_header(&presets::synthetic_small());
        let s = to_string(&topo, &prov).unwrap();
        // Strip the header: a future-versioned payload that happens to
        // match field-for-field must still be refused.
        let mut v: serde_json::Value = serde_json::from_str(&s).unwrap();
        if let serde_json::InnerValue::Object(fields) = &mut v.0 {
            fields.retain(|(k, _)| k != "provenance");
        }
        let err = from_str(&v.to_string()).unwrap_err();
        match err {
            McTopError::InvalidDescription(msg) => {
                assert!(msg.contains("provenance"), "{msg}");
            }
            other => panic!("expected InvalidDescription, got {other:?}"),
        }
    }

    #[test]
    fn provenance_machine_mismatch_rejected() {
        let (topo, prov) = infer_with_header(&presets::synthetic_small());
        let prov = Provenance {
            machine: "somewhere-else".into(),
            ..prov
        };
        let s = to_string(&topo, &prov).unwrap();
        let err = from_str(&s).unwrap_err();
        assert!(matches!(err, McTopError::InvalidDescription(_)), "{err}");
    }

    #[test]
    fn provenance_format_version_mismatch_rejected() {
        let (topo, prov) = infer_with_header(&presets::synthetic_small());
        let prov = Provenance {
            format_version: VERSION + 1,
            ..prov
        };
        let s = to_string(&topo, &prov).unwrap();
        let err = from_str(&s).unwrap_err();
        assert!(matches!(err, McTopError::InvalidDescription(_)), "{err}");
    }

    #[test]
    fn old_format_version_hits_the_version_gate_first() {
        // A v1-era file has no provenance header at all; it must fail
        // with the version-gate message, not a missing-field parse
        // error about a field v1 never had.
        let s = r#"{"version": 1, "topology": {"name": "ivy"}}"#;
        match from_str(s).unwrap_err() {
            McTopError::InvalidDescription(msg) => {
                assert!(msg.contains("unsupported description version 1"), "{msg}");
            }
            other => panic!("expected InvalidDescription, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_payload_rejected_by_validation() {
        let (topo, prov) = infer_with_header(&presets::synthetic_small());
        let s = to_string(&topo, &prov).unwrap();
        // Surgical corruption: make the latency table asymmetric.
        let mut v: serde_json::Value = serde_json::from_str(&s).unwrap();
        v["topology"]["lat_table"][1] = serde_json::json!(9999);
        let res = from_str(&v.to_string());
        assert!(matches!(res, Err(McTopError::IrregularTopology(_))));
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_str("not json").is_err());
        assert!(from_str("{}").is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/mctop.json")).unwrap_err();
        assert!(matches!(err, McTopError::Io(_)));
    }

    #[test]
    fn canonical_is_deterministic() {
        let a = canonical_string(&presets::synthetic_small()).unwrap();
        let b = canonical_string(&presets::synthetic_small()).unwrap();
        assert_eq!(a, b);
        let (topo, prov) = from_str_full(&a).unwrap();
        assert_eq!(prov.generator, CANONICAL_GENERATOR);
        assert_eq!(prov.seed, None);
        assert!(prov.enriched);
        assert!(topo.caches.is_some());
    }
}
