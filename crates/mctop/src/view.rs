//! Precomputed topology views: the index layer of the query engine.
//!
//! The queries of [`crate::query`] are deliberately written as
//! straight-line scans over the model arenas — easy to audit against
//! the paper, but O(n log n) per call. Placement construction, merge
//! trees and policy loops issue those queries thousands of times over
//! an immutable topology, so a [`TopoView`] front-loads the work: built
//! once from an [`Mctop`], it holds
//!
//! - the socket-level index (validated, not guessed — see
//!   [`Mctop::socket_level_index`]),
//! - dense socket×socket latency / hop / bandwidth matrices,
//! - per-socket neighbor lists sorted by proximity,
//! - per-context → (core, socket, node) lookup tables,
//! - per-socket context hand-out orders (compact and cores-first),
//! - the min-latency / max-latency / max-bandwidth socket-pair caches
//!   and the bandwidth-then-proximity socket walk of the CON policies.
//!
//! Every answer is then an O(1) or O(k) lookup. The `naive` module
//! keeps the reference implementations; `tests/proptest_invariants.rs`
//! asserts view answers are identical to the naive ones on every
//! simulated machine.
//!
//! # Examples
//!
//! ```
//! let view = mctop::Registry::shipped().view("ivy").unwrap();
//! assert_eq!(view.closest_sockets(0), &[1]);
//! assert_eq!(view.socket_latency(0, 1), 308);
//! // The CON-policy walk starts at the max-bandwidth socket.
//! assert_eq!(
//!     view.socket_order_bandwidth_proximity()[0],
//!     view.max_bandwidth_socket()
//! );
//! ```

use std::ops::Deref;
use std::sync::Arc;

use crate::error::McTopError;
use crate::model::Mctop;

/// The naive reference implementations of the socket-level queries.
///
/// [`crate::query`]'s `impl Mctop` methods are thin wrappers over these
/// functions. [`TopoView`] derives its latency/hop/bandwidth matrices,
/// neighbor lists, bandwidth ranking and socket walk independently
/// (one scan over the link arena, sorts over the matrices) — for those
/// the naive-vs-view equivalence proptest is a genuine cross-check.
/// The remaining caches (hand-out orders, socket level, latency pairs)
/// intentionally share these reference implementations, so for them
/// the proptest guards cache staleness and indexing, not derivation.
pub(crate) mod naive {
    use crate::model::{LevelRole, Mctop};

    /// Sockets sorted by latency from `socket`, closest first.
    pub fn closest_sockets(topo: &Mctop, socket: usize) -> Vec<usize> {
        let mut others: Vec<usize> = (0..topo.num_sockets()).filter(|&s| s != socket).collect();
        others.sort_by_key(|&s| (socket_latency(topo, socket, s), s));
        others
    }

    /// Context-to-context latency between two sockets.
    pub fn socket_latency(topo: &Mctop, a: usize, b: usize) -> u32 {
        if a == b {
            return intra_socket_latency(topo);
        }
        topo.link(a, b).map_or(u32::MAX, |l| l.latency)
    }

    /// Index of the socket level, if one was assigned.
    pub fn socket_level_index(topo: &Mctop) -> Option<usize> {
        topo.levels
            .iter()
            .position(|l| matches!(l.role, LevelRole::Socket))
    }

    /// Median latency of the socket level; on topologies without one
    /// (never produced by MCTOP-ALG, but loadable from hand-written
    /// descriptions), the highest intra-socket level stands in.
    pub fn intra_socket_latency(topo: &Mctop) -> u32 {
        match socket_level_index(topo) {
            Some(i) => topo.levels[i].latency.median,
            None => topo
                .levels
                .iter()
                .filter(|l| !matches!(l.role, LevelRole::CrossSocket { .. }))
                .map(|l| l.latency.median)
                .max()
                .unwrap_or(0),
        }
    }

    /// The distinct socket pair with minimum latency.
    pub fn min_latency_socket_pair(topo: &Mctop) -> Option<(usize, usize)> {
        topo.links
            .iter()
            .min_by_key(|l| (l.latency, l.a, l.b))
            .map(|l| (l.a, l.b))
    }

    /// The distinct socket pair with maximum latency.
    pub fn max_latency_socket_pair(topo: &Mctop) -> Option<(usize, usize)> {
        topo.links
            .iter()
            .max_by_key(|l| (l.latency, l.a, l.b))
            .map(|l| (l.a, l.b))
    }

    /// Sockets sorted by local memory bandwidth, descending.
    pub fn sockets_by_local_bandwidth(topo: &Mctop) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..topo.num_sockets()).collect();
        ids.sort_by(|&a, &b| {
            let ba = topo.sockets[a].local_bandwidth().unwrap_or(0.0);
            let bb = topo.sockets[b].local_bandwidth().unwrap_or(0.0);
            bb.partial_cmp(&ba).unwrap().then(a.cmp(&b))
        });
        ids
    }

    /// Contexts of a socket, unique cores first.
    pub fn socket_hwcs_cores_first(topo: &Mctop, socket: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(topo.sockets[socket].hwcs.len());
        for round in 0..topo.smt {
            for &cg in &topo.sockets[socket].cores {
                if let Some(&h) = topo.groups[cg].hwcs.get(round) {
                    out.push(h);
                }
            }
        }
        out
    }

    /// Contexts of a socket in compact (core-filling) order.
    pub fn socket_hwcs_compact(topo: &Mctop, socket: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(topo.sockets[socket].hwcs.len());
        for &cg in &topo.sockets[socket].cores {
            out.extend_from_slice(&topo.groups[cg].hwcs);
        }
        out
    }

    /// The bandwidth-then-proximity socket walk of the CON policies.
    pub fn socket_order_bandwidth_proximity(topo: &Mctop) -> Vec<usize> {
        let n = topo.num_sockets();
        if n == 0 {
            return Vec::new();
        }
        let mut order = vec![sockets_by_local_bandwidth(topo)[0]];
        while order.len() < n {
            let last = *order.last().unwrap();
            let next = closest_sockets(topo, last)
                .into_iter()
                .find(|s| !order.contains(s))
                .expect("unvisited socket exists");
            order.push(next);
        }
        order
    }
}

/// A compressed-sparse-row collection of per-socket index lists: one
/// flat arena plus row offsets instead of a `Vec<Vec<usize>>` per
/// family. The view stores its three list families (neighbor orders,
/// cores-first hand-out, compact hand-out) as consecutive row groups of
/// a single `CsrLists`, so building a view costs two allocations for
/// all of them (instead of `3 × sockets`) and row reads walk one
/// contiguous arena.
#[derive(Debug, Clone)]
struct CsrLists {
    data: Vec<usize>,
    /// `offsets[r]..offsets[r + 1]` delimits row `r`; length rows + 1.
    offsets: Vec<usize>,
}

impl CsrLists {
    fn with_rows(rows: usize, data_capacity: usize) -> CsrLists {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        CsrLists {
            data: Vec::with_capacity(data_capacity),
            offsets,
        }
    }

    fn push_row(&mut self, row: impl IntoIterator<Item = usize>) {
        self.data.extend(row);
        self.offsets.push(self.data.len());
    }

    fn row(&self, r: usize) -> &[usize] {
        &self.data[self.offsets[r]..self.offsets[r + 1]]
    }
}

/// A precomputed, shareable index over an immutable [`Mctop`].
///
/// Construction is O(S² log S + N); every query afterwards is an O(1)
/// table lookup or a borrowed slice. The view holds the topology behind
/// an [`Arc`], so it is cheap to hand to worker pools and placement
/// caches, and it [`Deref`]s to [`Mctop`] for the model accessors
/// (`num_sockets`, `get_latency`, ...).
#[derive(Debug, Clone)]
pub struct TopoView {
    topo: Arc<Mctop>,
    socket_level: Option<usize>,
    intra_socket_latency: u32,
    n_sockets: usize,
    /// S×S context-to-context latency (diagonal = intra-socket).
    socket_lat: Vec<u32>,
    /// S×S interconnect hops (0 on the diagonal, `usize::MAX` unknown).
    socket_hops: Vec<usize>,
    /// S×S memory bandwidth: cross-socket off the diagonal, local on it.
    socket_bw: Vec<Option<f64>>,
    /// All per-socket lists in one CSR arena, three row groups of S rows
    /// each: rows `[0, S)` the other sockets sorted by latency (ties by
    /// id), rows `[S, 2S)` contexts in cores-first hand-out order, rows
    /// `[2S, 3S)` contexts in compact hand-out order.
    lists: CsrLists,
    /// Sockets sorted by local bandwidth, descending.
    by_bandwidth: Vec<usize>,
    /// The CON-policy socket walk (max-bandwidth start, then proximity).
    order_bw_proximity: Vec<usize>,
    min_latency_pair: Option<(usize, usize)>,
    max_latency_pair: Option<(usize, usize)>,
    /// Per context: owning socket.
    hwc_socket: Vec<usize>,
    /// Per context: owning core (machine-wide core index).
    hwc_core: Vec<usize>,
    /// Per context: local memory node of its socket.
    hwc_node: Vec<Option<usize>>,
}

impl TopoView {
    /// Builds the view, taking shared ownership of the topology.
    pub fn new(topo: Arc<Mctop>) -> TopoView {
        let s = topo.num_sockets();
        let socket_level = naive::socket_level_index(&topo);
        let intra = naive::intra_socket_latency(&topo);

        // Dense socket matrices, filled from the link arena in one scan
        // (the naive path re-scans `links` per query instead).
        let mut socket_lat = vec![u32::MAX; s * s];
        let mut socket_hops = vec![usize::MAX; s * s];
        let mut socket_bw: Vec<Option<f64>> = vec![None; s * s];
        for i in 0..s {
            socket_lat[i * s + i] = intra;
            socket_hops[i * s + i] = 0;
            socket_bw[i * s + i] = topo.sockets[i].local_bandwidth();
        }
        for l in &topo.links {
            // Mirror the naive query exactly: only normalized records
            // are visible, and the first record for a pair wins
            // (`Mctop::link` is a first-match scan). `validate`
            // rejects unnormalized/duplicate records in loaded
            // topologies, so this only matters for hand-built ones.
            if l.a >= l.b || socket_hops[l.a * s + l.b] != usize::MAX {
                continue;
            }
            for (x, y) in [(l.a, l.b), (l.b, l.a)] {
                socket_lat[x * s + y] = l.latency;
                socket_hops[x * s + y] = l.hops;
                socket_bw[x * s + y] = l.bandwidth;
            }
        }

        // One CSR arena for every per-socket list: S neighbor rows, then
        // S cores-first rows, then S compact rows.
        let n_hwcs = topo.hwcs.len();
        let mut lists = CsrLists::with_rows(3 * s, s.saturating_sub(1) * s + 2 * n_hwcs);
        let mut others: Vec<usize> = Vec::with_capacity(s.saturating_sub(1));
        for a in 0..s {
            others.clear();
            others.extend((0..s).filter(|&b| b != a));
            others.sort_by_key(|&b| (socket_lat[a * s + b], b));
            lists.push_row(others.iter().copied());
        }

        let mut by_bandwidth: Vec<usize> = (0..s).collect();
        by_bandwidth.sort_by(|&a, &b| {
            let ba = socket_bw[a * s + a].unwrap_or(0.0);
            let bb = socket_bw[b * s + b].unwrap_or(0.0);
            bb.partial_cmp(&ba)
                .expect("bandwidths are finite")
                .then(a.cmp(&b))
        });

        // The CON-policy walk: best-bandwidth socket, then repeatedly
        // the closest unvisited one.
        let mut order_bw_proximity = Vec::with_capacity(s);
        if s > 0 {
            let mut visited = vec![false; s];
            let mut cur = by_bandwidth[0];
            visited[cur] = true;
            order_bw_proximity.push(cur);
            while order_bw_proximity.len() < s {
                let next = lists
                    .row(cur)
                    .iter()
                    .copied()
                    .find(|&b| !visited[b])
                    .expect("unvisited socket exists");
                visited[next] = true;
                order_bw_proximity.push(next);
                cur = next;
            }
        }

        let min_latency_pair = naive::min_latency_socket_pair(&topo);
        let max_latency_pair = naive::max_latency_socket_pair(&topo);

        let hwc_socket: Vec<usize> = topo.hwcs.iter().map(|h| h.socket).collect();
        let hwc_core: Vec<usize> = topo.hwcs.iter().map(|h| h.core).collect();
        let hwc_node: Vec<Option<usize>> = topo
            .hwcs
            .iter()
            .map(|h| topo.sockets[h.socket].local_node)
            .collect();

        for sk in 0..s {
            lists.push_row(naive::socket_hwcs_cores_first(&topo, sk));
        }
        for sk in 0..s {
            lists.push_row(naive::socket_hwcs_compact(&topo, sk));
        }

        TopoView {
            topo,
            socket_level,
            intra_socket_latency: intra,
            n_sockets: s,
            socket_lat,
            socket_hops,
            socket_bw,
            lists,
            by_bandwidth,
            order_bw_proximity,
            min_latency_pair,
            max_latency_pair,
            hwc_socket,
            hwc_core,
            hwc_node,
        }
    }

    /// Builds a view from a borrowed topology (clones it into the view).
    pub fn build(topo: &Mctop) -> Result<TopoView, McTopError> {
        Self::try_new(Arc::new(topo.clone()))
    }

    /// Like [`TopoView::new`], but fails on topologies without a socket
    /// level instead of falling back to the intra-socket estimate.
    pub fn try_new(topo: Arc<Mctop>) -> Result<TopoView, McTopError> {
        topo.require_socket_level()?;
        Ok(Self::new(topo))
    }

    /// The topology behind the view.
    pub fn topo(&self) -> &Arc<Mctop> {
        &self.topo
    }

    /// Index of the socket level in `levels`, if one was assigned.
    pub fn socket_level(&self) -> Option<usize> {
        self.socket_level
    }

    /// Median intra-socket communication latency.
    pub fn intra_socket_latency(&self) -> u32 {
        self.intra_socket_latency
    }

    /// Sockets sorted by latency from `socket`, closest first.
    pub fn closest_sockets(&self, socket: usize) -> &[usize] {
        // A hard bounds check: past the socket rows the CSR arena holds
        // the hand-out lists, which must never leak out as neighbors.
        assert!(socket < self.n_sockets);
        self.lists.row(socket)
    }

    /// Context-to-context latency between two sockets (`u32::MAX` if
    /// unknown).
    pub fn socket_latency(&self, a: usize, b: usize) -> u32 {
        self.socket_lat[a * self.n_sockets + b]
    }

    /// Interconnect hops between two sockets (0 for a socket with
    /// itself, `usize::MAX` if unknown).
    pub fn socket_hops(&self, a: usize, b: usize) -> usize {
        self.socket_hops[a * self.n_sockets + b]
    }

    /// Cross-socket memory bandwidth, if measured. Like the naive
    /// query, a socket has no cross link with itself — use
    /// [`TopoView::local_bandwidth`] for the diagonal.
    pub fn cross_bandwidth(&self, a: usize, b: usize) -> Option<f64> {
        if a == b {
            return None;
        }
        self.socket_bw[a * self.n_sockets + b]
    }

    /// A socket's bandwidth to its local node, if measured.
    pub fn local_bandwidth(&self, socket: usize) -> Option<f64> {
        self.socket_bw[socket * self.n_sockets + socket]
    }

    /// The distinct socket pair with minimum latency.
    pub fn min_latency_socket_pair(&self) -> Option<(usize, usize)> {
        self.min_latency_pair
    }

    /// The distinct socket pair with maximum latency (the "two most
    /// remote sockets" of the Section 1 policies).
    pub fn max_latency_socket_pair(&self) -> Option<(usize, usize)> {
        self.max_latency_pair
    }

    /// Sockets sorted by local memory bandwidth, descending.
    pub fn sockets_by_local_bandwidth(&self) -> &[usize] {
        &self.by_bandwidth
    }

    /// The socket with the maximum local memory bandwidth.
    pub fn max_bandwidth_socket(&self) -> usize {
        self.by_bandwidth[0]
    }

    /// The bandwidth-then-proximity socket walk of the CON policies.
    pub fn socket_order_bandwidth_proximity(&self) -> &[usize] {
        &self.order_bw_proximity
    }

    /// Contexts of a socket, unique cores first.
    pub fn socket_hwcs_cores_first(&self, socket: usize) -> &[usize] {
        assert!(socket < self.n_sockets);
        self.lists.row(self.n_sockets + socket)
    }

    /// Contexts of a socket in compact (core-filling) order.
    pub fn socket_hwcs_compact(&self, socket: usize) -> &[usize] {
        assert!(socket < self.n_sockets);
        self.lists.row(2 * self.n_sockets + socket)
    }

    /// The socket of a context.
    pub fn socket_of(&self, hwc: usize) -> usize {
        self.hwc_socket[hwc]
    }

    /// The machine-wide core index of a context.
    pub fn core_of(&self, hwc: usize) -> usize {
        self.hwc_core[hwc]
    }

    /// The local memory node of a context's socket, if known.
    pub fn node_of(&self, hwc: usize) -> Option<usize> {
        self.hwc_node[hwc]
    }

    /// The distinct sockets used by the given contexts, ascending.
    pub fn sockets_used_by(&self, hwcs: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.n_sockets];
        for &h in hwcs {
            seen[self.hwc_socket[h]] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(s, &used)| used.then_some(s))
            .collect()
    }

    /// Maximum communication latency between any two of the given
    /// contexts (the educated-backoff quantum).
    pub fn max_latency_between(&self, hwcs: &[usize]) -> u32 {
        self.topo.max_latency_between(hwcs)
    }

    /// Minimum local bandwidth among the sockets used by the contexts.
    pub fn min_bandwidth_of(&self, hwcs: &[usize]) -> Option<f64> {
        let mut min: Option<f64> = None;
        for s in self.sockets_used_by(hwcs) {
            let bw = self.local_bandwidth(s)?;
            min = Some(min.map_or(bw, |m: f64| m.min(bw)));
        }
        min
    }

    /// Estimated LLC share (bytes) for each of `k` threads on a socket.
    pub fn llc_share_per_thread(&self, k: usize) -> Option<usize> {
        self.topo.llc_share_per_thread(k)
    }
}

impl Deref for TopoView {
    type Target = Mctop;

    fn deref(&self) -> &Mctop {
        &self.topo
    }
}

impl From<Mctop> for TopoView {
    fn from(topo: Mctop) -> TopoView {
        TopoView::new(Arc::new(topo))
    }
}

impl From<Arc<Mctop>> for TopoView {
    fn from(topo: Arc<Mctop>) -> TopoView {
        TopoView::new(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use crate::enrich::{
        enrich_all,
        SimEnricher, //
    };

    fn enriched(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let mut t = crate::alg::run(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    #[test]
    fn view_matches_naive_on_opteron() {
        let t = enriched(&mcsim::presets::opteron());
        let v = TopoView::build(&t).unwrap();
        for a in 0..t.num_sockets() {
            assert_eq!(v.closest_sockets(a), &t.closest_sockets(a)[..]);
            for b in 0..t.num_sockets() {
                assert_eq!(v.socket_latency(a, b), t.socket_latency(a, b));
                assert_eq!(v.cross_bandwidth(a, b), t.cross_bandwidth(a, b));
                if a != b {
                    assert_eq!(v.socket_hops(a, b), t.link(a, b).unwrap().hops);
                }
            }
            assert_eq!(
                v.socket_hwcs_cores_first(a),
                &t.socket_hwcs_cores_first(a)[..]
            );
            assert_eq!(v.socket_hwcs_compact(a), &t.socket_hwcs_compact(a)[..]);
        }
        assert_eq!(v.min_latency_socket_pair(), t.min_latency_socket_pair());
        assert_eq!(
            v.sockets_by_local_bandwidth(),
            &t.sockets_by_local_bandwidth()[..]
        );
        assert_eq!(
            v.socket_order_bandwidth_proximity(),
            &t.socket_order_bandwidth_proximity()[..]
        );
    }

    #[test]
    fn per_context_tables_match_model() {
        let t = enriched(&mcsim::presets::ivy());
        let v = TopoView::build(&t).unwrap();
        for h in 0..t.num_hwcs() {
            assert_eq!(v.socket_of(h), t.socket_of(h));
            assert_eq!(v.core_of(h), t.hwcs[h].core);
            assert_eq!(v.node_of(h), t.get_local_node(h));
        }
        assert_eq!(
            v.sockets_used_by(&[0, 20, 5]),
            t.sockets_used_by(&[0, 20, 5])
        );
        assert_eq!(v.min_bandwidth_of(&[0, 10]), t.min_bandwidth_of(&[0, 10]));
    }

    #[test]
    fn deref_exposes_model_accessors() {
        let t = enriched(&mcsim::presets::single_socket());
        let v = TopoView::build(&t).unwrap();
        assert_eq!(v.num_sockets(), 1);
        assert!(v.closest_sockets(0).is_empty());
        assert_eq!(v.min_latency_socket_pair(), None);
        assert_eq!(v.get_latency(0, 1), t.get_latency(0, 1));
    }

    #[test]
    fn missing_socket_level_is_an_error() {
        let mut t = enriched(&mcsim::presets::single_socket());
        t.levels = t
            .levels
            .iter()
            .filter(|l| !matches!(l.role, crate::model::LevelRole::Socket))
            .copied()
            .collect();
        assert!(t.socket_level_index().is_none());
        assert!(matches!(
            TopoView::build(&t),
            Err(McTopError::MissingLevel { .. })
        ));
        // The infallible constructor degrades to the best intra level.
        let v = TopoView::new(Arc::new(t));
        assert!(v.socket_level().is_none());
        assert!(v.intra_socket_latency() > 0);
    }
}
