//! Precomputed topology views: the index layer of the query engine.
//!
//! The queries of [`crate::query`] are deliberately written as
//! straight-line scans over the model arenas — easy to audit against
//! the paper, but O(n log n) per call. Placement construction, merge
//! trees and policy loops issue those queries thousands of times over
//! an immutable topology, so a [`TopoView`] front-loads the work: built
//! once from an [`Mctop`], it holds
//!
//! - the socket-level index (validated, not guessed — see
//!   [`Mctop::socket_level_index`]),
//! - a `DistanceStore`: the socket×socket latency / hop / bandwidth
//!   index behind every distance query, with two interchangeable
//!   backends — dense matrices (small machines) or a sparse
//!   CSR-adjacency + level-bucket + on-demand-BFS form (mesh-scale
//!   machines, where S² matrices stop fitting the cache budget),
//! - per-socket neighbor lists sorted by proximity,
//! - per-context → (core, socket, node) lookup tables,
//! - per-socket context hand-out orders (compact and cores-first),
//! - the min-latency / max-latency / max-bandwidth socket-pair caches
//!   and the bandwidth-then-proximity socket walk of the CON policies.
//!
//! Every answer is then an O(1) or O(k) lookup (amortized, for the
//! sparse backend). The `naive` module keeps the reference
//! implementations; `tests/proptest_invariants.rs` asserts view answers
//! are identical to the naive ones on every simulated machine, and
//! `tests/proptest_scale.rs` asserts the two backends are identical to
//! each other.
//!
//! # Examples
//!
//! ```
//! let view = mctop::Registry::shipped().view("ivy").unwrap();
//! assert_eq!(view.closest_sockets(0), &[1]);
//! assert_eq!(view.socket_latency(0, 1), 308);
//! // The CON-policy walk starts at the max-bandwidth socket.
//! assert_eq!(
//!     view.socket_order_bandwidth_proximity()[0],
//!     view.max_bandwidth_socket()
//! );
//! ```

use std::mem::size_of;
use std::ops::Deref;
use std::sync::{
    Arc,
    Mutex,
    OnceLock, //
};

use crate::error::McTopError;
use crate::model::Mctop;

/// Socket count at and above which [`TopoView::new`] picks the sparse
/// distance backend. Below it the dense matrices are at most a few
/// dozen kilobytes and strictly faster; above it they grow with S² while
/// the sparse form grows with the link degree.
pub const SPARSE_THRESHOLD_SOCKETS: usize = 32;

/// BFS hop rows the sparse backend keeps resident (LRU). Policy loops
/// query a handful of "current" sockets over and over; 32 rows covers
/// them while keeping the cache O(S) bytes.
const ROW_CACHE_ROWS: usize = 32;

/// The naive reference implementations of the socket-level queries.
///
/// [`crate::query`]'s `impl Mctop` methods are thin wrappers over these
/// functions. [`TopoView`] derives its latency/hop/bandwidth answers,
/// neighbor lists, bandwidth ranking and socket walk independently
/// (via the [`DistanceStore`]) — for those the naive-vs-view
/// equivalence proptest is a genuine cross-check. The remaining caches
/// (hand-out orders, socket level, latency pairs) intentionally share
/// these reference implementations, so for them the proptest guards
/// cache staleness and indexing, not derivation.
pub(crate) mod naive {
    use crate::model::{LevelRole, Mctop};

    /// Sockets sorted by latency from `socket`, closest first.
    pub fn closest_sockets(topo: &Mctop, socket: usize) -> Vec<usize> {
        let mut others: Vec<usize> = (0..topo.num_sockets()).filter(|&s| s != socket).collect();
        others.sort_by_key(|&s| (socket_latency(topo, socket, s), s));
        others
    }

    /// Context-to-context latency between two sockets.
    pub fn socket_latency(topo: &Mctop, a: usize, b: usize) -> u32 {
        if a == b {
            return intra_socket_latency(topo);
        }
        topo.link(a, b).map_or(u32::MAX, |l| l.latency)
    }

    /// Index of the socket level, if one was assigned.
    pub fn socket_level_index(topo: &Mctop) -> Option<usize> {
        topo.levels
            .iter()
            .position(|l| matches!(l.role, LevelRole::Socket))
    }

    /// Median latency of the socket level; on topologies without one
    /// (never produced by MCTOP-ALG, but loadable from hand-written
    /// descriptions), the highest intra-socket level stands in.
    pub fn intra_socket_latency(topo: &Mctop) -> u32 {
        match socket_level_index(topo) {
            Some(i) => topo.levels[i].latency.median,
            None => topo
                .levels
                .iter()
                .filter(|l| !matches!(l.role, LevelRole::CrossSocket { .. }))
                .map(|l| l.latency.median)
                .max()
                .unwrap_or(0),
        }
    }

    /// The distinct socket pair with minimum latency.
    pub fn min_latency_socket_pair(topo: &Mctop) -> Option<(usize, usize)> {
        topo.links
            .iter()
            .min_by_key(|l| (l.latency, l.a, l.b))
            .map(|l| (l.a, l.b))
    }

    /// The distinct socket pair with maximum latency.
    pub fn max_latency_socket_pair(topo: &Mctop) -> Option<(usize, usize)> {
        topo.links
            .iter()
            .max_by_key(|l| (l.latency, l.a, l.b))
            .map(|l| (l.a, l.b))
    }

    /// Sockets sorted by local memory bandwidth, descending.
    pub fn sockets_by_local_bandwidth(topo: &Mctop) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..topo.num_sockets()).collect();
        ids.sort_by(|&a, &b| {
            let ba = topo.sockets[a].local_bandwidth().unwrap_or(0.0);
            let bb = topo.sockets[b].local_bandwidth().unwrap_or(0.0);
            bb.partial_cmp(&ba).unwrap().then(a.cmp(&b))
        });
        ids
    }

    /// Contexts of a socket, unique cores first.
    pub fn socket_hwcs_cores_first(topo: &Mctop, socket: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(topo.sockets[socket].hwcs.len());
        for round in 0..topo.smt {
            for &cg in &topo.sockets[socket].cores {
                if let Some(&h) = topo.groups[cg].hwcs.get(round) {
                    out.push(h);
                }
            }
        }
        out
    }

    /// Contexts of a socket in compact (core-filling) order.
    pub fn socket_hwcs_compact(topo: &Mctop, socket: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(topo.sockets[socket].hwcs.len());
        for &cg in &topo.sockets[socket].cores {
            out.extend_from_slice(&topo.groups[cg].hwcs);
        }
        out
    }

    /// The bandwidth-then-proximity socket walk of the CON policies.
    pub fn socket_order_bandwidth_proximity(topo: &Mctop) -> Vec<usize> {
        let n = topo.num_sockets();
        if n == 0 {
            return Vec::new();
        }
        let mut order = vec![sockets_by_local_bandwidth(topo)[0]];
        while order.len() < n {
            let last = *order.last().unwrap();
            let next = closest_sockets(topo, last)
                .into_iter()
                .find(|s| !order.contains(s))
                .expect("unvisited socket exists");
            order.push(next);
        }
        order
    }
}

/// A compressed-sparse-row collection of per-socket index lists: one
/// flat arena plus row offsets instead of a `Vec<Vec<usize>>` per
/// family. The view stores its two hand-out list families (cores-first,
/// compact) as consecutive row groups of a single `CsrLists`, so
/// building them costs two allocations for both (instead of
/// `2 × sockets`) and row reads walk one contiguous arena.
#[derive(Debug, Clone)]
struct CsrLists {
    data: Vec<usize>,
    /// `offsets[r]..offsets[r + 1]` delimits row `r`; length rows + 1.
    offsets: Vec<usize>,
}

impl CsrLists {
    fn with_rows(rows: usize, data_capacity: usize) -> CsrLists {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        CsrLists {
            data: Vec::with_capacity(data_capacity),
            offsets,
        }
    }

    fn push_row(&mut self, row: impl IntoIterator<Item = usize>) {
        self.data.extend(row);
        self.offsets.push(self.data.len());
    }

    fn row(&self, r: usize) -> &[usize] {
        &self.data[self.offsets[r]..self.offsets[r + 1]]
    }

    fn heap_bytes(&self) -> usize {
        self.data.len() * size_of::<usize>() + self.offsets.len() * size_of::<usize>()
    }
}

/// Which distance backend a view runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewBackend {
    /// Dense S×S matrices, built lazily per matrix. The right answer
    /// for cache-coherent boxes (S ≤ 8 on every committed platform).
    Dense,
    /// CSR adjacency over the direct links, per-hop-level latency
    /// buckets, on-demand BFS hop rows behind a small LRU, and a sorted
    /// exception list for pairs that deviate from the hop model. O(S +
    /// E + exceptions) resident instead of O(S²); exact on every
    /// topology (deviating pairs are stored verbatim).
    Sparse,
}

impl ViewBackend {
    /// Stable lower-case name (used by `mct show --stats`).
    pub fn name(self) -> &'static str {
        match self {
            ViewBackend::Dense => "dense",
            ViewBackend::Sparse => "sparse",
        }
    }
}

/// The socket-distance index of a view: latency, hops, bandwidth and
/// proximity-sorted neighbor rows, behind one of two backends.
#[derive(Debug, Clone)]
enum DistanceStore {
    Dense(DenseStore),
    Sparse(SparseStore),
}

/// Dense matrices, each built on first use (a policy loop that only
/// ever asks for latency never pays for the bandwidth matrix).
#[derive(Debug, Clone)]
struct DenseStore {
    n: usize,
    intra: u32,
    /// S×S context-to-context latency (diagonal = intra-socket).
    lat: OnceLock<Vec<u32>>,
    /// S×S interconnect hops (0 on the diagonal, `usize::MAX` unknown).
    hops: OnceLock<Vec<usize>>,
    /// S×S memory bandwidth: cross-socket off the diagonal, local on it.
    bw: OnceLock<Vec<Option<f64>>>,
    /// S rows: the other sockets sorted by latency (ties by id).
    neighbors: OnceLock<Vec<Vec<usize>>>,
}

impl DenseStore {
    fn new(n: usize, intra: u32) -> DenseStore {
        DenseStore {
            n,
            intra,
            lat: OnceLock::new(),
            hops: OnceLock::new(),
            bw: OnceLock::new(),
            neighbors: OnceLock::new(),
        }
    }

    /// One scan over the link arena per matrix, mirroring the naive
    /// query exactly: only normalized records are visible, and the
    /// first record for a pair wins (`Mctop::link` is a first-match
    /// scan). `validate` rejects unnormalized/duplicate records in
    /// loaded topologies, so this only matters for hand-built ones.
    fn visible_links(
        topo: &Mctop,
        n: usize,
    ) -> impl Iterator<Item = &crate::model::InterconnectLink> {
        let mut seen = vec![false; n * n];
        topo.links.iter().filter(move |l| {
            if l.a >= l.b || l.b >= n || seen[l.a * n + l.b] {
                return false;
            }
            seen[l.a * n + l.b] = true;
            true
        })
    }

    fn lat(&self, topo: &Mctop) -> &[u32] {
        self.lat.get_or_init(|| {
            let n = self.n;
            let mut m = vec![u32::MAX; n * n];
            for i in 0..n {
                m[i * n + i] = self.intra;
            }
            for l in Self::visible_links(topo, n) {
                m[l.a * n + l.b] = l.latency;
                m[l.b * n + l.a] = l.latency;
            }
            m
        })
    }

    fn hops(&self, topo: &Mctop) -> &[usize] {
        self.hops.get_or_init(|| {
            let n = self.n;
            let mut m = vec![usize::MAX; n * n];
            for i in 0..n {
                m[i * n + i] = 0;
            }
            for l in Self::visible_links(topo, n) {
                m[l.a * n + l.b] = l.hops;
                m[l.b * n + l.a] = l.hops;
            }
            m
        })
    }

    fn bw(&self, topo: &Mctop) -> &[Option<f64>] {
        self.bw.get_or_init(|| {
            let n = self.n;
            let mut m: Vec<Option<f64>> = vec![None; n * n];
            for i in 0..n {
                m[i * n + i] = topo.sockets[i].local_bandwidth();
            }
            for l in Self::visible_links(topo, n) {
                m[l.a * n + l.b] = l.bandwidth;
                m[l.b * n + l.a] = l.bandwidth;
            }
            m
        })
    }

    fn closest(&self, topo: &Mctop, a: usize) -> &[usize] {
        &self.neighbors.get_or_init(|| {
            let n = self.n;
            let lat = self.lat(topo);
            (0..n)
                .map(|x| {
                    let mut others: Vec<usize> = (0..n).filter(|&b| b != x).collect();
                    others.sort_by_key(|&b| (lat[x * n + b], b));
                    others
                })
                .collect()
        })[a]
    }

    fn resident_bytes(&self) -> usize {
        let mut total = 0;
        if let Some(m) = self.lat.get() {
            total += m.len() * size_of::<u32>();
        }
        if let Some(m) = self.hops.get() {
            total += m.len() * size_of::<usize>();
        }
        if let Some(m) = self.bw.get() {
            total += m.len() * size_of::<Option<f64>>();
        }
        if let Some(rows) = self.neighbors.get() {
            total += rows
                .iter()
                .map(|r| r.len() * size_of::<usize>())
                .sum::<usize>();
        }
        total
    }
}

/// LRU of BFS hop rows, most recently used last.
#[derive(Debug, Default)]
struct RowCache {
    entries: Vec<(usize, Vec<u32>)>,
}

/// The sparse distance backend.
///
/// A validated [`Mctop`] records one link per socket pair, so the model
/// itself is quadratic — but the *view* need not be: direct (1-hop)
/// links form a sparse graph whose BFS distance reproduces every hop
/// count, and on hop-derived interconnects (the mesh-scale presets) the
/// latency of a pair is a pure function of its hop count. The store
/// keeps the CSR adjacency, one latency per hop level, and a sorted
/// exception list holding verbatim every pair the model does *not*
/// explain — empty on regular meshes, never wrong on anything else.
/// Bandwidth is irregular per pair (measured, jittered) and cannot be
/// reconstructed; it is answered by binary search over the model's own
/// link arena, costing the view no memory.
#[derive(Debug)]
struct SparseStore {
    n: usize,
    intra: u32,
    /// CSR over direct links: `adj[adj_off[s]..adj_off[s + 1]]`.
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    /// Latency per BFS hop count; `None` = no uniform value at that
    /// level (every such pair is then in `exceptions`).
    level_lat: Vec<Option<u32>>,
    /// `(a, b, latency, hops)` for pairs deviating from the hop model,
    /// sorted by `(a, b)` with `a < b`; `u32::MAX` encodes "unknown".
    exceptions: Vec<(u32, u32, u32, u32)>,
    /// Whether `topo.links` is strictly sorted by normalized `(a, b)` —
    /// lets bandwidth lookups binary-search the arena directly.
    links_sorted: bool,
    /// Fallback bandwidth index when the arena is not sorted: visible
    /// link indices ordered by `(a, b)`.
    link_index: Vec<u32>,
    /// Per-socket local memory bandwidth (the dense diagonal).
    local_bw: Vec<Option<f64>>,
    /// LRU of recent BFS hop rows.
    rows: Mutex<RowCache>,
    /// Proximity-sorted neighbor rows, pinned once queried (the row is
    /// handed out by reference, so it cannot be evicted like the hop
    /// rows; only queried sockets ever materialize).
    neighbor_rows: Vec<OnceLock<Vec<usize>>>,
}

impl Clone for SparseStore {
    fn clone(&self) -> Self {
        SparseStore {
            n: self.n,
            intra: self.intra,
            adj_off: self.adj_off.clone(),
            adj: self.adj.clone(),
            level_lat: self.level_lat.clone(),
            exceptions: self.exceptions.clone(),
            links_sorted: self.links_sorted,
            link_index: self.link_index.clone(),
            local_bw: self.local_bw.clone(),
            // The clone starts with a cold row cache (derived state).
            rows: Mutex::new(RowCache::default()),
            neighbor_rows: self.neighbor_rows.clone(),
        }
    }
}

impl SparseStore {
    fn build(topo: &Mctop, intra: u32) -> SparseStore {
        let n = topo.num_sockets();
        // Visible links under the first-match rule (see DenseStore).
        let mut first: Vec<bool> = vec![false; n * n];
        let mut order: Vec<u32> = Vec::new();
        for (i, l) in topo.links.iter().enumerate() {
            if l.a >= l.b || l.b >= n || first[l.a * n + l.b] {
                continue;
            }
            first[l.a * n + l.b] = true;
            order.push(i as u32);
        }
        // CSR over the direct (1-hop) links.
        let mut deg = vec![0u32; n];
        for &i in &order {
            let l = &topo.links[i as usize];
            if l.hops == 1 {
                deg[l.a] += 1;
                deg[l.b] += 1;
            }
        }
        let mut adj_off = vec![0u32; n + 1];
        for s in 0..n {
            adj_off[s + 1] = adj_off[s] + deg[s];
        }
        let mut adj = vec![0u32; adj_off[n] as usize];
        let mut cursor: Vec<u32> = adj_off[..n].to_vec();
        for &i in &order {
            let l = &topo.links[i as usize];
            if l.hops == 1 {
                adj[cursor[l.a] as usize] = l.b as u32;
                cursor[l.a] += 1;
                adj[cursor[l.b] as usize] = l.a as u32;
                cursor[l.b] += 1;
            }
        }
        // All-pairs BFS (build-time only; the rows are dropped) to
        // bucket every visible link by its BFS hop count and to find
        // the pairs the buckets do not explain.
        let rows: Vec<Vec<u32>> = (0..n).map(|s| bfs_row(&adj_off, &adj, n, s)).collect();
        let mut buckets: Vec<Option<u32>> = Vec::new();
        let mut mixed: Vec<bool> = Vec::new();
        for &i in &order {
            let l = &topo.links[i as usize];
            let k = rows[l.a][l.b];
            if k == u32::MAX {
                continue;
            }
            let k = k as usize;
            if buckets.len() <= k {
                buckets.resize(k + 1, None);
                mixed.resize(k + 1, false);
            }
            match buckets[k] {
                None => buckets[k] = Some(l.latency),
                Some(v) if v != l.latency => mixed[k] = true,
                Some(_) => {}
            }
        }
        let level_lat: Vec<Option<u32>> = buckets
            .iter()
            .zip(&mixed)
            .map(|(b, &m)| if m { None } else { *b })
            .collect();
        let mut exceptions: Vec<(u32, u32, u32, u32)> = Vec::new();
        for &i in &order {
            let l = &topo.links[i as usize];
            let k = rows[l.a][l.b];
            let explained = k != u32::MAX
                && l.hops == k as usize
                && level_lat.get(k as usize).copied().flatten() == Some(l.latency);
            if !explained {
                let hops = u32::try_from(l.hops).unwrap_or(u32::MAX);
                exceptions.push((l.a as u32, l.b as u32, l.latency, hops));
            }
        }
        // Incomplete topologies (hand-built; validation requires every
        // pair): pin missing pairs to "unknown" so BFS cannot fabricate
        // an answer the dense backend would not give.
        if order.len() < n * (n - 1) / 2 {
            for a in 0..n {
                for b in (a + 1)..n {
                    if !first[a * n + b] {
                        exceptions.push((a as u32, b as u32, u32::MAX, u32::MAX));
                    }
                }
            }
        }
        exceptions.sort_unstable();
        // Bandwidth lookup path: binary search the arena when it is
        // strictly sorted by normalized pair (every generated topology
        // is); otherwise keep a sorted index of the visible links.
        let links_sorted = !topo.links.is_empty()
            && topo.links.iter().all(|l| l.a < l.b)
            && topo
                .links
                .windows(2)
                .all(|w| (w[0].a, w[0].b) < (w[1].a, w[1].b));
        let mut link_index = Vec::new();
        if !links_sorted {
            link_index = order.clone();
            link_index.sort_unstable_by_key(|&i| {
                let l = &topo.links[i as usize];
                (l.a, l.b)
            });
        }
        let local_bw = (0..n).map(|s| topo.sockets[s].local_bandwidth()).collect();
        SparseStore {
            n,
            intra,
            adj_off,
            adj,
            level_lat,
            exceptions,
            links_sorted,
            link_index,
            local_bw,
            rows: Mutex::new(RowCache::default()),
            neighbor_rows: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Exception lookup: the `(latency, hops)` recorded verbatim for a
    /// deviating pair.
    fn exception(&self, a: usize, b: usize) -> Option<(u32, u32)> {
        let key = if a < b {
            (a as u32, b as u32)
        } else {
            (b as u32, a as u32)
        };
        self.exceptions
            .binary_search_by(|&(ea, eb, _, _)| (ea, eb).cmp(&key))
            .ok()
            .map(|i| (self.exceptions[i].2, self.exceptions[i].3))
    }

    /// Runs `f` over the BFS hop row of `s`, computing and caching the
    /// row if it is not resident.
    fn with_row<R>(&self, s: usize, f: impl FnOnce(&[u32]) -> R) -> R {
        let mut cache = self.rows.lock().unwrap();
        if let Some(pos) = cache.entries.iter().position(|(k, _)| *k == s) {
            let e = cache.entries.remove(pos);
            cache.entries.push(e);
        } else {
            let row = bfs_row(&self.adj_off, &self.adj, self.n, s);
            if cache.entries.len() == ROW_CACHE_ROWS {
                cache.entries.remove(0);
            }
            cache.entries.push((s, row));
        }
        f(&cache.entries.last().unwrap().1)
    }

    fn latency(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return self.intra;
        }
        if let Some((lat, _)) = self.exception(a, b) {
            return lat;
        }
        let k = self.with_row(a.min(b), |row| row[a.max(b)]);
        if k == u32::MAX {
            return u32::MAX;
        }
        self.level_lat
            .get(k as usize)
            .copied()
            .flatten()
            .unwrap_or(u32::MAX)
    }

    fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        if let Some((_, hops)) = self.exception(a, b) {
            return if hops == u32::MAX {
                usize::MAX
            } else {
                hops as usize
            };
        }
        let k = self.with_row(a.min(b), |row| row[a.max(b)]);
        if k == u32::MAX {
            usize::MAX
        } else {
            k as usize
        }
    }

    fn cross_bw(&self, topo: &Mctop, a: usize, b: usize) -> Option<f64> {
        if a == b {
            return None;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if self.links_sorted {
            topo.links
                .binary_search_by(|l| (l.a, l.b).cmp(&key))
                .ok()
                .and_then(|i| topo.links[i].bandwidth)
        } else {
            self.link_index
                .binary_search_by(|&i| {
                    let l = &topo.links[i as usize];
                    (l.a, l.b).cmp(&key)
                })
                .ok()
                .and_then(|pos| topo.links[self.link_index[pos] as usize].bandwidth)
        }
    }

    fn closest(&self, a: usize) -> &[usize] {
        self.neighbor_rows[a].get_or_init(|| {
            let mut others: Vec<usize> = (0..self.n).filter(|&b| b != a).collect();
            others.sort_by_key(|&b| (self.latency(a, b), b));
            others
        })
    }

    fn resident_bytes(&self) -> usize {
        let mut total = self.adj_off.len() * size_of::<u32>()
            + self.adj.len() * size_of::<u32>()
            + self.level_lat.len() * size_of::<Option<u32>>()
            + self.exceptions.len() * size_of::<(u32, u32, u32, u32)>()
            + self.link_index.len() * size_of::<u32>()
            + self.local_bw.len() * size_of::<Option<f64>>();
        total += self
            .rows
            .lock()
            .unwrap()
            .entries
            .iter()
            .map(|(_, r)| r.len() * size_of::<u32>())
            .sum::<usize>();
        total += self
            .neighbor_rows
            .iter()
            .filter_map(|r| r.get())
            .map(|r| r.len() * size_of::<usize>())
            .sum::<usize>();
        total
    }
}

/// BFS hop distances from `src` over the CSR direct-link graph
/// (`u32::MAX` = unreachable).
fn bfs_row(adj_off: &[u32], adj: &[u32], n: usize, src: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; n];
    dist[src] = 0;
    let mut frontier = vec![src as u32];
    let mut next = Vec::new();
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        for &u in &frontier {
            let u = u as usize;
            for &v in &adj[adj_off[u] as usize..adj_off[u + 1] as usize] {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = d;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

impl DistanceStore {
    fn latency(&self, topo: &Mctop, a: usize, b: usize) -> u32 {
        match self {
            DistanceStore::Dense(d) => d.lat(topo)[a * d.n + b],
            DistanceStore::Sparse(s) => s.latency(a, b),
        }
    }

    fn hops(&self, topo: &Mctop, a: usize, b: usize) -> usize {
        match self {
            DistanceStore::Dense(d) => d.hops(topo)[a * d.n + b],
            DistanceStore::Sparse(s) => s.hops(a, b),
        }
    }

    fn cross_bw(&self, topo: &Mctop, a: usize, b: usize) -> Option<f64> {
        match self {
            DistanceStore::Dense(d) => {
                if a == b {
                    return None;
                }
                d.bw(topo)[a * d.n + b]
            }
            DistanceStore::Sparse(s) => s.cross_bw(topo, a, b),
        }
    }

    fn local_bw(&self, topo: &Mctop, socket: usize) -> Option<f64> {
        match self {
            DistanceStore::Dense(d) => d.bw(topo)[socket * d.n + socket],
            DistanceStore::Sparse(s) => s.local_bw[socket],
        }
    }

    fn closest(&self, topo: &Mctop, a: usize) -> &[usize] {
        match self {
            DistanceStore::Dense(d) => d.closest(topo, a),
            DistanceStore::Sparse(s) => s.closest(a),
        }
    }

    fn backend(&self) -> ViewBackend {
        match self {
            DistanceStore::Dense(_) => ViewBackend::Dense,
            DistanceStore::Sparse(_) => ViewBackend::Sparse,
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            DistanceStore::Dense(d) => d.resident_bytes(),
            DistanceStore::Sparse(s) => s.resident_bytes(),
        }
    }
}

/// A precomputed, shareable index over an immutable [`Mctop`].
///
/// Construction is O(S + E + N) plus lazy per-index costs on first
/// touch; every query afterwards is an O(1) table lookup or a borrowed
/// slice (amortized, for the sparse backend). The view holds the
/// topology behind an [`Arc`], so it is cheap to hand to worker pools
/// and placement caches, and it [`Deref`]s to [`Mctop`] for the model
/// accessors (`num_sockets`, `get_latency`, ...).
#[derive(Debug, Clone)]
pub struct TopoView {
    topo: Arc<Mctop>,
    socket_level: Option<usize>,
    intra_socket_latency: u32,
    n_sockets: usize,
    store: DistanceStore,
    /// Hand-out lists in one CSR arena, two row groups of S rows each:
    /// rows `[0, S)` contexts in cores-first order, rows `[S, 2S)`
    /// contexts in compact order.
    handout: CsrLists,
    /// Sockets sorted by local bandwidth, descending.
    by_bandwidth: Vec<usize>,
    /// The CON-policy socket walk (max-bandwidth start, then
    /// proximity), built on first use: it needs a full neighbor row per
    /// hop, which the sparse backend materializes lazily.
    order_bw_proximity: OnceLock<Vec<usize>>,
    min_latency_pair: Option<(usize, usize)>,
    max_latency_pair: Option<(usize, usize)>,
    /// Per context: owning socket.
    hwc_socket: Vec<usize>,
    /// Per context: owning core (machine-wide core index).
    hwc_core: Vec<usize>,
    /// Per context: local memory node of its socket.
    hwc_node: Vec<Option<usize>>,
}

impl TopoView {
    /// Builds the view, taking shared ownership of the topology. The
    /// distance backend is chosen by socket count
    /// ([`SPARSE_THRESHOLD_SOCKETS`]).
    pub fn new(topo: Arc<Mctop>) -> TopoView {
        let backend = if topo.num_sockets() >= SPARSE_THRESHOLD_SOCKETS {
            ViewBackend::Sparse
        } else {
            ViewBackend::Dense
        };
        Self::with_backend(topo, backend)
    }

    /// [`TopoView::new`] with an explicit distance backend — the
    /// equivalence tests and the scale bench force both on the same
    /// topology.
    pub fn with_backend(topo: Arc<Mctop>, backend: ViewBackend) -> TopoView {
        let s = topo.num_sockets();
        let socket_level = naive::socket_level_index(&topo);
        let intra = naive::intra_socket_latency(&topo);

        let store = match backend {
            ViewBackend::Dense => DistanceStore::Dense(DenseStore::new(s, intra)),
            ViewBackend::Sparse => DistanceStore::Sparse(SparseStore::build(&topo, intra)),
        };

        // One CSR arena for the hand-out lists: S cores-first rows,
        // then S compact rows.
        let n_hwcs = topo.hwcs.len();
        let mut handout = CsrLists::with_rows(2 * s, 2 * n_hwcs);
        for sk in 0..s {
            handout.push_row(naive::socket_hwcs_cores_first(&topo, sk));
        }
        for sk in 0..s {
            handout.push_row(naive::socket_hwcs_compact(&topo, sk));
        }

        // Straight from the model, not via the store: going through the
        // dense backend here would force its bandwidth matrix eagerly.
        let mut by_bandwidth: Vec<usize> = (0..s).collect();
        by_bandwidth.sort_by(|&a, &b| {
            let ba = topo.sockets[a].local_bandwidth().unwrap_or(0.0);
            let bb = topo.sockets[b].local_bandwidth().unwrap_or(0.0);
            bb.partial_cmp(&ba)
                .expect("bandwidths are finite")
                .then(a.cmp(&b))
        });

        let min_latency_pair = naive::min_latency_socket_pair(&topo);
        let max_latency_pair = naive::max_latency_socket_pair(&topo);

        let hwc_socket: Vec<usize> = topo.hwcs.iter().map(|h| h.socket).collect();
        let hwc_core: Vec<usize> = topo.hwcs.iter().map(|h| h.core).collect();
        let hwc_node: Vec<Option<usize>> = topo
            .hwcs
            .iter()
            .map(|h| topo.sockets[h.socket].local_node)
            .collect();

        TopoView {
            topo,
            socket_level,
            intra_socket_latency: intra,
            n_sockets: s,
            store,
            handout,
            by_bandwidth,
            order_bw_proximity: OnceLock::new(),
            min_latency_pair,
            max_latency_pair,
            hwc_socket,
            hwc_core,
            hwc_node,
        }
    }

    /// Builds a view from a borrowed topology (clones it into the view).
    pub fn build(topo: &Mctop) -> Result<TopoView, McTopError> {
        Self::try_new(Arc::new(topo.clone()))
    }

    /// Like [`TopoView::new`], but fails on topologies without a socket
    /// level instead of falling back to the intra-socket estimate.
    pub fn try_new(topo: Arc<Mctop>) -> Result<TopoView, McTopError> {
        topo.require_socket_level()?;
        Ok(Self::new(topo))
    }

    /// The topology behind the view.
    pub fn topo(&self) -> &Arc<Mctop> {
        &self.topo
    }

    /// The distance backend this view runs on.
    pub fn backend(&self) -> ViewBackend {
        self.store.backend()
    }

    /// Estimated heap bytes currently resident in the view's own
    /// indexes (distance store + hand-out lists + per-context tables +
    /// materialized caches; the shared [`Mctop`] is not counted). Lazy
    /// structures only count once touched, so the number grows with
    /// use — `mct show --stats` and the scale bench report it.
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
            + self.handout.heap_bytes()
            + self.by_bandwidth.len() * size_of::<usize>()
            + self
                .order_bw_proximity
                .get()
                .map_or(0, |v| v.len() * size_of::<usize>())
            + self.hwc_socket.len() * size_of::<usize>()
            + self.hwc_core.len() * size_of::<usize>()
            + self.hwc_node.len() * size_of::<Option<usize>>()
    }

    /// Index of the socket level in `levels`, if one was assigned.
    pub fn socket_level(&self) -> Option<usize> {
        self.socket_level
    }

    /// Median intra-socket communication latency.
    pub fn intra_socket_latency(&self) -> u32 {
        self.intra_socket_latency
    }

    /// Sockets sorted by latency from `socket`, closest first.
    pub fn closest_sockets(&self, socket: usize) -> &[usize] {
        assert!(socket < self.n_sockets);
        self.store.closest(&self.topo, socket)
    }

    /// Context-to-context latency between two sockets (`u32::MAX` if
    /// unknown).
    pub fn socket_latency(&self, a: usize, b: usize) -> u32 {
        assert!(a < self.n_sockets && b < self.n_sockets);
        self.store.latency(&self.topo, a, b)
    }

    /// Interconnect hops between two sockets (0 for a socket with
    /// itself, `usize::MAX` if unknown).
    pub fn socket_hops(&self, a: usize, b: usize) -> usize {
        assert!(a < self.n_sockets && b < self.n_sockets);
        self.store.hops(&self.topo, a, b)
    }

    /// Cross-socket memory bandwidth, if measured. Like the naive
    /// query, a socket has no cross link with itself — use
    /// [`TopoView::local_bandwidth`] for the diagonal.
    pub fn cross_bandwidth(&self, a: usize, b: usize) -> Option<f64> {
        assert!(a < self.n_sockets && b < self.n_sockets);
        self.store.cross_bw(&self.topo, a, b)
    }

    /// A socket's bandwidth to its local node, if measured.
    pub fn local_bandwidth(&self, socket: usize) -> Option<f64> {
        assert!(socket < self.n_sockets);
        self.store.local_bw(&self.topo, socket)
    }

    /// The distinct socket pair with minimum latency.
    pub fn min_latency_socket_pair(&self) -> Option<(usize, usize)> {
        self.min_latency_pair
    }

    /// The distinct socket pair with maximum latency (the "two most
    /// remote sockets" of the Section 1 policies).
    pub fn max_latency_socket_pair(&self) -> Option<(usize, usize)> {
        self.max_latency_pair
    }

    /// Sockets sorted by local memory bandwidth, descending.
    pub fn sockets_by_local_bandwidth(&self) -> &[usize] {
        &self.by_bandwidth
    }

    /// The socket with the maximum local memory bandwidth.
    pub fn max_bandwidth_socket(&self) -> usize {
        self.by_bandwidth[0]
    }

    /// The bandwidth-then-proximity socket walk of the CON policies.
    pub fn socket_order_bandwidth_proximity(&self) -> &[usize] {
        self.order_bw_proximity.get_or_init(|| {
            let s = self.n_sockets;
            let mut order = Vec::with_capacity(s);
            if s > 0 {
                let mut visited = vec![false; s];
                let mut cur = self.by_bandwidth[0];
                visited[cur] = true;
                order.push(cur);
                while order.len() < s {
                    let next = self
                        .closest_sockets(cur)
                        .iter()
                        .copied()
                        .find(|&b| !visited[b])
                        .expect("unvisited socket exists");
                    visited[next] = true;
                    order.push(next);
                    cur = next;
                }
            }
            order
        })
    }

    /// Contexts of a socket, unique cores first.
    pub fn socket_hwcs_cores_first(&self, socket: usize) -> &[usize] {
        assert!(socket < self.n_sockets);
        self.handout.row(socket)
    }

    /// Contexts of a socket in compact (core-filling) order.
    pub fn socket_hwcs_compact(&self, socket: usize) -> &[usize] {
        assert!(socket < self.n_sockets);
        self.handout.row(self.n_sockets + socket)
    }

    /// The socket of a context.
    pub fn socket_of(&self, hwc: usize) -> usize {
        self.hwc_socket[hwc]
    }

    /// The machine-wide core index of a context.
    pub fn core_of(&self, hwc: usize) -> usize {
        self.hwc_core[hwc]
    }

    /// The local memory node of a context's socket, if known.
    pub fn node_of(&self, hwc: usize) -> Option<usize> {
        self.hwc_node[hwc]
    }

    /// The distinct sockets used by the given contexts, ascending.
    pub fn sockets_used_by(&self, hwcs: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.n_sockets];
        for &h in hwcs {
            seen[self.hwc_socket[h]] = true;
        }
        seen.iter()
            .enumerate()
            .filter_map(|(s, &used)| used.then_some(s))
            .collect()
    }

    /// Maximum communication latency between any two of the given
    /// contexts (the educated-backoff quantum).
    pub fn max_latency_between(&self, hwcs: &[usize]) -> u32 {
        self.topo.max_latency_between(hwcs)
    }

    /// Minimum local bandwidth among the sockets used by the contexts.
    pub fn min_bandwidth_of(&self, hwcs: &[usize]) -> Option<f64> {
        let mut min: Option<f64> = None;
        for s in self.sockets_used_by(hwcs) {
            let bw = self.local_bandwidth(s)?;
            min = Some(min.map_or(bw, |m: f64| m.min(bw)));
        }
        min
    }

    /// Estimated LLC share (bytes) for each of `k` threads on a socket.
    pub fn llc_share_per_thread(&self, k: usize) -> Option<usize> {
        self.topo.llc_share_per_thread(k)
    }
}

impl Deref for TopoView {
    type Target = Mctop;

    fn deref(&self) -> &Mctop {
        &self.topo
    }
}

impl From<Mctop> for TopoView {
    fn from(topo: Mctop) -> TopoView {
        TopoView::new(Arc::new(topo))
    }
}

impl From<Arc<Mctop>> for TopoView {
    fn from(topo: Arc<Mctop>) -> TopoView {
        TopoView::new(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use crate::enrich::{
        enrich_all,
        SimEnricher, //
    };

    fn enriched(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let mut t = crate::alg::run(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    #[test]
    fn view_matches_naive_on_opteron() {
        let t = enriched(&mcsim::presets::opteron());
        let v = TopoView::build(&t).unwrap();
        for a in 0..t.num_sockets() {
            assert_eq!(v.closest_sockets(a), &t.closest_sockets(a)[..]);
            for b in 0..t.num_sockets() {
                assert_eq!(v.socket_latency(a, b), t.socket_latency(a, b));
                assert_eq!(v.cross_bandwidth(a, b), t.cross_bandwidth(a, b));
                if a != b {
                    assert_eq!(v.socket_hops(a, b), t.link(a, b).unwrap().hops);
                }
            }
            assert_eq!(
                v.socket_hwcs_cores_first(a),
                &t.socket_hwcs_cores_first(a)[..]
            );
            assert_eq!(v.socket_hwcs_compact(a), &t.socket_hwcs_compact(a)[..]);
        }
        assert_eq!(v.min_latency_socket_pair(), t.min_latency_socket_pair());
        assert_eq!(
            v.sockets_by_local_bandwidth(),
            &t.sockets_by_local_bandwidth()[..]
        );
        assert_eq!(
            v.socket_order_bandwidth_proximity(),
            &t.socket_order_bandwidth_proximity()[..]
        );
    }

    #[test]
    fn per_context_tables_match_model() {
        let t = enriched(&mcsim::presets::ivy());
        let v = TopoView::build(&t).unwrap();
        for h in 0..t.num_hwcs() {
            assert_eq!(v.socket_of(h), t.socket_of(h));
            assert_eq!(v.core_of(h), t.hwcs[h].core);
            assert_eq!(v.node_of(h), t.get_local_node(h));
        }
        assert_eq!(
            v.sockets_used_by(&[0, 20, 5]),
            t.sockets_used_by(&[0, 20, 5])
        );
        assert_eq!(v.min_bandwidth_of(&[0, 10]), t.min_bandwidth_of(&[0, 10]));
    }

    #[test]
    fn deref_exposes_model_accessors() {
        let t = enriched(&mcsim::presets::single_socket());
        let v = TopoView::build(&t).unwrap();
        assert_eq!(v.num_sockets(), 1);
        assert!(v.closest_sockets(0).is_empty());
        assert_eq!(v.min_latency_socket_pair(), None);
        assert_eq!(v.get_latency(0, 1), t.get_latency(0, 1));
    }

    #[test]
    fn missing_socket_level_is_an_error() {
        let mut t = enriched(&mcsim::presets::single_socket());
        t.levels = t
            .levels
            .iter()
            .filter(|l| !matches!(l.role, crate::model::LevelRole::Socket))
            .copied()
            .collect();
        assert!(t.socket_level_index().is_none());
        assert!(matches!(
            TopoView::build(&t),
            Err(McTopError::MissingLevel { .. })
        ));
        // The infallible constructor degrades to the best intra level.
        let v = TopoView::new(Arc::new(t));
        assert!(v.socket_level().is_none());
        assert!(v.intra_socket_latency() > 0);
    }

    #[test]
    fn dense_matrices_build_lazily() {
        let t = enriched(&mcsim::presets::opteron());
        let v = TopoView::build(&t).unwrap();
        assert_eq!(v.backend(), ViewBackend::Dense);
        let fresh = v.resident_bytes();
        let _ = v.socket_latency(0, 1);
        let after_lat = v.resident_bytes();
        assert!(after_lat > fresh, "latency matrix materialized on demand");
        let _ = v.cross_bandwidth(0, 1);
        assert!(
            v.resident_bytes() > after_lat,
            "bandwidth matrix only materialized when touched"
        );
    }

    #[test]
    fn sparse_backend_matches_dense_on_small_machines() {
        for spec in [mcsim::presets::opteron(), mcsim::presets::westmere()] {
            let t = Arc::new(enriched(&spec));
            let dense = TopoView::with_backend(Arc::clone(&t), ViewBackend::Dense);
            let sparse = TopoView::with_backend(Arc::clone(&t), ViewBackend::Sparse);
            assert_eq!(sparse.backend(), ViewBackend::Sparse);
            for a in 0..t.num_sockets() {
                assert_eq!(dense.closest_sockets(a), sparse.closest_sockets(a));
                for b in 0..t.num_sockets() {
                    assert_eq!(
                        dense.socket_latency(a, b),
                        sparse.socket_latency(a, b),
                        "{}: lat({a},{b})",
                        spec.name
                    );
                    assert_eq!(dense.socket_hops(a, b), sparse.socket_hops(a, b));
                    assert_eq!(dense.cross_bandwidth(a, b), sparse.cross_bandwidth(a, b));
                }
                assert_eq!(dense.local_bandwidth(a), sparse.local_bandwidth(a));
            }
            assert_eq!(
                dense.socket_order_bandwidth_proximity(),
                sparse.socket_order_bandwidth_proximity()
            );
        }
    }

    #[test]
    fn mesh_view_picks_sparse_and_stays_subquadratic() {
        // Mesh-scale machines need the mesh clustering config; go
        // through the canonical path that selects it.
        let spec = mcsim::presets::mesh(8);
        let t = Arc::new(crate::desc::canonical(&spec).unwrap().0);
        let s = t.num_sockets();
        assert!(s >= SPARSE_THRESHOLD_SOCKETS);
        let v = TopoView::new(Arc::clone(&t));
        assert_eq!(v.backend(), ViewBackend::Sparse);
        // Exercise a spread of queries, then check the store stayed far
        // below the dense matrices' S^2 footprint.
        for a in (0..s).step_by(7) {
            for b in 0..s {
                assert_eq!(v.socket_latency(a, b), t.socket_latency(a, b));
            }
        }
        let dense_matrix_bytes = s * s * (size_of::<u32>() + size_of::<usize>());
        assert!(
            v.resident_bytes() < dense_matrix_bytes,
            "sparse view {} bytes vs dense matrices {}",
            v.resident_bytes(),
            dense_matrix_bytes
        );
    }
}
