//! Graphviz export (the paper renders MCTOP with Graphviz; Figs. 1-3).
//!
//! Two graphs, as in the paper: the intra-socket topology (cores with
//! their hardware contexts, plus latency/bandwidth to every memory
//! node) and the cross-socket topology (sockets with link latencies and
//! bandwidths, multi-hop levels called out separately).

use std::fmt::Write as _;

use crate::model::{
    LevelRole,
    Mctop, //
};

/// DOT for the intra-socket topology of one socket (cf. Fig. 1a/2a/3).
pub fn intra_socket(topo: &Mctop, socket: usize) -> String {
    let s = &topo.sockets[socket];
    let socket_lat = topo.intra_socket_latency();
    let mut out = String::new();
    let _ = writeln!(out, "digraph socket{socket} {{");
    let _ = writeln!(
        out,
        "  graph [rankdir=TB, label=\"Socket {socket} - {socket_lat} cycles\"];"
    );
    let _ = writeln!(out, "  node [shape=record, fontsize=10];");
    // One record node per core listing its hardware contexts and the
    // SMT latency.
    for (ci, &cg) in s.cores.iter().enumerate() {
        let g = &topo.groups[cg];
        let ctxs: Vec<String> = g.hwcs.iter().map(|h| format!("{h:03}")).collect();
        let smt_note = if topo.smt > 1 {
            format!(
                "|{}",
                topo.levels
                    .iter()
                    .find(|l| matches!(l.role, LevelRole::Smt))
                    .map(|l| l.latency.median.to_string())
                    .unwrap_or_default()
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  core{ci} [label=\"{}{}\"];",
            ctxs.join("|"),
            smt_note
        );
    }
    // Memory nodes with latency and bandwidth from this socket.
    for node in 0..topo.num_nodes() {
        let lat = s.mem_latencies.get(node).copied();
        let bw = s.mem_bandwidths.get(node).copied();
        let label = match (lat, bw) {
            (Some(l), Some(b)) => format!("Node {node}\\n{l} cy\\n{b:.1} GB/s"),
            (Some(l), None) => format!("Node {node}\\n{l} cy"),
            _ => format!("Node {node}"),
        };
        let style = if s.local_node == Some(node) {
            ", style=filled, fillcolor=gray80"
        } else {
            ""
        };
        let _ = writeln!(out, "  node{node} [shape=box, label=\"{label}\"{style}];");
        let _ = writeln!(out, "  core0 -> node{node} [style=invis];");
    }
    out.push_str("}\n");
    out
}

/// DOT for the cross-socket topology (cf. Fig. 1b/2b). Direct links are
/// drawn as edges; multi-hop levels are summarized in a legend node, as
/// the paper does with "lvl 4 (2 hops)".
pub fn cross_socket(topo: &Mctop) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph cross_socket {{");
    let _ = writeln!(out, "  graph [layout=circo, label=\"{}\"];", topo.name);
    let _ = writeln!(out, "  node [shape=circle, fontsize=12];");
    for s in 0..topo.num_sockets() {
        let _ = writeln!(out, "  s{s} [label=\"{s}\"];");
    }
    for l in &topo.links {
        if l.hops != 1 {
            continue;
        }
        let bw = l
            .bandwidth
            .map(|b| format!("\\n{b:.1} GB/s"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  s{} -- s{} [label=\"{} cy{bw}\"];",
            l.a, l.b, l.latency
        );
    }
    // Multi-hop levels (one legend entry per distinct latency).
    let mut seen = Vec::new();
    for lvl in &topo.levels {
        if let LevelRole::CrossSocket { hops } = lvl.role {
            if hops > 1 && !seen.contains(&lvl.latency.median) {
                seen.push(lvl.latency.median);
                let _ = writeln!(
                    out,
                    "  legend{} [shape=note, label=\"lvl {} ({hops} hops)\\n{} cy\"];",
                    lvl.index, lvl.index, lvl.latency.median
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Both graphs concatenated (what `libmctop` writes next to the
/// description file).
pub fn full(topo: &Mctop) -> String {
    let mut out = intra_socket(topo, 0);
    if topo.num_sockets() > 1 {
        out.push('\n');
        out.push_str(&cross_socket(topo));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use crate::enrich::{
        enrich_all,
        SimEnricher, //
    };
    use mcsim::presets;

    fn enriched(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let mut topo = crate::alg::run(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut topo, &mut e, &mut pw).unwrap();
        topo
    }

    #[test]
    fn opteron_cross_socket_mentions_two_hop_level() {
        let topo = enriched(&presets::opteron());
        let dot = cross_socket(&topo);
        // Fig. 1b: a "(2 hops)" legend with 300 cycles.
        assert!(dot.contains("(2 hops)"), "{dot}");
        assert!(dot.contains("300 cy"), "{dot}");
        // MCM links at 197 drawn as direct edges.
        assert!(dot.contains("197 cy"));
    }

    #[test]
    fn intra_socket_shows_contexts_and_local_node() {
        let topo = enriched(&presets::synthetic_small());
        let dot = intra_socket(&topo, 0);
        assert!(dot.contains("000|008"), "{dot}");
        assert!(dot.contains("fillcolor=gray80"));
        assert!(dot.contains("GB/s"));
    }

    #[test]
    fn full_output_is_valid_dotish() {
        for spec in [presets::ivy(), presets::single_socket()] {
            let topo = enriched(&spec);
            let dot = full(&topo);
            assert_eq!(dot.matches("digraph").count(), 1);
            let opens = dot.matches('{').count();
            let closes = dot.matches('}').count();
            assert_eq!(opens, closes);
        }
    }
}
