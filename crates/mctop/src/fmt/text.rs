//! Textual rendering of a topology ("visualize the topology as textual
//! output", Section 2).

use std::fmt::Write as _;

use crate::model::{
    LevelRole,
    Mctop, //
};

/// Multi-line human-readable dump: summary, latency levels, sockets with
/// cores/contexts/memory, and the interconnect.
pub fn render(topo: &Mctop) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## MCTOP topology: {}", topo.summary());
    let _ = writeln!(out, "# Latency levels:");
    for l in &topo.levels {
        let role = match l.role {
            LevelRole::SelfLevel => "self".to_string(),
            LevelRole::Smt => "smt (core)".to_string(),
            LevelRole::IntraGroup => "intra-socket group".to_string(),
            LevelRole::Socket => "socket".to_string(),
            LevelRole::CrossSocket { hops } => format!("cross-socket ({hops} hop)"),
        };
        let _ = writeln!(
            out,
            "#   level {}: {:>4} cycles  (min {}, max {})  [{}]",
            l.index, l.latency.median, l.latency.min, l.latency.max, role
        );
    }
    for s in &topo.sockets {
        let _ = writeln!(
            out,
            "# Socket {} ({} cores, {} contexts):",
            s.id,
            s.cores.len(),
            s.hwcs.len()
        );
        for &cg in &s.cores {
            let g = &topo.groups[cg];
            let ctxs: Vec<String> = g.hwcs.iter().map(|h| h.to_string()).collect();
            let _ = writeln!(out, "#   core {}: contexts [{}]", g.id, ctxs.join(", "));
        }
        match s.local_node {
            Some(n) => {
                let lat = s
                    .local_latency()
                    .map(|l| format!("{l} cy"))
                    .unwrap_or_default();
                let bw = s
                    .local_bandwidth()
                    .map(|b| format!("{b:.1} GB/s"))
                    .unwrap_or_default();
                let _ = writeln!(out, "#   local node {n} {lat} {bw}");
            }
            None => {
                let _ = writeln!(out, "#   local node unknown");
            }
        }
    }
    if !topo.links.is_empty() {
        let _ = writeln!(out, "# Interconnect:");
        for l in &topo.links {
            let bw = l
                .bandwidth
                .map(|b| format!("  {b:.1} GB/s"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "#   {} <-> {}: {} cycles, {} hop(s){bw}",
                l.a, l.b, l.latency, l.hops
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use mcsim::presets;

    #[test]
    fn render_contains_key_facts() {
        let spec = presets::synthetic_small();
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let topo = crate::alg::run(&mut p, &cfg).unwrap();
        let text = render(&topo);
        assert!(text.contains("synth-small"));
        assert!(text.contains("socket"));
        assert!(text.contains("100 cycles"));
        assert!(text.contains("290 cycles"));
        assert!(text.contains("core"));
    }
}
