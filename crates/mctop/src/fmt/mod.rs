//! Rendering MCTOP topologies: Graphviz graphs (as in Figs. 1-3 of the
//! paper) and a textual dump.

pub mod dot;
pub mod text;
