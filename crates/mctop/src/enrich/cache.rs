//! Cache latency and size plugin (Section 4).
//!
//! Latency per level comes from pointer chases with growing working
//! sets; a level's capacity is estimated as the largest working set
//! before the chase latency jumps toward the next level. The OS-reported
//! sizes, when available, are recorded alongside the estimates.

use super::MemoryProbe;
use crate::error::McTopError;
use crate::model::{
    CacheLevelInfo,
    Mctop, //
};

/// Relative latency jump that marks a level boundary.
const JUMP: f64 = 1.25;
/// Smallest working set probed (well inside any L1).
const MIN_WS: usize = 4 * 1024;
/// Largest working set probed (well outside any LLC).
const MAX_WS: usize = 512 * 1024 * 1024;

/// Estimates the cache hierarchy seen from context 0's socket.
pub fn cache_plugin<M: MemoryProbe>(topo: &mut Mctop, probe: &mut M) -> Result<(), McTopError> {
    let rep = topo.sockets[0].hwcs[0];
    let node = topo.sockets[0].local_node.unwrap_or(0);

    // Geometric sweep of working sets.
    let mut points: Vec<(usize, f64)> = Vec::new();
    let mut ws = MIN_WS;
    while ws <= MAX_WS {
        points.push((ws, probe.chase_latency(rep, node, ws)));
        // A fine-grained geometric step (x1.25) so the knees are sharp.
        ws = (ws as f64 * 1.25) as usize;
    }

    // Split the curve into plateaus. A point extends the current
    // plateau while its latency stays within JUMP of the plateau's
    // first point; otherwise it begins a *transition ramp* (partial
    // misses between a level's capacity and the next level), which is
    // skipped until the curve stops climbing — ramp points belong to no
    // level.
    let mut plateaus: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut cur = vec![points[0]];
    let mut i = 1usize;
    while i < points.len() {
        let (_, lat) = points[i];
        if lat <= cur[0].1 * JUMP {
            cur.push(points[i]);
            i += 1;
        } else {
            plateaus.push(std::mem::take(&mut cur));
            // Skip while still climbing.
            while i + 1 < points.len() && points[i + 1].1 > points[i].1 * 1.05 {
                i += 1;
            }
            cur = vec![points[i]];
            i += 1;
        }
    }
    plateaus.push(cur);

    // The last plateau is memory, not a cache: drop it.
    if plateaus.len() > 1 {
        plateaus.pop();
    }
    let mut levels: Vec<CacheLevelInfo> = Vec::new();
    for plateau in &plateaus {
        let latency =
            mcsim::stats::median_f64(&plateau.iter().map(|&(_, l)| l).collect::<Vec<_>>());
        levels.push(CacheLevelInfo {
            name: default_name(levels.len()),
            // The level's capacity is where its plateau ends.
            size_estimate: plateau.last().expect("plateaus are non-empty").0,
            os_size: None,
            latency: latency.round() as u32,
        });
    }
    if levels.is_empty() {
        return Err(McTopError::IrregularTopology(
            "cache sweep found no plateau below memory".into(),
        ));
    }

    // Merge OS-reported sizes when the OS exposes them.
    if let Some(os) = probe.os_cache_info() {
        for (i, (name, size)) in os.into_iter().enumerate() {
            if let Some(level) = levels.get_mut(i) {
                level.os_size = Some(size);
                level.name = name;
            }
        }
    }
    topo.caches = Some(levels);
    Ok(())
}

fn default_name(idx: usize) -> String {
    match idx {
        0 => "L1".into(),
        1 => "L2".into(),
        2 => "LLC".into(),
        n => format!("L{}", n + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enrich::tests::inferred;
    use crate::enrich::SimEnricher;
    use mcsim::presets;

    #[test]
    fn detects_three_levels_on_ivy_like_hierarchies() {
        let spec = presets::synthetic_small();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        cache_plugin(&mut topo, &mut e).unwrap();
        let caches = topo.caches.as_ref().unwrap();
        assert_eq!(caches.len(), 3, "{caches:?}");
        // Latencies close to the spec (4, 12, 40 cycles).
        assert!(caches[0].latency <= 6);
        assert!((10..=16).contains(&caches[1].latency));
        assert!((32..=48).contains(&caches[2].latency));
        // Size estimates within a factor ~1.6 of truth (plateau ends at
        // the capacity knee; the geometric sweep quantizes it).
        for (est, truth) in caches.iter().zip(&spec.caches) {
            let ratio = est.size_estimate as f64 / truth.size as f64;
            assert!((0.6..=1.7).contains(&ratio), "{}: ratio {ratio}", est.name);
        }
    }

    #[test]
    fn os_sizes_merged_in() {
        let spec = presets::synthetic_small();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        cache_plugin(&mut topo, &mut e).unwrap();
        let caches = topo.caches.unwrap();
        assert_eq!(caches[0].os_size, Some(32 * 1024));
        assert_eq!(caches[0].name, "L1");
        assert_eq!(caches[2].os_size, Some(8 * 1024 * 1024));
    }

    #[test]
    fn works_on_every_paper_platform() {
        for spec in presets::all_paper_platforms() {
            let mut topo = inferred(&spec);
            let mut e = SimEnricher::new(&spec);
            cache_plugin(&mut topo, &mut e).unwrap();
            let caches = topo.caches.unwrap();
            assert_eq!(caches.len(), spec.caches.len(), "{}", spec.name);
        }
    }
}
