//! Memory latency and bandwidth plugins (Section 4).
//!
//! The latency plugin pointer-chases a large working set from one
//! context of every socket to every node; each socket's *local* node is
//! the one it reaches with minimum latency. This measured mapping is
//! authoritative: on the paper's Opteron it corrects the operating
//! system's misconfigured view (footnote 1).
//!
//! The bandwidth plugin streams sequentially with all cores of a socket
//! and records per-(socket, node) bandwidths plus the cross-socket link
//! bandwidths.

use super::MemoryProbe;
use crate::error::McTopError;
use crate::model::{
    Mctop,
    NodeAssignment, //
};

/// Working set for memory-latency chases: far beyond any LLC.
const CHASE_WS: usize = 512 * 1024 * 1024;

/// Measures per-(socket, node) load latencies and assigns local nodes.
pub fn latency_plugin<M: MemoryProbe>(topo: &mut Mctop, probe: &mut M) -> Result<(), McTopError> {
    let n_nodes = probe.num_nodes();
    if n_nodes != topo.num_nodes() {
        return Err(McTopError::IrregularTopology(format!(
            "probe reports {n_nodes} nodes, topology has {}",
            topo.num_nodes()
        )));
    }
    for si in 0..topo.num_sockets() {
        let rep = topo.sockets[si].hwcs[0];
        let mut lats = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            lats.push(probe.chase_latency(rep, node, CHASE_WS).round() as u32);
        }
        let local = (0..n_nodes)
            .min_by_key(|&n| (lats[n], n))
            .expect("at least one node");
        let s = &mut topo.sockets[si];
        s.mem_latencies = lats;
        s.local_node = Some(local);
    }
    // Home sockets: the socket with minimum latency to the node (two
    // sockets can share a node; the first such socket is recorded).
    for node in 0..n_nodes {
        let home = (0..topo.num_sockets())
            .min_by_key(|&s| (topo.sockets[s].mem_latencies[node], s))
            .expect("at least one socket");
        topo.nodes[node].home_socket = Some(home);
        topo.nodes[node].capacity_gb = probe.node_capacity_gb(node);
    }
    topo.node_assignment = NodeAssignment::Measured;
    Ok(())
}

/// Measures per-(socket, node) stream bandwidths and fills the
/// cross-socket link bandwidths.
pub fn bandwidth_plugin<M: MemoryProbe>(topo: &mut Mctop, probe: &mut M) -> Result<(), McTopError> {
    let n_nodes = probe.num_nodes();
    for si in 0..topo.num_sockets() {
        // One streaming thread per core (SMT siblings share load ports,
        // adding them does not raise bandwidth).
        let threads: Vec<usize> = topo.sockets[si]
            .cores
            .iter()
            .map(|&cg| topo.groups[cg].hwcs[0])
            .collect();
        let mut bws = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            bws.push(probe.stream_bandwidth(&threads, node));
        }
        // Single-core bandwidth to the local node (RR_SCALE input).
        let local = topo.sockets[si].local_node.unwrap_or(0);
        let single = probe.stream_bandwidth(&threads[..1], local);
        let s = &mut topo.sockets[si];
        s.mem_bandwidths = bws;
        s.single_core_bw = Some(single);
    }
    // Link bandwidth between sockets a and b: what a's cores can stream
    // from b's local node.
    for li in 0..topo.links.len() {
        let (a, b) = (topo.links[li].a, topo.links[li].b);
        let bw = match topo.sockets[b].local_node {
            Some(node) => topo.sockets[a].mem_bandwidths.get(node).copied(),
            None => None,
        };
        topo.links[li].bandwidth = bw;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::validate::{
        compare_with_os,
        Divergence,
        OsTopology, //
    };
    use crate::enrich::tests::inferred;
    use crate::enrich::SimEnricher;
    use mcsim::presets;

    #[test]
    fn local_node_is_minimum_latency_node() {
        let spec = presets::westmere();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        for s in &topo.sockets {
            let local = s.local_node.unwrap();
            let min = *s.mem_latencies.iter().min().unwrap();
            assert_eq!(s.mem_latencies[local], min);
        }
    }

    #[test]
    fn opteron_measured_mapping_corrects_the_os() {
        // Footnote 1 of the paper: "the OS has an incorrect mapping of
        // cores to memory nodes, while MCTOP-ALG infers the correct
        // mapping."
        let spec = presets::opteron();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        // Measured mapping equals the physical one.
        for s in &topo.sockets {
            let physical_socket = spec.loc(s.hwcs[0]).socket;
            assert_eq!(
                s.local_node,
                Some(spec.local_node_of_socket[physical_socket])
            );
        }
        // And the OS comparison reports the divergences.
        let os = OsTopology::from_spec(&spec);
        let divs = compare_with_os(&topo, &os);
        assert!(!divs.is_empty());
        assert!(divs
            .iter()
            .all(|d| matches!(d, Divergence::NodeMapping { .. })));
        assert_eq!(divs.len(), 8);
    }

    #[test]
    fn shared_node_machines_share_home_nodes() {
        let spec = presets::shared_node();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        // Four sockets, two nodes: each node local to two sockets.
        let mut count = vec![0usize; 2];
        for s in &topo.sockets {
            count[s.local_node.unwrap()] += 1;
        }
        assert_eq!(count, vec![2, 2]);
    }

    #[test]
    fn ivy_bandwidths_pin_hand_computed_values() {
        // Pin the full per-(socket, node) bandwidth matrix of Ivy
        // against values derived by hand from the machine model:
        //
        // - local routes see the controller: 24.3 GB/s;
        // - the remote route (s, n) is capped by
        //   min(remote_bw, link_bw) = min(16.0, 16.0) = 16.0 GB/s and
        //   scaled by the deterministic routing jitter
        //   0.85 + 0.15 * (((s * 0x9E37_79B9 + n) * 0x85EB_CA6B mod 2^64) >> 16 % 1000) / 1000:
        //   (0,1): jitter = 0.85 + 0.15 * 0.254 = 0.89245 -> 14.2792
        //   (1,0): jitter = 0.85 + 0.15 * 0.222 = 0.88330 -> 14.1328
        let spec = presets::ivy();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        bandwidth_plugin(&mut topo, &mut e).unwrap();

        let s0 = &topo.sockets[0].mem_bandwidths;
        let s1 = &topo.sockets[1].mem_bandwidths;
        assert!((s0[0] - 24.3).abs() < 1e-9, "{s0:?}");
        assert!((s0[1] - 14.2792).abs() < 1e-9, "{s0:?}");
        assert!((s1[0] - 14.1328).abs() < 1e-9, "{s1:?}");
        assert!((s1[1] - 24.3).abs() < 1e-9, "{s1:?}");
        // One core streams min(per_core, local) = 6.1 GB/s.
        assert!((topo.sockets[0].single_core_bw.unwrap() - 6.1).abs() < 1e-9);
        // The link record carries what socket 0 streams from node 1.
        assert!((topo.link(0, 1).unwrap().bandwidth.unwrap() - 14.2792).abs() < 1e-9);

        // The bandwidth-proportional stripe ratio this matrix implies
        // for socket 0: 24.3 / (24.3 + 14.2792) = 0.629872... — i.e.
        // 10320 of 16384 pages, which `mct query alloc-plan bw` pins in
        // its golden files.
        let frac = s0[0] / (s0[0] + s0[1]);
        assert!((frac - 0.629_872_56).abs() < 1e-6, "{frac}");
        assert_eq!((16384.0 * frac).round() as usize, 10320);
    }

    #[test]
    fn saturation_thread_counts_pin_hand_computed_values() {
        // RR_SCALE / mctop-alloc saturation arithmetic,
        // ceil(local_bw / single_core_bw), against hand-computed
        // values on two presets:
        //   ivy:      ceil(24.3 / 6.1) = ceil(3.984) = 4
        //   westmere: ceil(13.1 / 3.3) = ceil(3.970) = 4  (and not 3!)
        for (spec, want) in [(presets::ivy(), 4), (presets::westmere(), 4)] {
            let mut topo = inferred(&spec);
            let mut e = SimEnricher::new(&spec);
            latency_plugin(&mut topo, &mut e).unwrap();
            bandwidth_plugin(&mut topo, &mut e).unwrap();
            for s in &topo.sockets {
                let local = s.local_bandwidth().unwrap();
                let single = s.single_core_bw.unwrap();
                let threads = (local / single).ceil() as usize;
                assert_eq!(threads, want, "{} socket {}", spec.name, s.id);
                // The shared helper behind RR_SCALE and mctop-alloc
                // computes the same count...
                assert_eq!(s.threads_to_saturate(), Some(want));
                // ...and agrees with the oracle the policy was
                // calibrated against.
                let oracle = mcsim::MemoryOracle::noiseless(&spec);
                assert_eq!(oracle.threads_to_saturate(s.id), want);
            }
        }
    }

    #[test]
    fn bandwidths_local_exceed_remote() {
        let spec = presets::westmere();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        bandwidth_plugin(&mut topo, &mut e).unwrap();
        for s in &topo.sockets {
            let local = s.local_bandwidth().unwrap();
            for (node, &bw) in s.mem_bandwidths.iter().enumerate() {
                if Some(node) != s.local_node {
                    assert!(bw <= local + 1e-9, "socket {} node {node}", s.id);
                }
            }
        }
        assert!(topo.links.iter().all(|l| l.bandwidth.unwrap() > 0.0));
    }
}
