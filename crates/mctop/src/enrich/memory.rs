//! Memory latency and bandwidth plugins (Section 4).
//!
//! The latency plugin pointer-chases a large working set from one
//! context of every socket to every node; each socket's *local* node is
//! the one it reaches with minimum latency. This measured mapping is
//! authoritative: on the paper's Opteron it corrects the operating
//! system's misconfigured view (footnote 1).
//!
//! The bandwidth plugin streams sequentially with all cores of a socket
//! and records per-(socket, node) bandwidths plus the cross-socket link
//! bandwidths.

use super::MemoryProbe;
use crate::error::McTopError;
use crate::model::{
    Mctop,
    NodeAssignment, //
};

/// Working set for memory-latency chases: far beyond any LLC.
const CHASE_WS: usize = 512 * 1024 * 1024;

/// Measures per-(socket, node) load latencies and assigns local nodes.
pub fn latency_plugin<M: MemoryProbe>(topo: &mut Mctop, probe: &mut M) -> Result<(), McTopError> {
    let n_nodes = probe.num_nodes();
    if n_nodes != topo.num_nodes() {
        return Err(McTopError::IrregularTopology(format!(
            "probe reports {n_nodes} nodes, topology has {}",
            topo.num_nodes()
        )));
    }
    for si in 0..topo.num_sockets() {
        let rep = topo.sockets[si].hwcs[0];
        let mut lats = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            lats.push(probe.chase_latency(rep, node, CHASE_WS).round() as u32);
        }
        let local = (0..n_nodes)
            .min_by_key(|&n| (lats[n], n))
            .expect("at least one node");
        let s = &mut topo.sockets[si];
        s.mem_latencies = lats;
        s.local_node = Some(local);
    }
    // Home sockets: the socket with minimum latency to the node (two
    // sockets can share a node; the first such socket is recorded).
    for node in 0..n_nodes {
        let home = (0..topo.num_sockets())
            .min_by_key(|&s| (topo.sockets[s].mem_latencies[node], s))
            .expect("at least one socket");
        topo.nodes[node].home_socket = Some(home);
        topo.nodes[node].capacity_gb = probe.node_capacity_gb(node);
    }
    topo.node_assignment = NodeAssignment::Measured;
    Ok(())
}

/// Measures per-(socket, node) stream bandwidths and fills the
/// cross-socket link bandwidths.
pub fn bandwidth_plugin<M: MemoryProbe>(topo: &mut Mctop, probe: &mut M) -> Result<(), McTopError> {
    let n_nodes = probe.num_nodes();
    for si in 0..topo.num_sockets() {
        // One streaming thread per core (SMT siblings share load ports,
        // adding them does not raise bandwidth).
        let threads: Vec<usize> = topo.sockets[si]
            .cores
            .iter()
            .map(|&cg| topo.groups[cg].hwcs[0])
            .collect();
        let mut bws = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            bws.push(probe.stream_bandwidth(&threads, node));
        }
        // Single-core bandwidth to the local node (RR_SCALE input).
        let local = topo.sockets[si].local_node.unwrap_or(0);
        let single = probe.stream_bandwidth(&threads[..1], local);
        let s = &mut topo.sockets[si];
        s.mem_bandwidths = bws;
        s.single_core_bw = Some(single);
    }
    // Link bandwidth between sockets a and b: what a's cores can stream
    // from b's local node.
    for li in 0..topo.links.len() {
        let (a, b) = (topo.links[li].a, topo.links[li].b);
        let bw = match topo.sockets[b].local_node {
            Some(node) => topo.sockets[a].mem_bandwidths.get(node).copied(),
            None => None,
        };
        topo.links[li].bandwidth = bw;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::validate::{
        compare_with_os,
        Divergence,
        OsTopology, //
    };
    use crate::enrich::tests::inferred;
    use crate::enrich::SimEnricher;
    use mcsim::presets;

    #[test]
    fn local_node_is_minimum_latency_node() {
        let spec = presets::westmere();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        for s in &topo.sockets {
            let local = s.local_node.unwrap();
            let min = *s.mem_latencies.iter().min().unwrap();
            assert_eq!(s.mem_latencies[local], min);
        }
    }

    #[test]
    fn opteron_measured_mapping_corrects_the_os() {
        // Footnote 1 of the paper: "the OS has an incorrect mapping of
        // cores to memory nodes, while MCTOP-ALG infers the correct
        // mapping."
        let spec = presets::opteron();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        // Measured mapping equals the physical one.
        for s in &topo.sockets {
            let physical_socket = spec.loc(s.hwcs[0]).socket;
            assert_eq!(
                s.local_node,
                Some(spec.local_node_of_socket[physical_socket])
            );
        }
        // And the OS comparison reports the divergences.
        let os = OsTopology::from_spec(&spec);
        let divs = compare_with_os(&topo, &os);
        assert!(!divs.is_empty());
        assert!(divs
            .iter()
            .all(|d| matches!(d, Divergence::NodeMapping { .. })));
        assert_eq!(divs.len(), 8);
    }

    #[test]
    fn shared_node_machines_share_home_nodes() {
        let spec = presets::shared_node();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        // Four sockets, two nodes: each node local to two sockets.
        let mut count = vec![0usize; 2];
        for s in &topo.sockets {
            count[s.local_node.unwrap()] += 1;
        }
        assert_eq!(count, vec![2, 2]);
    }

    #[test]
    fn bandwidths_local_exceed_remote() {
        let spec = presets::westmere();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        latency_plugin(&mut topo, &mut e).unwrap();
        bandwidth_plugin(&mut topo, &mut e).unwrap();
        for s in &topo.sockets {
            let local = s.local_bandwidth().unwrap();
            for (node, &bw) in s.mem_bandwidths.iter().enumerate() {
                if Some(node) != s.local_node {
                    assert!(bw <= local + 1e-9, "socket {} node {node}", s.id);
                }
            }
        }
        assert!(topo.links.iter().all(|l| l.bandwidth.unwrap() > 0.0));
    }
}
