//! Power plugin (Section 4, "Power Consumption").
//!
//! Derives the four numbers the paper measures with RAPL — idle power,
//! full power, power of the first context of a core, power of the
//! second context — plus the per-socket DRAM contribution, all from
//! differential measurements under a memory-intensive workload.

use super::PowerProbe;
use crate::error::McTopError;
use crate::model::{
    Mctop,
    PowerInfo, //
};

/// Runs the power plugin. Returns [`McTopError::Unavailable`] on
/// machines without power counters (non-Intel, in the paper).
pub fn power_plugin<P: PowerProbe>(topo: &mut Mctop, probe: &mut P) -> Result<(), McTopError> {
    if !probe.available() {
        return Err(McTopError::Unavailable("power counters (RAPL)"));
    }
    let idle = probe.measure_power(&[], false);
    let socket_base = idle / topo.num_sockets() as f64;

    // First and second context of core 0.
    let core0 = &topo.groups[topo.cores[0]];
    let h0 = core0.hwcs[0];
    let one = probe.measure_power(&[h0], false);
    let first_ctx = one - idle;
    let second_ctx = if topo.smt > 1 {
        let h1 = core0.hwcs[1];
        probe.measure_power(&[h0, h1], false) - one
    } else {
        0.0
    };
    let dram_socket = probe.measure_power(&[h0], true) - one;

    let all: Vec<usize> = (0..topo.num_hwcs()).collect();
    let full = probe.measure_power(&all, true);

    topo.power = Some(PowerInfo {
        idle_w: idle,
        full_w: full,
        socket_base_w: socket_base,
        first_ctx_w: first_ctx,
        second_ctx_w: second_ctx,
        dram_socket_w: dram_socket,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enrich::tests::inferred;
    use crate::enrich::SimEnricher;
    use mcsim::presets;

    #[test]
    fn derived_power_matches_the_model() {
        let spec = presets::ivy();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        power_plugin(&mut topo, &mut e).unwrap();
        let p = topo.power.as_ref().unwrap();
        assert!((p.socket_base_w - 20.1).abs() < 1e-6);
        assert!((p.first_ctx_w - 3.5).abs() < 1e-6);
        assert!((p.second_ctx_w - 1.16).abs() < 1e-6);
        assert!((p.dram_socket_w - 45.2).abs() < 1e-6);
        assert!(p.full_w > p.idle_w);
    }

    #[test]
    fn estimate_reproduces_fig7_wattages() {
        // CON_HWC with 30 threads on Ivy: 20 contexts on socket 0
        // (10 cores), 10 on socket 1 (5 cores). Fig. 7 prints
        // 66.7 + 43.4 = 110.1 W and 111.9 + 88.7 = 200.6 W.
        let spec = presets::ivy();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        power_plugin(&mut topo, &mut e).unwrap();
        let p = topo.power.clone().unwrap();
        let mut active = Vec::new();
        for s in 0..2usize {
            let take = if s == 0 { 20 } else { 10 };
            active.extend(topo.socket_hwcs_compact(s).into_iter().take(take));
        }
        let no_dram = p.estimate(&topo, &active, false);
        let with_dram = p.estimate(&topo, &active, true);
        assert!((no_dram - 110.1).abs() < 0.5, "no dram: {no_dram}");
        assert!((with_dram - 200.6).abs() < 1.0, "with dram: {with_dram}");
    }

    #[test]
    fn unavailable_on_non_intel() {
        let spec = presets::opteron();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        let err = power_plugin(&mut topo, &mut e).unwrap_err();
        assert!(matches!(err, McTopError::Unavailable(_)));
        assert!(topo.power.is_none());
    }
}
