//! Enriching MCTOP topologies (Section 4 of the paper).
//!
//! The basic topology carries only communication latencies. Four plugins
//! add the rest of the low-level picture: memory latencies, memory
//! bandwidths, cache latencies/sizes, and power. Plugins talk to the
//! machine through narrow probe traits, so they run unchanged over the
//! simulator ([`SimEnricher`]) or a real backend.

pub mod cache;
pub mod memory;
pub mod power;

use crate::error::McTopError;
use crate::model::Mctop;

/// Measurement backend for the memory and cache plugins: pointer-chase
/// latency and sequential-stream bandwidth, as in the Corey-style
/// microbenchmarks the paper uses.
pub trait MemoryProbe {
    /// Number of memory nodes.
    fn num_nodes(&self) -> usize;

    /// Average load-to-use latency (cycles) of a random pointer chase
    /// over `working_set` bytes on `node`, executed from context `hwc`.
    fn chase_latency(&mut self, hwc: usize, node: usize, working_set: usize) -> f64;

    /// Aggregate sequential-read bandwidth (GB/s) achieved by the given
    /// contexts streaming from `node`.
    fn stream_bandwidth(&mut self, hwcs: &[usize], node: usize) -> f64;

    /// Cache levels `(name, size)` as reported by the OS, if available.
    fn os_cache_info(&mut self) -> Option<Vec<(String, usize)>> {
        None
    }

    /// Capacity of a node in GB, if known.
    fn node_capacity_gb(&mut self, _node: usize) -> Option<f64> {
        None
    }
}

/// Measurement backend for the power plugin (RAPL on the paper's Intel
/// machines).
pub trait PowerProbe {
    /// Whether power counters exist on this machine.
    fn available(&self) -> bool;

    /// Average power (W) while the given contexts run a memory-intensive
    /// workload; `with_dram` includes the DRAM domain.
    fn measure_power(&mut self, active_hwcs: &[usize], with_dram: bool) -> f64;
}

/// Runs every applicable plugin (memory latency, memory bandwidth,
/// cache, power) in the order the paper describes.
pub fn enrich_all<M, P>(topo: &mut Mctop, mem: &mut M, pow: &mut P) -> Result<(), McTopError>
where
    M: MemoryProbe,
    P: PowerProbe,
{
    memory::latency_plugin(topo, mem)?;
    memory::bandwidth_plugin(topo, mem)?;
    cache::cache_plugin(topo, mem)?;
    match power::power_plugin(topo, pow) {
        Ok(()) | Err(McTopError::Unavailable(_)) => {}
        Err(e) => return Err(e),
    }
    Ok(())
}

/// Simulator-backed implementation of both probe traits.
#[derive(Debug)]
pub struct SimEnricher<'m> {
    spec: &'m mcsim::MachineSpec,
    mem: mcsim::MemoryOracle<'m>,
    power: mcsim::PowerModel<'m>,
}

impl<'m> SimEnricher<'m> {
    /// Deterministic (noise-free) enricher over a machine spec.
    pub fn new(spec: &'m mcsim::MachineSpec) -> Self {
        SimEnricher {
            spec,
            mem: mcsim::MemoryOracle::noiseless(spec),
            power: mcsim::PowerModel::new(spec),
        }
    }
}

impl MemoryProbe for SimEnricher<'_> {
    fn num_nodes(&self) -> usize {
        self.spec.nodes
    }

    fn chase_latency(&mut self, hwc: usize, node: usize, working_set: usize) -> f64 {
        let socket = self.spec.loc(hwc).socket;
        self.mem.chase_latency(socket, node, working_set)
    }

    fn stream_bandwidth(&mut self, hwcs: &[usize], node: usize) -> f64 {
        if hwcs.is_empty() {
            return 0.0;
        }
        let socket = self.spec.loc(hwcs[0]).socket;
        self.mem.stream_bandwidth(socket, node, hwcs.len())
    }

    fn os_cache_info(&mut self) -> Option<Vec<(String, usize)>> {
        Some(
            self.spec
                .caches
                .iter()
                .map(|c| (c.name.clone(), c.size))
                .collect(),
        )
    }

    fn node_capacity_gb(&mut self, _node: usize) -> Option<f64> {
        Some(self.spec.mem.node_capacity_gb)
    }
}

impl PowerProbe for SimEnricher<'_> {
    fn available(&self) -> bool {
        self.power.available()
    }

    fn measure_power(&mut self, active_hwcs: &[usize], with_dram: bool) -> f64 {
        let b = self.power.estimate(active_hwcs);
        if with_dram {
            b.total_with_dram()
        } else {
            b.total()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use crate::model::NodeAssignment;
    use mcsim::presets;

    pub(crate) fn inferred(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        crate::alg::run(&mut p, &cfg).unwrap()
    }

    #[test]
    fn enrich_all_fills_everything_on_intel() {
        let spec = presets::synthetic_small();
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        let mut p = SimEnricher::new(&spec);
        enrich_all(&mut topo, &mut e, &mut p).unwrap();
        assert_eq!(topo.node_assignment, NodeAssignment::Measured);
        assert!(topo.caches.is_some());
        assert!(topo.power.is_some());
        for s in &topo.sockets {
            assert_eq!(s.mem_latencies.len(), spec.nodes);
            assert_eq!(s.mem_bandwidths.len(), spec.nodes);
            assert!(s.local_node.is_some());
        }
        assert!(topo.links.iter().all(|l| l.bandwidth.is_some()));
    }

    #[test]
    fn enrich_all_skips_power_on_non_intel() {
        let spec = presets::no_smt_small();
        // no_smt_small inherits has_rapl=true from synthetic_small; turn
        // it off to model a non-Intel machine.
        let mut spec = spec;
        spec.power.has_rapl = false;
        let mut topo = inferred(&spec);
        let mut e = SimEnricher::new(&spec);
        let mut p = SimEnricher::new(&spec);
        enrich_all(&mut topo, &mut e, &mut p).unwrap();
        assert!(topo.power.is_none());
        assert!(topo.caches.is_some());
    }
}
