//! Step 2 of MCTOP-ALG: latency clustering and normalization
//! (Section 3.2, Fig. 6 (2a)/(2b)).
//!
//! The CDF of the measured values exhibits plateaus separated by jumps;
//! each plateau is one latency level. Clusters are found by walking the
//! sorted values and splitting where the gap to the next value exceeds
//! both an absolute floor (timestamp quantization) and a relative
//! fraction of the current value (measurement jitter grows with
//! latency). Each cluster is summarized as a (min, median, max) triplet
//! and the table is normalized by replacing every value with the median
//! of its cluster.

use crate::alg::table::LatencyTable;
use crate::error::McTopError;
use crate::model::LatTriplet;

/// Clustering parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterCfg {
    /// Split when the gap exceeds this fraction of the current value.
    pub rel_gap: f64,
    /// ... and also exceeds this absolute number of cycles.
    pub abs_gap: u32,
    /// Sanity ceiling on the number of clusters; more than this many
    /// levels means the measurements are too noisy to be a real machine
    /// hierarchy (Section 3.6, unsuccessful clustering).
    pub max_levels: usize,
}

impl Default for ClusterCfg {
    fn default() -> Self {
        // The relative gap must resolve the tightest real level split in
        // the evaluation set: the Opteron's 197 vs 217 cycles (a 10%
        // gap, Fig. 1b) — hence 8%.
        ClusterCfg {
            rel_gap: 0.08,
            abs_gap: 8,
            max_levels: 12,
        }
    }
}

/// Finds the latency clusters of the (non-diagonal) values, ascending.
pub fn cluster(values: &[u32], cfg: &ClusterCfg) -> Result<Vec<LatTriplet>, McTopError> {
    if values.is_empty() {
        return Err(McTopError::ClusteringFailed("no latency values".into()));
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let mut clusters = Vec::new();
    let mut start = 0usize;
    for i in 1..=sorted.len() {
        let split = if i == sorted.len() {
            true
        } else {
            let prev = sorted[i - 1];
            let gap = sorted[i] - prev;
            gap > cfg.abs_gap.max((cfg.rel_gap * prev as f64) as u32)
        };
        if split {
            let slice = &sorted[start..i];
            clusters.push(LatTriplet {
                min: slice[0],
                median: slice[slice.len() / 2],
                max: slice[slice.len() - 1],
            });
            start = i;
        }
    }
    if clusters.len() > cfg.max_levels {
        return Err(McTopError::ClusteringFailed(format!(
            "{} latency clusters (max {}): measurements too noisy, retry with different settings",
            clusters.len(),
            cfg.max_levels
        )));
    }
    Ok(clusters)
}

/// Index of the cluster whose median is nearest to `value` (ties toward
/// the lower cluster).
pub fn assign(value: u32, clusters: &[LatTriplet]) -> usize {
    assert!(!clusters.is_empty());
    let mut best = 0usize;
    let mut best_d = u32::MAX;
    for (i, c) in clusters.iter().enumerate() {
        let d = value.abs_diff(c.median);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Normalizes a raw table: every off-diagonal value is replaced by the
/// median of its cluster (Fig. 6 (2b)). The diagonal stays zero.
pub fn normalize(raw: &LatencyTable, clusters: &[LatTriplet]) -> LatencyTable {
    LatencyTable::from_fn(raw.n(), |a, b| {
        let c = assign(raw.get(a, b), clusters);
        clusters[c].median
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_bands_cluster_cleanly() {
        // Ivy-like raw values (Fig. 6): an SMT band, an intra-socket
        // band, a cross-socket band.
        let mut vals = Vec::new();
        for v in [24u32, 28, 28, 32] {
            vals.push(v);
        }
        for v in (88..=140).step_by(4) {
            vals.push(v);
            vals.push(v);
        }
        for v in (288..=346).step_by(4) {
            vals.push(v);
        }
        let c = cluster(&vals, &ClusterCfg::default()).unwrap();
        assert_eq!(c.len(), 3, "clusters: {c:?}");
        assert_eq!(c[0].median, 28);
        assert!(c[1].min == 88 && c[1].max == 140);
        assert!(c[2].min == 288 && c[2].max >= 344);
    }

    #[test]
    fn single_value_single_cluster() {
        let c = cluster(&[100, 100, 100], &ClusterCfg::default()).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(
            c[0],
            LatTriplet {
                min: 100,
                median: 100,
                max: 100
            }
        );
    }

    #[test]
    fn relative_gap_tolerates_wide_high_bands() {
        // At 300+ cycles, a 30-cycle spread must stay one cluster even
        // though 30 > abs_gap.
        let vals = vec![300, 310, 322, 335, 348];
        let c = cluster(&vals, &ClusterCfg::default()).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn absolute_gap_splits_low_bands() {
        // At low latencies a 20-cycle gap is a level boundary.
        let vals = vec![28, 28, 30, 55, 56, 58];
        let c = cluster(&vals, &ClusterCfg::default()).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn too_many_clusters_is_an_error() {
        // Widely spaced values -> one cluster each -> exceeds ceiling.
        let vals: Vec<u32> = (1..=30).map(|i| i * i * 10).collect();
        let err = cluster(&vals, &ClusterCfg::default()).unwrap_err();
        assert!(matches!(err, McTopError::ClusteringFailed(_)));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(cluster(&[], &ClusterCfg::default()).is_err());
    }

    #[test]
    fn assign_picks_nearest_median() {
        let clusters = vec![
            LatTriplet {
                min: 26,
                median: 28,
                max: 32,
            },
            LatTriplet {
                min: 88,
                median: 112,
                max: 140,
            },
            LatTriplet {
                min: 288,
                median: 308,
                max: 346,
            },
        ];
        assert_eq!(assign(30, &clusters), 0);
        assert_eq!(assign(100, &clusters), 1);
        assert_eq!(assign(150, &clusters), 1);
        assert_eq!(assign(400, &clusters), 2);
    }

    #[test]
    fn normalize_replaces_with_medians() {
        let raw = LatencyTable::from_fn(4, |a, b| {
            // Contexts 0-1 and 2-3 are "cores" at ~30; rest ~110.
            if (a == 0 && b == 1) || (a == 2 && b == 3) {
                29 + (a as u32)
            } else {
                105 + (a + b) as u32
            }
        });
        let clusters = cluster(&raw.upper_triangle(), &ClusterCfg::default()).unwrap();
        let norm = normalize(&raw, &clusters);
        assert_eq!(norm.get(0, 1), norm.get(2, 3));
        assert_eq!(norm.get(0, 2), norm.get(1, 3));
        assert_ne!(norm.get(0, 1), norm.get(0, 2));
        assert_eq!(norm.get(1, 1), 0);
    }
}
