//! Disjoint-pair probe scheduling (Section 3.5).
//!
//! Latency measurements between disjoint context pairs are independent,
//! so the N×N table can be collected up to ⌊N/2⌋ pairs at a time. The
//! classic round-robin tournament ("circle method") partitions the
//! strict upper triangle of an N-context machine into rounds of
//! mutually disjoint pairs: fix context 0 (or a bye slot when N is
//! odd), rotate the rest one position per round, and pair opposite
//! positions. Every round is a perfect matching (no context appears
//! twice), every unordered pair appears in exactly one round, and there
//! are N-1 rounds for even N (N rounds with one idle context each for
//! odd N) — the minimum possible, so a K-worker pool finishes the table
//! in ⌈pairs-per-round / K⌉ · rounds pair-measurement slots.

/// The round-robin (circle method) schedule over `n` contexts: a list
/// of rounds, each a list of disjoint `(a, b)` pairs with `a < b`.
///
/// Every unordered context pair occurs in exactly one round; within a
/// round no context occurs twice. For `n < 2` the schedule is empty.
pub fn round_robin(n: usize) -> Vec<Vec<(usize, usize)>> {
    if n < 2 {
        return Vec::new();
    }
    // Work over an even number of slots; slot `n` (only present for odd
    // `n`) is the bye — its "pair" each round simply sits out.
    let slots = if n.is_multiple_of(2) { n } else { n + 1 };
    let bye = slots; // out-of-range sentinel: real contexts are < n
    let mut ring: Vec<usize> = (1..slots).map(|i| if i < n { i } else { bye }).collect();
    let mut rounds = Vec::with_capacity(slots - 1);
    for _ in 0..slots - 1 {
        let mut round = Vec::with_capacity(slots / 2);
        // Slot 0 is pinned; pair it with the rotating head.
        let pairs = std::iter::once((0, ring[slots - 2]))
            .chain((0..slots / 2 - 1).map(|i| (ring[i], ring[slots - 3 - i])));
        for (x, y) in pairs {
            if x == bye || y == bye {
                continue;
            }
            round.push((x.min(y), x.max(y)));
        }
        if !round.is_empty() {
            rounds.push(round);
        }
        ring.rotate_right(1);
    }
    rounds
}

/// Number of unordered context pairs over `n` contexts.
pub fn num_pairs(n: usize) -> usize {
    n * (n - 1) / 2
}

/// Partitions an arbitrary pair set over `n` contexts into rounds of
/// mutually disjoint pairs — the pruned-collection counterpart of
/// [`round_robin`], which only handles the full upper triangle.
///
/// Deterministic greedy first-fit: pairs are visited in the given
/// order and each lands in the earliest round where neither context is
/// taken. Not guaranteed minimal (that is edge colouring), but within
/// one round of optimal on the regular meshes this exists for, and the
/// schedule invariant the collectors rely on — no context twice per
/// round — holds by construction.
pub fn rounds_for(n: usize, pairs: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
    let mut rounds: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut busy: Vec<Vec<bool>> = Vec::new();
    for &(a, b) in pairs {
        debug_assert!(a < b && b < n, "pair ({a},{b}) malformed for n={n}");
        let slot = match busy.iter().position(|r| !r[a] && !r[b]) {
            Some(s) => s,
            None => {
                rounds.push(Vec::new());
                busy.push(vec![false; n]);
                busy.len() - 1
            }
        };
        busy[slot][a] = true;
        busy[slot][b] = true;
        rounds[slot].push((a, b));
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Every round is a perfect disjoint matching (⌊n/2⌋ pairs, no
    /// context twice), and the rounds together cover every unordered
    /// pair exactly once — the schedule invariant `collect_parallel`
    /// relies on for both correctness and measurement isolation.
    #[test]
    fn rounds_are_perfect_matchings_covering_all_pairs_once() {
        for n in 2..=33 {
            let rounds = round_robin(n);
            let expected_rounds = if n % 2 == 0 { n - 1 } else { n };
            assert_eq!(rounds.len(), expected_rounds, "n={n}");
            let mut seen = HashSet::new();
            for (r, round) in rounds.iter().enumerate() {
                assert_eq!(round.len(), n / 2, "n={n} round {r} is not maximal");
                let mut used = HashSet::new();
                for &(a, b) in round {
                    assert!(a < b, "n={n}: pair ({a},{b}) not normalized");
                    assert!(b < n, "n={n}: context {b} out of range");
                    assert!(used.insert(a), "n={n} round {r}: context {a} twice");
                    assert!(used.insert(b), "n={n} round {r}: context {b} twice");
                    assert!(seen.insert((a, b)), "n={n}: pair ({a},{b}) repeated");
                }
            }
            assert_eq!(seen.len(), num_pairs(n), "n={n}: pairs missing");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(round_robin(0).is_empty());
        assert!(round_robin(1).is_empty());
        assert_eq!(round_robin(2), vec![vec![(0, 1)]]);
    }

    #[test]
    fn rounds_for_preserves_pairs_and_disjointness() {
        // A pruned-plan-shaped set: a neighbourhood ball plus strides.
        let n = 64;
        let mut pairs = Vec::new();
        for d in [1usize, 2, 3, 8, 16, 32] {
            for a in 0..n {
                let b = (a + d) % n;
                let p = (a.min(b), a.max(b));
                if !pairs.contains(&p) {
                    pairs.push(p);
                }
            }
        }
        let rounds = rounds_for(n, &pairs);
        let mut seen = HashSet::new();
        for round in &rounds {
            let mut used = HashSet::new();
            for &(a, b) in round {
                assert!(a < b && b < n);
                assert!(used.insert(a) && used.insert(b), "context reused in round");
                assert!(seen.insert((a, b)), "pair scheduled twice");
            }
        }
        assert_eq!(seen.len(), pairs.len(), "pairs dropped by the scheduler");
        // Deterministic: same input, same schedule.
        assert_eq!(rounds, rounds_for(n, &pairs));
    }

    #[test]
    fn large_even_schedule_shape() {
        // Twice the 256-context SPARC preset: 511 rounds of 256 pairs.
        let rounds = round_robin(512);
        assert_eq!(rounds.len(), 511);
        assert!(rounds.iter().all(|r| r.len() == 256));
        let total: usize = rounds.iter().map(Vec::len).sum();
        assert_eq!(total, num_pairs(512));
    }
}
