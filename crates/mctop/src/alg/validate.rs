//! MCTOP-ALG output validation (Section 3.6).
//!
//! Two mechanisms: (i) structural self-checks — symmetry, hierarchy
//! cardinality, partition properties — which catch spurious measurements
//! that survived clustering; and (ii) comparison against the operating
//! system's topology view, which either confirms the inference or
//! pinpoints exactly where the two disagree (on the paper's Opteron the
//! *OS* was wrong about the node mapping; the divergence report is how
//! that was noticed).

use std::collections::BTreeSet;

use crate::error::McTopError;
use crate::model::{
    LevelRole,
    Mctop, //
};

/// Structural self-validation.
pub fn validate(topo: &Mctop) -> Result<(), McTopError> {
    let n = topo.num_hwcs();
    let err = |msg: String| Err(McTopError::IrregularTopology(msg));

    // Latency table: square, symmetric, zero diagonal.
    if topo.lat_table.len() != n * n {
        return err("latency table is not N x N".into());
    }
    for a in 0..n {
        if topo.get_latency(a, a) != 0 {
            return err(format!("non-zero self latency for context {a}"));
        }
        for b in (a + 1)..n {
            if topo.get_latency(a, b) != topo.get_latency(b, a) {
                return err(format!("asymmetric latency for pair ({a},{b})"));
            }
        }
    }

    // Cores partition the contexts, all with the same cardinality.
    // (Ids are bounds-checked first: descriptions are untrusted input.)
    let mut seen = vec![false; n];
    let smt = topo.smt;
    for &cg in &topo.cores {
        let Some(g) = topo.groups.get(cg) else {
            return err(format!("core group id {cg} out of range"));
        };
        if g.hwcs.len() != smt {
            return err(format!(
                "core group {cg} has {} contexts, smt is {smt}",
                g.hwcs.len()
            ));
        }
        for &h in &g.hwcs {
            if h >= n {
                return err(format!("context id {h} out of range"));
            }
            if seen[h] {
                return err(format!("context {h} is in two cores"));
            }
            seen[h] = true;
        }
    }
    if !seen.iter().all(|&s| s) {
        return err("a context belongs to no core".into());
    }

    // Sockets partition the contexts with equal cardinality.
    let mut seen = vec![false; n];
    let per_socket = topo.sockets.first().map_or(0, |s| s.hwcs.len());
    for s in &topo.sockets {
        if s.hwcs.len() != per_socket {
            return err(format!(
                "socket {} has {} contexts, expected {per_socket}",
                s.id,
                s.hwcs.len()
            ));
        }
        if s.cores.len() * smt != s.hwcs.len() {
            return err(format!("socket {} cores/contexts mismatch", s.id));
        }
        for &h in &s.hwcs {
            if h >= n {
                return err(format!("context id {h} out of range"));
            }
            if seen[h] {
                return err(format!("context {h} is in two sockets"));
            }
            seen[h] = true;
            if topo.hwcs[h].socket != s.id {
                return err(format!("context {h} disagrees about its socket"));
            }
        }
    }
    if !seen.iter().all(|&s| s) {
        return err("a context belongs to no socket".into());
    }

    // Levels strictly ascending.
    for w in topo.levels.windows(2) {
        if w[0].latency.median >= w[1].latency.median {
            return err("latency levels are not strictly ascending".into());
        }
    }

    // Cross-socket latencies must exceed every intra-socket level.
    let max_intra = topo
        .levels
        .iter()
        .filter(|l| !matches!(l.role, LevelRole::CrossSocket { .. }))
        .map(|l| l.latency.median)
        .max()
        .unwrap_or(0);
    for l in &topo.links {
        if l.latency <= max_intra {
            return err(format!(
                "cross-socket latency {} (sockets {},{}) does not exceed intra-socket {max_intra}",
                l.latency, l.a, l.b
            ));
        }
    }

    // Every socket pair has exactly one link record, stored normalized
    // (a < b) — the query engine and the `TopoView` matrices both rely
    // on this canonical orientation.
    let s = topo.num_sockets();
    if topo.links.len() != s * (s - 1) / 2 {
        return err("missing interconnect records".into());
    }
    let mut pairs = BTreeSet::new();
    for l in &topo.links {
        if l.a >= l.b {
            return err(format!(
                "interconnect record ({}, {}) is not normalized (need a < b)",
                l.a, l.b
            ));
        }
        if l.b >= s {
            return err(format!(
                "interconnect record ({}, {}) names an unknown socket",
                l.a, l.b
            ));
        }
        if !pairs.insert((l.a, l.b)) {
            return err(format!("duplicate interconnect record ({}, {})", l.a, l.b));
        }
    }
    Ok(())
}

/// The operating system's view of the topology, used for the sanity
/// comparison of Section 3.6. (In this reproduction the "OS view" comes
/// from the machine spec — including the deliberately wrong node mapping
/// of the Opteron preset.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsTopology {
    /// Core id of every context (OS labelling).
    pub core_of_hwc: Vec<usize>,
    /// Socket id of every context.
    pub socket_of_hwc: Vec<usize>,
    /// Memory node the OS reports local to each socket.
    pub node_of_socket: Vec<usize>,
}

impl OsTopology {
    /// Builds the OS view of a simulated machine (using the OS-reported
    /// node mapping, which may differ from the physical one).
    pub fn from_spec(spec: &mcsim::MachineSpec) -> Self {
        let n = spec.total_hwcs();
        let mut core_of_hwc = vec![0; n];
        let mut socket_of_hwc = vec![0; n];
        for h in 0..n {
            let loc = spec.loc(h);
            core_of_hwc[h] = loc.core;
            socket_of_hwc[h] = loc.socket;
        }
        OsTopology {
            core_of_hwc,
            socket_of_hwc,
            node_of_socket: spec.os_node_of_socket.clone(),
        }
    }
}

/// A disagreement between the inferred topology and the OS view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The core partitions differ (sets of contexts, label-agnostic).
    CorePartition,
    /// The socket partitions differ.
    SocketPartition,
    /// The node mappings differ for this inferred socket: the OS says
    /// `os_node`, MCTOP says `mctop_node`. "If the two topologies
    /// differ, libmctop suggests which experiments to rerun" — rerun
    /// the memory-latency plugin for these nodes.
    NodeMapping {
        /// Inferred socket id.
        socket: usize,
        /// Node the OS claims is local.
        os_node: usize,
        /// Node MCTOP measured as local.
        mctop_node: usize,
    },
}

/// Compares an inferred topology with the OS view (Section 3.6,
/// "Comparing MCTOP to the OS Topology"). Partitions are compared as
/// sets of sets, so labelling differences are not divergences.
pub fn compare_with_os(topo: &Mctop, os: &OsTopology) -> Vec<Divergence> {
    let mut out = Vec::new();
    let n = topo.num_hwcs();

    let partition_of = |ids: &[usize]| -> BTreeSet<Vec<usize>> {
        let mut map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (h, &id) in ids.iter().enumerate() {
            map.entry(id).or_default().push(h);
        }
        map.into_values().collect()
    };

    let mctop_cores: BTreeSet<Vec<usize>> = topo
        .cores
        .iter()
        .map(|&cg| topo.groups[cg].hwcs.clone())
        .collect();
    if partition_of(&os.core_of_hwc) != mctop_cores {
        out.push(Divergence::CorePartition);
    }

    let mctop_sockets: BTreeSet<Vec<usize>> = topo.sockets.iter().map(|s| s.hwcs.clone()).collect();
    if partition_of(&os.socket_of_hwc) != mctop_sockets {
        out.push(Divergence::SocketPartition);
    }

    // Node mapping: compare per inferred socket, matching OS sockets by
    // their context sets.
    if out.is_empty() && n == os.socket_of_hwc.len() {
        for s in &topo.sockets {
            let Some(mctop_node) = s.local_node else {
                continue;
            };
            let os_socket = os.socket_of_hwc[s.hwcs[0]];
            let os_node = os.node_of_socket[os_socket];
            if os_node != mctop_node {
                out.push(Divergence::NodeMapping {
                    socket: s.id,
                    os_node,
                    mctop_node,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::probe::ProbeConfig;
    use crate::backend::SimProber;
    use mcsim::presets;

    fn infer(spec: &mcsim::MachineSpec) -> Mctop {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        crate::alg::run(&mut p, &cfg).unwrap()
    }

    #[test]
    fn inferred_topologies_validate() {
        for spec in [
            presets::synthetic_small(),
            presets::no_smt_small(),
            presets::single_socket(),
        ] {
            let t = infer(&spec);
            validate(&t).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn os_comparison_clean_when_numbering_matches() {
        let spec = presets::synthetic_small();
        let t = infer(&spec);
        let os = OsTopology::from_spec(&spec);
        assert!(compare_with_os(&t, &os).is_empty());
    }

    #[test]
    fn corrupted_table_fails_validation() {
        let spec = presets::synthetic_small();
        let mut t = infer(&spec);
        // Break symmetry.
        let n = t.num_hwcs();
        t.lat_table[1] = 9999;
        let err = validate(&t).unwrap_err();
        assert!(matches!(err, McTopError::IrregularTopology(_)));
        // Restore and break the diagonal.
        t.lat_table[1] = t.lat_table[n];
        t.lat_table[0] = 5;
        assert!(validate(&t).is_err());
    }

    #[test]
    fn scrambled_numbering_diverges_from_identity_os_view() {
        // The scrambled machine's OS ids do not form the same partition
        // as a CoresFirst machine of the same shape; comparing the
        // scrambled inference against the *correct* scrambled OS view is
        // clean.
        let spec = presets::scrambled();
        let t = infer(&spec);
        let os = OsTopology::from_spec(&spec);
        assert!(compare_with_os(&t, &os).is_empty());
        // Against a wrong (identity-shaped) view, the partitions differ.
        let wrong = OsTopology::from_spec(&presets::synthetic_small());
        let div = compare_with_os(&t, &wrong);
        assert!(div.contains(&Divergence::CorePartition));
    }
}
