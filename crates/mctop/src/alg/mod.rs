//! MCTOP-ALG (Section 3 of the paper): inferring the topology of a
//! cache-coherent machine from context-to-context latency measurements.
//!
//! The four steps, mirrored by the submodules:
//!
//! 1. [`probe`] — collect an N x N latency table with lock-step
//!    measurement pairs (Fig. 5), median-of-n repetitions, stdev
//!    thresholds with retry escalation, DVFS warm-up, and rdtsc-cost
//!    subtraction. [`schedule`] partitions the upper triangle into
//!    rounds of disjoint pairs so [`probe::collect_parallel`] can
//!    measure up to ⌊N/2⌋ pairs at a time — deterministically: the
//!    parallel path is byte-identical to the sequential one.
//! 2. [`cluster`] — extract latency clusters from the CDF of the values
//!    and normalize the table to cluster medians.
//! 3. [`components`] — recursively group contexts into components per
//!    latency level (classification + table reduction).
//! 4. [`build`] — assign roles (SMT/core, group, socket, cross-socket),
//!    infer the interconnect (direct links vs multi-hop), and assemble
//!    the [`crate::model::Mctop`].
//!
//! [`validate`] implements the output-validation checks of Section 3.6.

pub mod build;
pub mod cluster;
pub mod components;
pub mod probe;
pub mod schedule;
pub mod table;
pub mod validate;

use crate::error::McTopError;
use crate::model::Mctop;
pub use probe::{
    AdaptiveCfg,
    PairSelection,
    ProbeConfig,
    ProbeStream,
    Prober,
    PruneCfg, //
};

/// Output of a full inference run: the topology plus the measurement
/// statistics (used by the inference-cost accounting of Section 3.5).
#[derive(Debug, Clone)]
pub struct Inference {
    /// The inferred topology.
    pub topology: Mctop,
    /// Probe statistics of the collection phase.
    pub stats: probe::ProbeStats,
    /// The latency clusters found (step 2).
    pub clusters: Vec<crate::model::LatTriplet>,
    /// The raw (pre-normalization) latency table.
    pub raw_table: table::LatencyTable,
}

/// Runs all four steps and returns the topology only.
pub fn run<P: Prober>(prober: &mut P, cfg: &ProbeConfig) -> Result<Mctop, McTopError> {
    run_full(prober, cfg).map(|inf| inf.topology)
}

/// [`run`] with the collection phase spread over `jobs` forked probers
/// (disjoint-pair rounds; byte-identical output for every `jobs`).
pub fn run_jobs<P: Prober + Send>(
    prober: &mut P,
    cfg: &ProbeConfig,
    jobs: usize,
) -> Result<Mctop, McTopError> {
    run_full_jobs(prober, cfg, jobs).map(|inf| inf.topology)
}

/// Runs all four steps, keeping the intermediate artifacts (raw table,
/// clusters, statistics). The Fig. 6 harness prints these stages.
pub fn run_full<P: Prober>(prober: &mut P, cfg: &ProbeConfig) -> Result<Inference, McTopError> {
    let (raw, stats) = probe::collect(prober, cfg)?;
    finish_inference(prober, cfg, raw, stats)
}

/// [`run_full`] with parallel collection (see [`probe::collect_parallel`]).
pub fn run_full_jobs<P: Prober + Send>(
    prober: &mut P,
    cfg: &ProbeConfig,
    jobs: usize,
) -> Result<Inference, McTopError> {
    let (raw, stats) = probe::collect_parallel(prober, cfg, jobs)?;
    finish_inference(prober, cfg, raw, stats)
}

/// Steps 2-4 plus validation, shared by the sequential and parallel
/// entry points.
fn finish_inference<P: Prober>(
    prober: &mut P,
    cfg: &ProbeConfig,
    raw: table::LatencyTable,
    stats: probe::ProbeStats,
) -> Result<Inference, McTopError> {
    // Step 2: clusters + normalized table.
    let clusters = cluster::cluster(&raw.upper_triangle(), &cfg.cluster)?;
    let norm = cluster::normalize(&raw, &clusters);
    // SMT detection (Section 3.5).
    let smt = probe::detect_smt(prober, &norm);
    // Step 3: components.
    let hier = components::build(&norm, &clusters)?;
    // Step 4: roles and assembly.
    let topology = build::assemble(
        prober.machine_name(),
        smt,
        &hier,
        &norm,
        &clusters,
        prober.num_nodes(),
    )?;
    validate::validate(&topology)?;
    Ok(Inference {
        topology,
        stats,
        clusters,
        raw_table: raw,
    })
}
