//! Step 4 of MCTOP-ALG: role assignment and topology assembly
//! (Section 3.4, Fig. 6 (4)).
//!
//! Roles: if the machine has SMT (detected with the spin-loop test),
//! the first non-zero latency level is the physical cores; the level
//! whose components hold `#contexts / #nodes` contexts is the socket
//! level; everything above is cross-socket connectivity, for which
//! direct links are told apart from multi-hop routes by a triangle
//! criterion (a pair is multi-hop when some intermediate socket reaches
//! both ends with strictly smaller latency).

use std::collections::BTreeSet;

use crate::alg::components::Hierarchy;
use crate::alg::table::LatencyTable;
use crate::error::McTopError;
use crate::model::{
    HwContext,
    HwcGroup,
    InterconnectLink,
    LatTriplet,
    LatencyLevel,
    LevelRole,
    Mctop,
    Node,
    NodeAssignment,
    Socket, //
};

/// Assembles the final topology from the component hierarchy.
pub fn assemble(
    name: String,
    smt_detected: bool,
    hier: &Hierarchy,
    norm: &LatencyTable,
    clusters: &[LatTriplet],
    n_nodes: usize,
) -> Result<Mctop, McTopError> {
    let n = norm.n();
    let n_nodes = n_nodes.max(1);

    // --- Socket level -------------------------------------------------
    let quota = if n.is_multiple_of(n_nodes) {
        n / n_nodes
    } else {
        0
    };
    let socket_level = find_socket_level(hier, n, quota)?;
    let socket_comps: Vec<Vec<usize>> = match socket_level {
        SocketLevel::Hier(idx) => hier.levels[idx].comps.clone(),
        SocketLevel::Singletons => (0..n).map(|h| vec![h]).collect(),
    };
    let n_sockets = socket_comps.len();

    // --- Core level ----------------------------------------------------
    let (core_comps, smt): (Vec<Vec<usize>>, usize) = if smt_detected {
        let first = hier.levels.first().ok_or_else(|| {
            McTopError::IrregularTopology("SMT detected but no grouped level exists".into())
        })?;
        (first.comps.clone(), first.comps[0].len())
    } else {
        ((0..n).map(|h| vec![h]).collect(), 1)
    };
    let n_cores = core_comps.len();

    // Map every context to its core and socket.
    let mut core_of = vec![usize::MAX; n];
    for (ci, c) in core_comps.iter().enumerate() {
        for &h in c {
            core_of[h] = ci;
        }
    }
    let mut socket_of = vec![usize::MAX; n];
    for (si, s) in socket_comps.iter().enumerate() {
        for &h in s {
            socket_of[h] = si;
        }
    }
    if core_of
        .iter()
        .chain(socket_of.iter())
        .any(|&x| x == usize::MAX)
    {
        return Err(McTopError::IrregularTopology(
            "a context is missing from the core or socket partition".into(),
        ));
    }
    // Every core must live inside one socket.
    for c in &core_comps {
        let s: BTreeSet<usize> = c.iter().map(|&h| socket_of[h]).collect();
        if s.len() != 1 {
            return Err(McTopError::IrregularTopology(
                "a core spans multiple sockets".into(),
            ));
        }
    }

    // --- Levels and roles ----------------------------------------------
    let core_hier_idx: Option<usize> = if smt_detected { Some(0) } else { None };
    let socket_hier_idx: Option<usize> = match socket_level {
        SocketLevel::Hier(idx) => Some(idx),
        SocketLevel::Singletons => None,
    };
    let mut levels = vec![LatencyLevel {
        index: 0,
        latency: LatTriplet::exact(0),
        role: LevelRole::SelfLevel,
    }];
    if let Some(s_idx) = socket_hier_idx {
        for (i, lvl) in hier.levels.iter().enumerate().take(s_idx + 1) {
            let role = if Some(i) == core_hier_idx {
                if Some(i) == socket_hier_idx {
                    LevelRole::Socket
                } else {
                    LevelRole::Smt
                }
            } else if i < s_idx {
                LevelRole::IntraGroup
            } else {
                LevelRole::Socket
            };
            levels.push(LatencyLevel {
                index: levels.len(),
                latency: lvl.latency,
                role,
            });
        }
    }

    // --- Interconnect ---------------------------------------------------
    // Socket-to-socket latencies from representatives.
    let reps: Vec<usize> = socket_comps.iter().map(|c| c[0]).collect();
    let mut s_lat = vec![0u32; n_sockets * n_sockets];
    for i in 0..n_sockets {
        for j in 0..n_sockets {
            if i != j {
                s_lat[i * n_sockets + j] = norm.get(reps[i], reps[j]);
            }
        }
    }
    let links = infer_links(&s_lat, n_sockets)?;
    // One CrossSocket latency level per distinct cross value.
    let mut cross_vals: Vec<u32> = links.iter().map(|l| l.latency).collect();
    cross_vals.sort_unstable();
    cross_vals.dedup();
    for v in cross_vals {
        let hops = links
            .iter()
            .filter(|l| l.latency == v)
            .map(|l| l.hops)
            .max()
            .expect("value came from links");
        // Reuse the cluster triplet when one matches this median.
        let triplet = clusters
            .iter()
            .find(|c| c.median == v)
            .copied()
            .unwrap_or_else(|| LatTriplet::exact(v));
        levels.push(LatencyLevel {
            index: levels.len(),
            latency: triplet,
            role: LevelRole::CrossSocket { hops },
        });
    }

    // --- Groups arena ----------------------------------------------------
    let mut groups: Vec<HwcGroup> = Vec::new();
    // Core groups first (ids 0..n_cores), in core order.
    let core_level_index = if smt_detected { 1 } else { 0 };
    let core_latency = if smt_detected {
        hier.levels[0].latency.median
    } else {
        0
    };
    for (ci, c) in core_comps.iter().enumerate() {
        groups.push(HwcGroup {
            id: ci,
            level: core_level_index,
            latency: core_latency,
            hwcs: c.clone(),
            children: Vec::new(),
            parent: None,
            socket: Some(socket_of[c[0]]),
        });
    }
    // Intermediate hier levels strictly between core and socket.
    // `arena_of_level[i]` maps hier level i component index -> arena id.
    let mut arena_of_level: Vec<Vec<usize>> = Vec::with_capacity(hier.levels.len());
    for (i, lvl) in hier.levels.iter().enumerate() {
        if Some(i) == socket_hier_idx {
            break;
        }
        if Some(i) == core_hier_idx {
            arena_of_level.push((0..n_cores).collect());
            continue;
        }
        // An intermediate grouping level.
        let mut ids = Vec::with_capacity(lvl.comps.len());
        let mctop_level = levels
            .iter()
            .position(|l| l.latency == lvl.latency)
            .expect("intermediate level was recorded");
        for (gi, comp) in lvl.comps.iter().enumerate() {
            let id = groups.len();
            let children: Vec<usize> = if i == 0 {
                // No SMT: children are the (core) singletons, which are
                // not separate arena entries below this level; treat the
                // member contexts' core groups as children.
                comp.iter().map(|&h| core_of[h]).collect()
            } else {
                lvl.children[gi]
                    .iter()
                    .map(|&c| arena_of_level[i - 1][c])
                    .collect()
            };
            for &ch in &children {
                groups[ch].parent = Some(id);
            }
            groups.push(HwcGroup {
                id,
                level: mctop_level,
                latency: lvl.latency.median,
                hwcs: comp.clone(),
                children,
                parent: None,
                socket: Some(socket_of[comp[0]]),
            });
            ids.push(id);
        }
        arena_of_level.push(ids);
    }
    // Socket groups.
    let socket_mctop_level = levels
        .iter()
        .position(|l| l.role == LevelRole::Socket)
        .unwrap_or(0);
    let socket_latency = socket_hier_idx
        .map(|i| hier.levels[i].latency.median)
        .unwrap_or(0);
    let mut socket_group_ids = Vec::with_capacity(n_sockets);
    for (si, comp) in socket_comps.iter().enumerate() {
        let id = groups.len();
        let children: Vec<usize> = match socket_hier_idx {
            Some(0) | None => comp
                .iter()
                .map(|&h| core_of[h])
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect(),
            Some(i) => hier.levels[i].children[socket_comp_index(&hier.levels[i].comps, comp)]
                .iter()
                .map(|&c| {
                    if i - 1 < arena_of_level.len() {
                        arena_of_level[i - 1][c]
                    } else {
                        c // Unreachable in practice.
                    }
                })
                .collect(),
        };
        for &ch in &children {
            groups[ch].parent = Some(id);
        }
        groups.push(HwcGroup {
            id,
            level: socket_mctop_level,
            latency: socket_latency,
            hwcs: comp.clone(),
            children,
            parent: None,
            socket: Some(si),
        });
        socket_group_ids.push(id);
    }

    // --- Sockets, nodes, contexts ---------------------------------------
    let provisional = n_sockets == n_nodes;
    let sockets: Vec<Socket> = socket_comps
        .iter()
        .enumerate()
        .map(|(si, comp)| {
            let mut cores: Vec<usize> = comp.iter().map(|&h| core_of[h]).collect();
            cores.sort_unstable();
            cores.dedup();
            Socket {
                id: si,
                group: socket_group_ids[si],
                hwcs: comp.clone(),
                cores,
                local_node: provisional.then_some(si),
                mem_latencies: Vec::new(),
                mem_bandwidths: Vec::new(),
                single_core_bw: None,
            }
        })
        .collect();
    let nodes: Vec<Node> = (0..n_nodes)
        .map(|id| Node {
            id,
            home_socket: provisional.then_some(id),
            capacity_gb: None,
        })
        .collect();

    let hwcs: Vec<HwContext> = (0..n)
        .map(|h| {
            let mut best = (u32::MAX, usize::MAX);
            for other in 0..n {
                if other == h {
                    continue;
                }
                let v = norm.get(h, other);
                if (v, other) < best {
                    best = (v, other);
                }
            }
            HwContext {
                id: h,
                core: core_of[h],
                socket: socket_of[h],
                next_closest: best.1,
            }
        })
        .collect();

    Ok(Mctop {
        name,
        smt,
        levels,
        hwcs,
        groups,
        cores: (0..n_cores).collect(),
        sockets,
        nodes,
        links,
        lat_table: norm.clone().into_vec(),
        node_assignment: NodeAssignment::Provisional,
        caches: None,
        power: None,
        freq_ghz: None,
    })
}

/// Which hierarchy level plays the socket role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SocketLevel {
    /// `hier.levels[i]` is the socket level.
    Hier(usize),
    /// Single-core sockets: every context is its own socket.
    Singletons,
}

/// The paper's rule: the socket level holds `#contexts / #nodes`
/// contexts per component. Fallback for shared-node machines
/// (footnote 2): the deepest grouped level whose size divides the
/// quota.
fn find_socket_level(hier: &Hierarchy, n: usize, quota: usize) -> Result<SocketLevel, McTopError> {
    if quota == 1 {
        return Ok(SocketLevel::Singletons);
    }
    if quota > 0 {
        if let Some(idx) = hier
            .levels
            .iter()
            .position(|l| l.comps.first().map_or(0, |c| c.len()) == quota)
        {
            return Ok(SocketLevel::Hier(idx));
        }
        // Fallback: largest level size that divides the quota.
        let mut best: Option<(usize, usize)> = None; // (size, idx)
        for (idx, lvl) in hier.levels.iter().enumerate() {
            let size = lvl.comps[0].len();
            if size <= quota
                && quota.is_multiple_of(size)
                && size < n
                && best.is_none_or(|(bs, _)| size > bs)
            {
                best = Some((size, idx));
            }
        }
        if let Some((_, idx)) = best {
            return Ok(SocketLevel::Hier(idx));
        }
    }
    Err(McTopError::IrregularTopology(format!(
        "cannot identify the socket level ({n} contexts, quota {quota}); \
         measurements may contain spurious values — rerun the inference"
    )))
}

fn socket_comp_index(comps: &[Vec<usize>], comp: &[usize]) -> usize {
    comps
        .iter()
        .position(|c| c == comp)
        .expect("socket component exists at its level")
}

/// Builds the link records for every socket pair and classifies direct
/// vs multi-hop connections.
fn infer_links(s_lat: &[u32], n_sockets: usize) -> Result<Vec<InterconnectLink>, McTopError> {
    let lat = |i: usize, j: usize| s_lat[i * n_sockets + j];
    let mut direct = vec![false; n_sockets * n_sockets];
    for i in 0..n_sockets {
        for j in (i + 1)..n_sockets {
            let v = lat(i, j);
            // Multi-hop when some intermediate reaches both ends with
            // strictly smaller latency.
            let multi = (0..n_sockets).any(|k| k != i && k != j && lat(i, k) < v && lat(k, j) < v);
            if !multi {
                direct[i * n_sockets + j] = true;
                direct[j * n_sockets + i] = true;
            }
        }
    }
    // Hops: BFS over direct edges.
    let mut links = Vec::new();
    for i in 0..n_sockets {
        for j in (i + 1)..n_sockets {
            let hops = if direct[i * n_sockets + j] {
                1
            } else {
                bfs_hops(&direct, n_sockets, i, j)?
            };
            links.push(InterconnectLink {
                a: i,
                b: j,
                latency: lat(i, j),
                hops,
                bandwidth: None,
            });
        }
    }
    Ok(links)
}

fn bfs_hops(direct: &[bool], n: usize, src: usize, dst: usize) -> Result<usize, McTopError> {
    let mut dist = vec![usize::MAX; n];
    dist[src] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(s) = queue.pop_front() {
        for t in 0..n {
            if direct[s * n + t] && dist[t] == usize::MAX {
                dist[t] = dist[s] + 1;
                queue.push_back(t);
            }
        }
    }
    if dist[dst] == usize::MAX {
        return Err(McTopError::IrregularTopology(
            "multi-hop socket pair unreachable over direct links".into(),
        ));
    }
    Ok(dist[dst])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_links_opteron_pattern() {
        // 4 sockets: ring with one chord missing; pairs (0,2) and (1,3)
        // are 2-hop at 300; the rest direct.
        let n = 4;
        let mut m = vec![0u32; n * n];
        let mut set = |a: usize, b: usize, v: u32| {
            m[a * n + b] = v;
            m[b * n + a] = v;
        };
        set(0, 1, 200);
        set(1, 2, 200);
        set(2, 3, 200);
        set(3, 0, 200);
        set(0, 2, 300);
        set(1, 3, 300);
        let links = infer_links(&m, n).unwrap();
        let l = |a: usize, b: usize| links.iter().find(|l| l.a == a && l.b == b).unwrap();
        assert_eq!(l(0, 1).hops, 1);
        assert_eq!(l(0, 2).hops, 2);
        assert_eq!(l(1, 3).hops, 2);
        assert_eq!(l(2, 3).hops, 1);
    }

    #[test]
    fn infer_links_uniform_mesh_all_direct() {
        let n = 4;
        let mut m = vec![320u32; n * n];
        for i in 0..n {
            m[i * n + i] = 0;
        }
        let links = infer_links(&m, n).unwrap();
        assert!(links.iter().all(|l| l.hops == 1));
        assert_eq!(links.len(), 6);
    }

    #[test]
    fn socket_level_quota_one_means_singleton_sockets() {
        let hier = Hierarchy {
            levels: vec![],
            top_comps: (0..4).map(|h| vec![h]).collect(),
            top_matrix: vec![0; 16],
            stopped_at_cluster: None,
        };
        assert_eq!(
            find_socket_level(&hier, 4, 1).unwrap(),
            SocketLevel::Singletons
        );
    }
}
