//! The N x N latency table (step 1 output, Fig. 6 (1)).

use serde::{
    Deserialize,
    Serialize, //
};

/// A symmetric context-to-context latency table with a zero diagonal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTable {
    n: usize,
    vals: Vec<u32>,
}

impl LatencyTable {
    /// An all-zero table over `n` contexts.
    pub fn new(n: usize) -> Self {
        LatencyTable {
            n,
            vals: vec![0; n * n],
        }
    }

    /// Builds a table from a closure over the upper triangle; the lower
    /// triangle is mirrored (the paper measures only one triangle
    /// because the topology is symmetric).
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u32) -> Self {
        let mut t = LatencyTable::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let v = f(a, b);
                t.set(a, b, v);
            }
        }
        t
    }

    /// Number of contexts.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Latency between `a` and `b` (0 when `a == b`).
    pub fn get(&self, a: usize, b: usize) -> u32 {
        self.vals[a * self.n + b]
    }

    /// Sets both `(a, b)` and `(b, a)`.
    pub fn set(&mut self, a: usize, b: usize, v: u32) {
        self.vals[a * self.n + b] = v;
        self.vals[b * self.n + a] = v;
    }

    /// The strict upper-triangle values (no diagonal), row-major.
    pub fn upper_triangle(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n * (self.n - 1) / 2);
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                out.push(self.get(a, b));
            }
        }
        out
    }

    /// The row of a context (including the zero diagonal entry).
    pub fn row(&self, a: usize) -> &[u32] {
        &self.vals[a * self.n..(a + 1) * self.n]
    }

    /// The backing vector (row-major), e.g. to store in `Mctop`.
    pub fn into_vec(self) -> Vec<u32> {
        self.vals
    }

    /// Whether the table is symmetric with a zero diagonal.
    pub fn is_consistent(&self) -> bool {
        for a in 0..self.n {
            if self.get(a, a) != 0 {
                return false;
            }
            for b in (a + 1)..self.n {
                if self.get(a, b) != self.get(b, a) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_mirrors() {
        let t = LatencyTable::from_fn(3, |a, b| (10 * a + b) as u32);
        assert_eq!(t.get(0, 1), 1);
        assert_eq!(t.get(1, 0), 1);
        assert_eq!(t.get(1, 2), 12);
        assert_eq!(t.get(2, 1), 12);
        assert_eq!(t.get(2, 2), 0);
        assert!(t.is_consistent());
    }

    #[test]
    fn upper_triangle_size() {
        let t = LatencyTable::from_fn(5, |_, _| 7);
        assert_eq!(t.upper_triangle().len(), 10);
        assert!(t.upper_triangle().iter().all(|&v| v == 7));
    }

    #[test]
    fn row_access() {
        let t = LatencyTable::from_fn(3, |_, _| 5);
        assert_eq!(t.row(0), &[0, 5, 5]);
    }
}
