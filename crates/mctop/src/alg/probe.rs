//! Step 1 of MCTOP-ALG: collecting the latency table.
//!
//! Two "threads" move from context pair to context pair; for each data
//! point they run the lock-step schedule of Fig. 5 (partner CAS brings
//! the line into Modified state, measuring thread CASes and times it).
//! Per Section 3.5 the collection repeats each measurement `reps` times,
//! keeps the median, and retries with an escalating stdev threshold if
//! the samples are too noisy; the estimated rdtsc read cost is
//! subtracted from every value; DVFS is defeated by spinning until the
//! cores reach maximum frequency.
//!
//! Measurements between disjoint context pairs are independent, so
//! [`collect_parallel`] drives the rounds of the circle-method schedule
//! ([`crate::alg::schedule`]) across a pool of forked probers, up to
//! ⌊N/2⌋ pairs at a time. The parallel path is *deterministic*: every
//! measurement draws its randomness from a stream derived from the run
//! seed and a [`ProbeStream`] identity (calibration, warm-up of one
//! context, one pair, one refinement), never from a position in a
//! global sample sequence — so `collect_parallel` with any worker count
//! produces byte-for-byte the same table and statistics as the
//! sequential [`collect`].
//!
//! [`AdaptiveCfg`] layers two-phase repetitions on top: a cheap pilot
//! pass over all pairs, then full-repetition refinement only for pairs
//! whose pilot median lands near a latency-cluster boundary or fails
//! the stdev gate. The savings and the extra migrations are modeled in
//! [`ProbeStats`], keeping the Section 3.5 cost accounting honest.

use std::sync::atomic::{
    AtomicU64,
    Ordering, //
};
use std::sync::Barrier;

use mcsim::stats;

use crate::alg::cluster::{
    self,
    ClusterCfg, //
};
use crate::alg::schedule;
use crate::alg::table::LatencyTable;
use crate::error::McTopError;

/// The three OS dependencies of Section 3 ("A way to read the number of
/// available hardware contexts and the number of memory nodes, and a way
/// to pin threads to specific contexts"), expressed as a measurement
/// backend.
///
/// Implementations: [`crate::backend::SimProber`] over a simulated
/// machine, and [`crate::host::HostProber`] over the real machine the
/// process runs on (Linux only).
pub trait Prober {
    /// Number of schedulable hardware contexts.
    fn num_hwcs(&self) -> usize;

    /// Number of memory nodes.
    fn num_nodes(&self) -> usize;

    /// One raw lock-step latency sample between contexts `a` and `b`,
    /// in cycles, *including* the timestamp-read cost.
    fn probe(&mut self, a: usize, b: usize) -> u32;

    /// A batch of `count` raw samples for one pair, appended into `out`
    /// (cleared first). The default loops [`Prober::probe`]; backends
    /// with per-batch setup cost (thread spawns, pinning) override it.
    fn probe_batch(&mut self, a: usize, b: usize, out: &mut Vec<u32>, count: usize) {
        out.clear();
        out.reserve(count);
        for _ in 0..count {
            out.push(self.probe(a, b));
        }
    }

    /// One estimate of the timestamp-read cost (a back-to-back rdtsc
    /// calibration sample).
    fn rdtsc_cost(&mut self) -> u32;

    /// Duration of a fixed spin loop executed simultaneously on the
    /// given contexts; used for DVFS and SMT detection.
    fn spin_duration(&mut self, ctxs: &[usize], iters: u64) -> u64;

    /// Spins on `ctx` until its core reaches maximum frequency.
    fn warmup(&mut self, _ctx: usize) {}

    /// Rebinds the backend's randomness to the given derived stream.
    ///
    /// Simulated backends reseed their noise generator from
    /// `(run seed, stream)` so that every sample is a pure function of
    /// the stream identity and its index within the stream — the
    /// determinism contract of [`collect_parallel`]. Hardware backends
    /// have no seedable randomness and keep the default no-op.
    fn begin_stream(&mut self, _stream: ProbeStream) {}

    /// An independent prober that can measure pairs concurrently with
    /// `self` (and with other forks), or `None` if the backend cannot
    /// be driven from more than one thread. Forks inherit the machine
    /// shape and any warm-up state accumulated so far.
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Whether concurrently measured pairs disturb each other's
    /// timings. When `true` (hardware backends), `collect_parallel`
    /// barriers between schedule rounds so only mutually disjoint pairs
    /// are ever in flight. Simulated backends return `false`: their
    /// samples are pure functions of the stream, so workers may run
    /// ahead without a round barrier.
    fn concurrent_pairs_interfere(&self) -> bool {
        true
    }

    /// A name for the machine (used in reports and description files).
    fn machine_name(&self) -> String {
        "unknown".into()
    }

    /// Cumulative count of transient backend failures this prober has
    /// absorbed by retrying internally (measurement-thread spawn
    /// failures, short sample batches — see
    /// [`crate::host::HostProber::measure_pair`]). The phase runners
    /// fold per-phase deltas into [`ProbeStats::retries`], so absorbed
    /// failures still show up in the cost accounting. Deterministic
    /// backends never retry and keep the default.
    fn backend_retries(&self) -> u64 {
        0
    }
}

/// Identity of an independent randomness stream of the collection
/// phase. Backends with simulated noise derive a fresh generator per
/// stream (see [`Prober::begin_stream`]), which makes measurement
/// results independent of the global order pairs are visited in — the
/// property that lets sequential and parallel collection agree
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStream {
    /// The rdtsc-cost calibration loop (run once, before any pair).
    Calibration,
    /// The DVFS warm-up of one context.
    Warmup(usize),
    /// All samples (including stdev retries) of one pair, `a < b`.
    Pair(usize, usize),
    /// The full-repetition refinement pass of one pair (adaptive
    /// collection only) — a distinct stream, so refinement does not
    /// replay the pilot samples.
    Refine(usize, usize),
    /// The SMT-detection spin measurements (Section 3.5).
    SmtCheck,
}

impl ProbeStream {
    /// A collision-free 64-bit tag for this stream (contexts are far
    /// below 2^30 on every machine the paper or the simulator models).
    pub fn tag(self) -> u64 {
        match self {
            ProbeStream::Calibration => 0,
            ProbeStream::SmtCheck => 1,
            ProbeStream::Warmup(c) => (1 << 60) | c as u64,
            ProbeStream::Pair(a, b) => (2 << 60) | ((a as u64) << 30) | b as u64,
            ProbeStream::Refine(a, b) => (3 << 60) | ((a as u64) << 30) | b as u64,
        }
    }
}

/// Two-phase adaptive repetitions (Section 3.5 cost reduction): a cheap
/// pilot pass over every pair, then full-repetition refinement only
/// where the pilot is untrustworthy.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveCfg {
    /// Repetitions of the pilot pass (a small fraction of
    /// [`ProbeConfig::reps`]).
    pub pilot_reps: usize,
    /// A pilot median within this fraction of its own value from the
    /// nearest adjacent latency cluster is considered boundary-risky
    /// and re-measured with full repetitions.
    pub boundary_frac: f64,
}

impl Default for AdaptiveCfg {
    fn default() -> Self {
        AdaptiveCfg {
            // 15 samples give a usable median under the default noise
            // model; anything boundary-risky is re-measured anyway.
            pilot_reps: 15,
            // Just above the widest stdev gate (14%): a median that
            // close to another cluster could plausibly flip sides.
            boundary_frac: 0.15,
        }
    }
}

/// Which context pairs a collection run measures.
///
/// The paper measures every unordered pair — quadratic in the context
/// count, which is fine up to a few hundred contexts but prohibitive
/// for NoC-scale mesh/circulant machines. [`PairSelection::Pruned`]
/// measures a structured subset (a circular context-id neighbourhood
/// ball, power-of-two long-range strides, and deterministic hashed
/// samples) and reconstructs the remaining entries by shortest-path
/// closure over the measured socket graph. On machines whose latency is
/// a function of interconnect hop distance under socket-major numbering
/// (the mesh-scale presets), the reconstruction is *exact*: a noiseless
/// pruned run produces byte-for-byte the table of an exhaustive run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSelection {
    /// Measure every unordered pair (the paper's collection).
    Exhaustive,
    /// Measure the structured subset described by the config and
    /// reconstruct the rest. Falls back to exhaustive when the config
    /// does not match the machine (context count not `ctxs_per_socket *
    /// sockets`) or the machine is too small for pruning to save
    /// anything. Implies non-adaptive collection: the adaptive boundary
    /// check clusters the whole table, which is meaningless while most
    /// entries are unmeasured.
    Pruned(PruneCfg),
}

/// Structural hints for [`PairSelection::Pruned`]. The collection layer
/// cannot see the machine's socket structure (that is what inference
/// discovers), so the caller — typically
/// [`crate::desc::canonical_probe_config_for`], which knows the spec —
/// supplies the hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneCfg {
    /// Hardware contexts per socket under the socket-major hypothesis
    /// (`socket = context id / ctxs_per_socket`).
    pub ctxs_per_socket: usize,
    /// Number of sockets.
    pub sockets: usize,
    /// Deterministic hashed long-range sample pairs added on top of the
    /// ball and the strides.
    pub samples: usize,
}

impl PruneCfg {
    /// The canonical pruning plan for a machine shape: one hashed
    /// long-range sample per context.
    pub fn for_machine(ctxs_per_socket: usize, sockets: usize) -> Self {
        PruneCfg {
            ctxs_per_socket,
            sockets,
            samples: ctxs_per_socket * sockets,
        }
    }
}

/// The measured pair set of a pruned collection over `n` contexts, in
/// deterministic (sorted) order, or `None` when the config does not
/// match the machine or pruning would not reduce the pair count.
///
/// Three structured layers (`c = ctxs_per_socket`, `M = sockets`):
///
/// - a circular context-id ball of radius `c * (ceil(sqrt(M)) + 1)` —
///   covers every intra-socket pair plus, under socket-major numbering,
///   the row *and* column neighbours of a `sqrt(M) x sqrt(M)` grid;
/// - strides `c * 2^j` beyond the ball up to `n/2` — covers the chord
///   generators of multiplicative circulants and gives the closure
///   logarithmic shortcuts on any ring-like shape;
/// - `samples` hashed long-range pairs — structure-free coverage that
///   lets validation catch a wrong structural hypothesis.
///
/// The total is `O(n^1.5)` pairs versus the exhaustive `O(n^2)`.
pub fn pruned_pairs(n: usize, cfg: &PruneCfg) -> Option<Vec<(usize, usize)>> {
    let c = cfg.ctxs_per_socket;
    let m = cfg.sockets;
    if c == 0 || m == 0 || c * m != n {
        return None;
    }
    let mut side = 1usize;
    while side * side < m {
        side += 1;
    }
    let r = c * (side + 1);
    if 2 * r + 1 >= n {
        // The ball already covers (almost) every pair.
        return None;
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let ring = |d: usize, pairs: &mut Vec<(usize, usize)>| {
        for a in 0..n {
            let b = (a + d) % n;
            pairs.push((a.min(b), a.max(b)));
        }
    };
    for d in 1..=r {
        ring(d, &mut pairs);
    }
    let mut d = c;
    while d <= n / 2 {
        if d > r {
            ring(d, &mut pairs);
        }
        d *= 2;
    }
    // Hashed samples: splitmix64 over a fixed seed, so the plan is a
    // pure function of the machine shape.
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ ((n as u64) << 32 | c as u64);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..cfg.samples {
        let a = (next() % n as u64) as usize;
        let b = (next() % n as u64) as usize;
        if a != b {
            pairs.push((a.min(b), a.max(b)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    if pairs.len() >= schedule::num_pairs(n) {
        return None;
    }
    Some(pairs)
}

/// Collection parameters (defaults follow Section 3.5).
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Repetitions per context pair (paper default: 2000).
    pub reps: usize,
    /// Accept a pair when `stdev <= stdev_frac * median` (default 7%).
    pub stdev_frac: f64,
    /// Retry escalation ceiling (default 14%).
    pub stdev_frac_max: f64,
    /// Retries per pair before giving up.
    pub max_retries: u32,
    /// Whether to run the DVFS warm-up before using a context.
    pub warmup: bool,
    /// Modelled fixed cost (cycles) of migrating the measurement
    /// threads to a new pair and re-synchronizing: contributes to the
    /// inference-runtime accounting of Section 3.5.
    pub pair_overhead_cycles: u64,
    /// Clustering parameters for step 2 (also used by the adaptive
    /// boundary check).
    pub cluster: ClusterCfg,
    /// Two-phase adaptive repetitions; `None` measures every pair with
    /// the full `reps` (the paper's behaviour).
    pub adaptive: Option<AdaptiveCfg>,
    /// Which context pairs to measure (default: all of them).
    pub pairs: PairSelection,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            reps: 2000,
            stdev_frac: 0.07,
            stdev_frac_max: 0.14,
            max_retries: 3,
            warmup: true,
            pair_overhead_cycles: 8_000_000,
            cluster: ClusterCfg::default(),
            adaptive: None,
            pairs: PairSelection::Exhaustive,
        }
    }
}

impl ProbeConfig {
    /// Reduced repetitions for tests and simulated runs; the simulated
    /// noise is well-behaved enough that 51 samples give stable medians.
    pub fn fast() -> Self {
        ProbeConfig {
            reps: 51,
            ..ProbeConfig::default()
        }
    }
}

/// Measurement statistics of a collection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Context pairs measured.
    pub pairs: u64,
    /// Raw probes issued.
    pub probes: u64,
    /// Probes issued by the adaptive pilot pass (subset of `probes`).
    pub pilot_probes: u64,
    /// Pairs re-measured with full repetitions by the adaptive
    /// refinement pass.
    pub refined_pairs: u64,
    /// Pair-level retries due to unstable stdev, plus transient
    /// backend failures absorbed by retry ([`Prober::backend_retries`]
    /// deltas, folded in per phase).
    pub retries: u64,
    /// Cycles spent inside probes (sum of all raw samples).
    pub sample_cycles: u64,
    /// Cycles of fixed per-pair overhead (thread migration, barriers,
    /// DVFS re-checks). Refined pairs pay it twice.
    pub overhead_cycles: u64,
    /// Modelled critical-path cycles: with the disjoint-round schedule,
    /// each round costs the maximum over the workers measuring it, not
    /// the sum. Equals `sample_cycles + overhead_cycles` for a
    /// sequential run; under `collect_parallel(jobs=K)` it shrinks
    /// toward `modeled_cycles() / K`.
    pub critical_cycles: u64,
}

impl ProbeStats {
    /// Total modelled cost in cycles: the quantity behind the paper's
    /// "~3 seconds on Ivy, 96 seconds on Westmere" (Section 3.5).
    pub fn modeled_cycles(&self) -> u64 {
        self.sample_cycles + self.overhead_cycles
    }

    /// Modelled wall-clock seconds at the given core frequency.
    pub fn modeled_seconds(&self, freq_ghz: f64) -> f64 {
        self.modeled_cycles() as f64 / (freq_ghz * 1e9)
    }

    /// Modelled wall-clock seconds of the *parallel* schedule at the
    /// given core frequency: the critical path through the disjoint
    /// rounds rather than the total work.
    pub fn modeled_parallel_seconds(&self, freq_ghz: f64) -> f64 {
        self.critical_cycles as f64 / (freq_ghz * 1e9)
    }

    /// Folds another run's statistics into this one (all counters are
    /// additive; critical-path cycles add because sequential phases
    /// concatenate — per-round maxima across workers are computed by
    /// the collector before merging).
    pub fn merge(&mut self, other: &ProbeStats) {
        self.pairs += other.pairs;
        self.probes += other.probes;
        self.pilot_probes += other.pilot_probes;
        self.refined_pairs += other.refined_pairs;
        self.retries += other.retries;
        self.sample_cycles += other.sample_cycles;
        self.overhead_cycles += other.overhead_cycles;
        self.critical_cycles += other.critical_cycles;
    }

    /// Stats as they would look with `target` repetitions per pair
    /// instead of the `actual` used: full-repetition probe time scales
    /// linearly, while the pilot pass (fixed by
    /// [`AdaptiveCfg::pilot_reps`]) and the per-pair overhead do not.
    /// Lets fast runs report the cost of the paper's 2000-rep
    /// configuration. Sample and critical-path cycles scale by the
    /// resulting probe ratio — exact for non-adaptive runs, a
    /// proportionality approximation for adaptive ones (per-phase cycle
    /// shares are not tracked).
    pub fn scaled_to_reps(&self, actual: usize, target: usize) -> ProbeStats {
        assert!(actual > 0);
        let f = target as f64 / actual as f64;
        let full_probes = self.probes - self.pilot_probes;
        let probes = self.pilot_probes + (full_probes as f64 * f) as u64;
        let cf = if self.probes == 0 {
            1.0
        } else {
            probes as f64 / self.probes as f64
        };
        ProbeStats {
            pairs: self.pairs,
            probes,
            pilot_probes: self.pilot_probes,
            refined_pairs: self.refined_pairs,
            retries: self.retries,
            sample_cycles: (self.sample_cycles as f64 * cf) as u64,
            overhead_cycles: self.overhead_cycles,
            critical_cycles: (self.critical_cycles as f64 * cf) as u64,
        }
    }
}

/// Collects the full latency table (upper triangle measured, mirrored),
/// sequentially. Identical in output to [`collect_parallel`] with any
/// worker count.
pub fn collect<P: Prober>(
    prober: &mut P,
    cfg: &ProbeConfig,
) -> Result<(LatencyTable, ProbeStats), McTopError> {
    let mut ctx = begin_collection(prober, cfg)?;
    let (rounds, pruned) = plan_rounds(ctx.n, cfg);
    let cfg = &effective_cfg(cfg, pruned.is_some());
    let mut stats = ProbeStats::default();
    let mut table = run_phases(&mut ctx, cfg, &rounds, &mut stats, |rs, kind, st| {
        run_phase_inline(prober, cfg, rs, kind, st)
    })?;
    if let Some((pairs, pc)) = &pruned {
        reconstruct_pruned(&mut table, pairs, pc);
    }
    Ok((table, stats))
}

/// Collects the full latency table with up to `jobs` forked probers
/// measuring the disjoint pairs of each schedule round concurrently.
///
/// # Determinism contract
///
/// The output (table, statistics, and any error) is byte-for-byte the
/// output of the sequential [`collect`], for every `jobs` value: each
/// pair's samples come from an independent stream derived from the run
/// seed and the pair identity ([`ProbeStream`]), and warm-up runs to
/// completion before any pair is measured, so no measurement depends on
/// global ordering. For backends with order-dependent state the
/// contract requires `cfg.warmup` (or frequency scaling disabled) —
/// the simulated backend's DVFS factor is saturated by warm-up and
/// inherited by every fork. Backends whose [`Prober::fork`] returns
/// `None` (and `jobs <= 1`) fall back to the sequential loop.
pub fn collect_parallel<P: Prober + Send>(
    prober: &mut P,
    cfg: &ProbeConfig,
    jobs: usize,
) -> Result<(LatencyTable, ProbeStats), McTopError> {
    let mut ctx = begin_collection(prober, cfg)?;
    let (rounds, pruned) = plan_rounds(ctx.n, cfg);
    let cfg = &effective_cfg(cfg, pruned.is_some());
    let mut stats = ProbeStats::default();

    // Fork the worker pool after warm-up, so every fork inherits the
    // saturated DVFS state. A backend that cannot fork measures inline.
    let mut forks: Vec<P> = Vec::new();
    if jobs > 1 {
        for _ in 0..jobs.min(ctx.n / 2) {
            match prober.fork() {
                Some(f) => forks.push(f),
                None => {
                    forks.clear();
                    break;
                }
            }
        }
    }

    let mut table = if forks.len() > 1 {
        run_phases(&mut ctx, cfg, &rounds, &mut stats, |rs, kind, st| {
            run_phase_threaded(&mut forks, cfg, rs, kind, st)
        })?
    } else {
        run_phases(&mut ctx, cfg, &rounds, &mut stats, |rs, kind, st| {
            run_phase_inline(prober, cfg, rs, kind, st)
        })?
    };
    if let Some((pairs, pc)) = &pruned {
        reconstruct_pruned(&mut table, pairs, pc);
    }
    Ok((table, stats))
}

/// Resolves the measurement plan of a run: the schedule rounds plus,
/// when pruning is active, the measured pair list the closure
/// reconstruction needs afterwards. A pruning config that does not fit
/// the machine falls back to the exhaustive round-robin schedule.
#[allow(clippy::type_complexity)]
fn plan_rounds(
    n: usize,
    cfg: &ProbeConfig,
) -> (
    Vec<Vec<(usize, usize)>>,
    Option<(Vec<(usize, usize)>, PruneCfg)>,
) {
    if let PairSelection::Pruned(pc) = cfg.pairs {
        if let Some(pairs) = pruned_pairs(n, &pc) {
            let rounds = schedule::rounds_for(n, &pairs);
            return (rounds, Some((pairs, pc)));
        }
    }
    (schedule::round_robin(n), None)
}

/// Pruned collection is single-phase: the adaptive pilot's boundary
/// check clusters the whole table, which is meaningless while most
/// entries are still unmeasured, so pruning forces `adaptive` off.
fn effective_cfg(cfg: &ProbeConfig, pruned: bool) -> ProbeConfig {
    if pruned && cfg.adaptive.is_some() {
        ProbeConfig {
            adaptive: None,
            ..cfg.clone()
        }
    } else {
        cfg.clone()
    }
}

/// Fills the unmeasured entries of a pruned table by shortest-path
/// closure over the measured socket graph.
///
/// The model (matching [`crate::build`]'s link inference in reverse):
/// every cross-socket latency is a fixed per-transfer overhead `h` plus
/// additive wire latency along the cheapest socket path. The measured
/// pairs give socket-edge weights `W(u, v) = min measured latency`;
/// `h` falls out of the two smallest distinct weights (a 2-hop path
/// costs `h + 2 * (lambda1 - h)`, so `h = 2 * lambda1 - lambda2` when
/// the second level is a 2-hop level); Dijkstra over `W - h` then gives
/// every missing cross-socket latency as `h + dist`. Measured entries
/// are kept verbatim, so on machines where the model is exact (the
/// mesh-scale presets) a noiseless pruned table equals the exhaustive
/// one byte for byte, and on machines where it is not, validation sees
/// the genuine measurements.
fn reconstruct_pruned(table: &mut LatencyTable, pairs: &[(usize, usize)], pc: &PruneCfg) {
    let n = table.n();
    let c = pc.ctxs_per_socket;
    let m = pc.sockets;
    debug_assert_eq!(c * m, n);
    let mut measured = vec![false; n * n];
    for &(a, b) in pairs {
        measured[a * n + b] = true;
        measured[b * n + a] = true;
    }
    // Socket-level edge weights: the minimum measured latency between
    // any context of u and any context of v (noise, if present, is
    // damped by taking the min over c^2-ish samples per socket pair).
    let mut w: Vec<u32> = vec![u32::MAX; m * m];
    // Intra-socket fallback (the ball radius >= c guarantees every
    // intra pair is measured, so this is belt and braces).
    let mut intra: Vec<u32> = vec![u32::MAX; m];
    for &(a, b) in pairs {
        let (u, v) = (a / c, b / c);
        let lat = table.get(a, b);
        if u == v {
            intra[u] = intra[u].min(lat);
        } else if lat < w[u * m + v] {
            w[u * m + v] = lat;
            w[v * m + u] = lat;
        }
    }
    // Overhead estimate from the two smallest distinct edge weights;
    // a single level (or none) means no path composition is possible
    // anyway and h only shifts reconstructed values uniformly.
    let mut vals: Vec<u32> = w.iter().copied().filter(|&x| x != u32::MAX).collect();
    vals.sort_unstable();
    vals.dedup();
    let h = match (vals.first(), vals.get(1)) {
        (Some(&l1), Some(&l2)) => ((2 * l1 as u64).saturating_sub(l2 as u64)).min(l1 as u64) as u32,
        _ => 0,
    };
    // Dijkstra per socket over wire weights (W - h).
    let mut dist_all: Vec<Vec<u64>> = Vec::with_capacity(m);
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); m];
    for u in 0..m {
        for v in (u + 1)..m {
            let weight = w[u * m + v];
            if weight != u32::MAX {
                let wire = weight.saturating_sub(h) as u64;
                adj[u].push((v, wire));
                adj[v].push((u, wire));
            }
        }
    }
    for src in 0..m {
        let mut dist = vec![u64::MAX; m];
        dist[src] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, wire) in &adj[u] {
                let nd = d + wire;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist_all.push(dist);
    }
    // Fill every unmeasured entry; disconnected or intra-unmeasured
    // pairs stay zero (validation rejects such tables loudly rather
    // than inventing a number).
    for a in 0..n {
        for b in (a + 1)..n {
            if measured[a * n + b] {
                continue;
            }
            let (u, v) = (a / c, b / c);
            if u == v {
                if intra[u] != u32::MAX {
                    table.set(a, b, intra[u]);
                }
            } else {
                let d = dist_all[u][v];
                if d != u64::MAX {
                    let lat = (h as u64 + d).min(u32::MAX as u64) as u32;
                    table.set(a, b, lat);
                }
            }
        }
    }
}

/// Drives the one- or two-phase measurement plan over a phase executor
/// (the inline loop or the threaded pool) — the single code path both
/// [`collect`] and [`collect_parallel`] reduce to.
fn run_phases(
    ctx: &mut Collection,
    cfg: &ProbeConfig,
    rounds: &[Vec<(usize, usize)>],
    stats: &mut ProbeStats,
    mut phase: impl FnMut(&[Vec<(usize, usize)>], PhaseKind, &mut ProbeStats) -> Vec<Entry>,
) -> Result<LatencyTable, McTopError> {
    match cfg.adaptive {
        None => finish_phase(ctx, phase(rounds, PhaseKind::Full, stats)),
        Some(ad) => {
            // The pilot must stay the cheap pass: a pilot_reps above the
            // full repetition count would make "adaptive" strictly more
            // expensive than plain collection.
            let ad = AdaptiveCfg {
                pilot_reps: ad.pilot_reps.min(cfg.reps),
                ..ad
            };
            let pilots = phase(rounds, PhaseKind::Pilot(ad), stats);
            let refine = plan_refinement(ctx, rounds, pilots, cfg, ad);
            let entries = phase(&refine, PhaseKind::Refine, stats);
            finish_phase(ctx, entries)
        }
    }
}

/// Shared state of one collection run.
struct Collection {
    n: usize,
    rdtsc_est: u32,
    table: LatencyTable,
}

/// Calibration + warm-up, shared by the sequential and parallel entry
/// points. Runs before any pair so that measurement streams never
/// interleave with warm-up randomness and forked probers inherit fully
/// warmed cores.
fn begin_collection<P: Prober>(
    prober: &mut P,
    cfg: &ProbeConfig,
) -> Result<Collection, McTopError> {
    let n = prober.num_hwcs();
    assert!(n >= 2, "need at least two hardware contexts");
    assert!(cfg.reps >= 1, "need at least one repetition per pair");
    if let Some(ad) = &cfg.adaptive {
        assert!(ad.pilot_reps >= 1, "need at least one pilot repetition");
    }
    // Estimate the rdtsc read cost once, as the median of a calibration
    // loop (Fig. 5 subtracts `rdtsc_latency` from every measurement).
    prober.begin_stream(ProbeStream::Calibration);
    let rdtsc_samples: Vec<u32> = (0..101).map(|_| prober.rdtsc_cost()).collect();
    let rdtsc_est = stats::median_u32(&rdtsc_samples);
    // The paper warms both cores before every lock-step phase; warming
    // everything up-front is equivalent (frequency only ramps up) and
    // keeps measurements independent of pair order.
    if cfg.warmup {
        for ctx in 0..n {
            prober.begin_stream(ProbeStream::Warmup(ctx));
            prober.warmup(ctx);
        }
    }
    Ok(Collection {
        n,
        rdtsc_est,
        table: LatencyTable::new(n),
    })
}

/// What a measurement phase does per pair.
#[derive(Clone, Copy)]
enum PhaseKind {
    /// Full repetitions with the stdev retry gate ([`ProbeStream::Pair`]).
    Full,
    /// The cheap adaptive pilot pass (no retries, no failure).
    Pilot(AdaptiveCfg),
    /// Full repetitions on the refinement stream
    /// ([`ProbeStream::Refine`]).
    Refine,
}

/// Result of measuring one pair.
enum Outcome {
    /// Median of the accepted samples, rdtsc cost still included.
    Value(u32),
    /// Pilot median plus whether the pilot already met the stdev gate.
    Pilot { median: u32, stable: bool },
    /// The retry escalation never stabilized (best relative stdev).
    Unstable(f64),
}

/// One measured pair, tagged with its schedule position so merged
/// worker outputs can be ordered deterministically.
struct Entry {
    round: u32,
    slot: u32,
    a: usize,
    b: usize,
    outcome: Outcome,
}

/// Measures one pair according to `kind`, accumulating statistics and
/// reusing `buf` for the samples. Returns the outcome and the modelled
/// cycles this pair occupied its measurement slot for (samples +
/// migration overhead) — the unit of the critical-path accounting.
fn measure_one<P: Prober>(
    prober: &mut P,
    cfg: &ProbeConfig,
    kind: PhaseKind,
    a: usize,
    b: usize,
    stats: &mut ProbeStats,
    buf: &mut Vec<u32>,
) -> (Outcome, u64) {
    let mut cycles = cfg.pair_overhead_cycles;
    stats.overhead_cycles += cfg.pair_overhead_cycles;
    match kind {
        PhaseKind::Pilot(ad) => {
            prober.begin_stream(ProbeStream::Pair(a, b));
            prober.probe_batch(a, b, buf, ad.pilot_reps);
            stats.pairs += 1;
            stats.probes += buf.len() as u64;
            stats.pilot_probes += buf.len() as u64;
            let sample_cycles: u64 = buf.iter().map(|&s| s as u64).sum();
            stats.sample_cycles += sample_cycles;
            cycles += sample_cycles;
            let median = stats::median_u32(buf);
            let sd = stats::stdev(buf);
            let frac = if median == 0 { 0.0 } else { sd / median as f64 };
            (
                Outcome::Pilot {
                    median,
                    stable: frac <= cfg.stdev_frac,
                },
                cycles,
            )
        }
        PhaseKind::Full | PhaseKind::Refine => {
            match kind {
                PhaseKind::Full => {
                    prober.begin_stream(ProbeStream::Pair(a, b));
                    stats.pairs += 1;
                }
                _ => {
                    prober.begin_stream(ProbeStream::Refine(a, b));
                    stats.refined_pairs += 1;
                }
            }
            let mut best_frac = f64::INFINITY;
            for attempt in 0..=cfg.max_retries {
                prober.probe_batch(a, b, buf, cfg.reps);
                stats.probes += buf.len() as u64;
                let sample_cycles: u64 = buf.iter().map(|&s| s as u64).sum();
                stats.sample_cycles += sample_cycles;
                cycles += sample_cycles;
                let median = stats::median_u32(buf);
                let sd = stats::stdev(buf);
                let frac = if median == 0 { 0.0 } else { sd / median as f64 };
                // Threshold escalates linearly from stdev_frac to
                // stdev_frac_max across the retries.
                let threshold = if cfg.max_retries == 0 {
                    cfg.stdev_frac_max
                } else {
                    cfg.stdev_frac
                        + (cfg.stdev_frac_max - cfg.stdev_frac)
                            * (attempt as f64 / cfg.max_retries as f64)
                };
                if frac <= threshold {
                    return (Outcome::Value(median), cycles);
                }
                best_frac = best_frac.min(frac);
                stats.retries += 1;
            }
            (Outcome::Unstable(best_frac), cycles)
        }
    }
}

/// Runs one phase on the calling thread, visiting rounds (and pairs
/// within each round) in schedule order. Stops after the first failing
/// pair, like the paper's sequential collector.
fn run_phase_inline<P: Prober>(
    prober: &mut P,
    cfg: &ProbeConfig,
    rounds: &[Vec<(usize, usize)>],
    kind: PhaseKind,
    stats: &mut ProbeStats,
) -> Vec<Entry> {
    let mut entries = Vec::with_capacity(rounds.iter().map(Vec::len).sum());
    let mut buf = Vec::new();
    let backend_before = prober.backend_retries();
    'rounds: for (r, round) in rounds.iter().enumerate() {
        for (i, &(a, b)) in round.iter().enumerate() {
            let (outcome, cycles) = measure_one(prober, cfg, kind, a, b, stats, &mut buf);
            stats.critical_cycles += cycles;
            let failed = matches!(outcome, Outcome::Unstable(_));
            entries.push(Entry {
                round: r as u32,
                slot: i as u32,
                a,
                b,
                outcome,
            });
            if failed {
                break 'rounds;
            }
        }
    }
    stats.retries += prober.backend_retries().saturating_sub(backend_before);
    entries
}

/// Runs one phase across the forked worker pool: round by round, the
/// disjoint pairs of each round are dealt out across the workers, with
/// a barrier between rounds so concurrently-measured pairs never share
/// a context (the measurement-isolation property the schedule exists
/// for). Worker outputs are merged into schedule order and per-round
/// worker maxima feed the critical-path accounting.
fn run_phase_threaded<P: Prober + Send>(
    forks: &mut [P],
    cfg: &ProbeConfig,
    rounds: &[Vec<(usize, usize)>],
    kind: PhaseKind,
    stats: &mut ProbeStats,
) -> Vec<Entry> {
    let jobs = forks.len();
    // Disjointness within an in-flight set only matters when pairs
    // disturb each other (real hardware): then a barrier holds workers
    // to one schedule round at a time. Order-independent backends skip
    // the sync and stream through their share of every round.
    let isolate_rounds = forks.iter().all(|f| f.concurrent_pairs_interfere());
    let barrier = Barrier::new(jobs);
    // Earliest round with a failed pair (`u64::MAX` while none): every
    // worker keeps measuring until it has *completed* that round, so
    // the merged entries always contain the first failing pair in
    // schedule order — the one the sequential run would report.
    let abort_round = AtomicU64::new(u64::MAX);
    let worker_outs: Vec<(Vec<Entry>, ProbeStats, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = forks
            .iter_mut()
            .enumerate()
            .map(|(w, prober)| {
                let barrier = &barrier;
                let abort_round = &abort_round;
                scope.spawn(move || {
                    let mut entries = Vec::new();
                    let mut local = ProbeStats::default();
                    let mut buf = Vec::new();
                    let mut round_cycles = vec![0u64; rounds.len()];
                    let backend_before = prober.backend_retries();
                    for (r, round) in rounds.iter().enumerate() {
                        for (i, &(a, b)) in round.iter().enumerate() {
                            if i % jobs != w {
                                continue;
                            }
                            let (outcome, cycles) =
                                measure_one(prober, cfg, kind, a, b, &mut local, &mut buf);
                            round_cycles[r] += cycles;
                            if matches!(outcome, Outcome::Unstable(_)) {
                                abort_round.fetch_min(r as u64, Ordering::Relaxed);
                            }
                            entries.push(Entry {
                                round: r as u32,
                                slot: i as u32,
                                a,
                                b,
                                outcome,
                            });
                        }
                        if isolate_rounds {
                            // Lockstep rounds stop collectively: between
                            // the two waits nobody measures (so nobody
                            // stores), hence every worker reads the same
                            // abort state and takes the same branch — a
                            // divergent break would strand the others at
                            // the next barrier.
                            barrier.wait();
                            let stop = abort_round.load(Ordering::Relaxed) != u64::MAX;
                            barrier.wait();
                            if stop {
                                break;
                            }
                        } else if r as u64 >= abort_round.load(Ordering::Relaxed) {
                            // Free-running workers stop once they have
                            // completed the earliest failing round, so
                            // every pair scheduled before the failure is
                            // still measured.
                            break;
                        }
                    }
                    local.retries += prober.backend_retries().saturating_sub(backend_before);
                    (entries, local, round_cycles)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut entries = Vec::with_capacity(rounds.iter().map(Vec::len).sum());
    let mut round_maxima = vec![0u64; rounds.len()];
    for (worker_entries, worker_stats, round_cycles) in worker_outs {
        stats.merge(&worker_stats);
        entries.extend(worker_entries);
        for (r, &c) in round_cycles.iter().enumerate() {
            round_maxima[r] = round_maxima[r].max(c);
        }
    }
    stats.critical_cycles += round_maxima.iter().sum::<u64>();
    entries.sort_unstable_by_key(|e| (e.round, e.slot));
    entries
}

/// Applies a Full/Refine phase's entries to the table (rdtsc-corrected)
/// in schedule order, surfacing the earliest failure.
fn finish_phase(ctx: &mut Collection, entries: Vec<Entry>) -> Result<LatencyTable, McTopError> {
    for e in entries {
        match e.outcome {
            Outcome::Value(median) => {
                ctx.table
                    .set(e.a, e.b, median.saturating_sub(ctx.rdtsc_est));
            }
            Outcome::Pilot { .. } => unreachable!("pilot entries go through plan_refinement"),
            Outcome::Unstable(stdev_frac) => {
                return Err(McTopError::UnstableMeasurements {
                    pair: (e.a, e.b),
                    stdev_frac,
                });
            }
        }
    }
    // The collection state is done once the last phase is applied: move
    // the table out instead of copying N² values.
    Ok(std::mem::replace(&mut ctx.table, LatencyTable::new(0)))
}

/// Applies the pilot entries to the table and selects which pairs the
/// refinement pass must re-measure: pilots that failed the stdev gate,
/// plus pilots whose (rdtsc-corrected) median lies within
/// [`AdaptiveCfg::boundary_frac`] of an adjacent latency cluster — the
/// pairs where a cheap median could plausibly land on the wrong side of
/// a cluster split. Returns refinement rounds (each a subset of a
/// schedule round, so disjointness is preserved).
fn plan_refinement(
    ctx: &mut Collection,
    rounds: &[Vec<(usize, usize)>],
    pilots: Vec<Entry>,
    cfg: &ProbeConfig,
    ad: AdaptiveCfg,
) -> Vec<Vec<(usize, usize)>> {
    let n = ctx.n;
    let mut stable = vec![true; n * n];
    for e in &pilots {
        let (median, ok) = match e.outcome {
            Outcome::Pilot { median, stable } => (median, stable),
            _ => unreachable!("full entries go through finish_phase"),
        };
        ctx.table
            .set(e.a, e.b, median.saturating_sub(ctx.rdtsc_est));
        stable[e.a * n + e.b] = ok;
    }
    // Cluster the pilot medians; if even the pilot values cluster, only
    // boundary-risky pairs need the full repetitions. A failed
    // clustering means the pilot is globally untrustworthy: refine
    // everything.
    let clusters = cluster::cluster(&ctx.table.upper_triangle(), &cfg.cluster).ok();
    let near_boundary = |value: u32| -> bool {
        let Some(clusters) = &clusters else {
            return true;
        };
        let Some(i) = clusters
            .iter()
            .position(|c| c.min <= value && value <= c.max)
        else {
            return true;
        };
        let guard = ad.boundary_frac * value as f64;
        (i > 0 && (value - clusters[i - 1].max) as f64 <= guard)
            || (i + 1 < clusters.len() && (clusters[i + 1].min - value) as f64 <= guard)
    };
    rounds
        .iter()
        .map(|round| {
            round
                .iter()
                .copied()
                .filter(|&(a, b)| !stable[a * n + b] || near_boundary(ctx.table.get(a, b)))
                .collect::<Vec<_>>()
        })
        .filter(|round: &Vec<_>| !round.is_empty())
        .collect()
}

/// SMT detection (Section 3.5): spin solo on one context, then spin
/// simultaneously on the two minimum-latency contexts. If they share a
/// core, SMT resource sharing slows the loop down markedly.
pub fn detect_smt<P: Prober>(prober: &mut P, norm: &LatencyTable) -> bool {
    prober.begin_stream(ProbeStream::SmtCheck);
    let n = norm.n();
    let mut best: Option<(u32, usize, usize)> = None;
    for a in 0..n {
        for b in (a + 1)..n {
            let v = norm.get(a, b);
            if best.is_none_or(|(bv, _, _)| v < bv) {
                best = Some((v, a, b));
            }
        }
    }
    let Some((_, a, b)) = best else { return false };
    const ITERS: u64 = 50_000;
    let solo = prober.spin_duration(&[a], ITERS);
    let paired = prober.spin_duration(&[a, b], ITERS);
    paired as f64 > solo as f64 * 1.4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimProber;
    use mcsim::presets;

    #[test]
    fn noiseless_collection_recovers_exact_latencies() {
        let spec = presets::synthetic_small();
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig {
            reps: 5,
            ..ProbeConfig::fast()
        };
        let (table, stats) = collect(&mut p, &cfg).unwrap();
        assert!(table.is_consistent());
        for a in 0..spec.total_hwcs() {
            for b in 0..spec.total_hwcs() {
                assert_eq!(table.get(a, b), spec.true_latency(a, b), "pair ({a},{b})");
            }
        }
        let n = spec.total_hwcs() as u64;
        assert_eq!(stats.pairs, n * (n - 1) / 2);
        assert_eq!(stats.probes, stats.pairs * 5);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.critical_cycles, stats.modeled_cycles());
    }

    /// A backend that reports one absorbed transient failure per sample
    /// batch, exercising the per-phase fold of [`Prober::backend_retries`]
    /// deltas into [`ProbeStats::retries`].
    struct FlakyBackend<'a> {
        inner: SimProber<'a>,
        absorbed: u64,
    }

    impl Prober for FlakyBackend<'_> {
        fn num_hwcs(&self) -> usize {
            self.inner.num_hwcs()
        }
        fn num_nodes(&self) -> usize {
            self.inner.num_nodes()
        }
        fn probe(&mut self, a: usize, b: usize) -> u32 {
            self.inner.probe(a, b)
        }
        fn probe_batch(&mut self, a: usize, b: usize, out: &mut Vec<u32>, count: usize) {
            self.absorbed += 1;
            self.inner.probe_batch(a, b, out, count);
        }
        fn rdtsc_cost(&mut self) -> u32 {
            self.inner.rdtsc_cost()
        }
        fn spin_duration(&mut self, ctxs: &[usize], iters: u64) -> u64 {
            self.inner.spin_duration(ctxs, iters)
        }
        fn warmup(&mut self, ctx: usize) {
            self.inner.warmup(ctx)
        }
        fn begin_stream(&mut self, stream: ProbeStream) {
            self.inner.begin_stream(stream)
        }
        fn fork(&self) -> Option<Self> {
            self.inner
                .fork()
                .map(|inner| FlakyBackend { inner, absorbed: 0 })
        }
        fn concurrent_pairs_interfere(&self) -> bool {
            self.inner.concurrent_pairs_interfere()
        }
        fn backend_retries(&self) -> u64 {
            self.absorbed
        }
    }

    #[test]
    fn backend_retries_fold_into_stats() {
        let spec = presets::synthetic_small();
        let cfg = ProbeConfig {
            reps: 5,
            ..ProbeConfig::fast()
        };
        let mk = || FlakyBackend {
            inner: SimProber::noiseless(&spec),
            absorbed: 0,
        };
        let mut p = mk();
        let (_, stats) = collect(&mut p, &cfg).unwrap();
        assert_eq!(
            stats.retries,
            p.backend_retries(),
            "inline fold captures every absorbed failure"
        );
        assert_eq!(
            stats.retries, stats.pairs,
            "noiseless: exactly one batch (one absorbed failure) per pair"
        );
        // Threaded collection sums per-fork deltas into the same bucket.
        let (_, par_stats) = collect_parallel(&mut mk(), &cfg, 3).unwrap();
        assert_eq!(par_stats.retries, stats.retries);
    }

    #[test]
    fn noisy_collection_medians_are_close() {
        let spec = presets::ivy();
        let mut p = SimProber::new(&spec, 7);
        let (table, _) = collect(&mut p, &ProbeConfig::fast()).unwrap();
        for &(a, b) in &[(0usize, 1usize), (0, 10), (0, 20), (5, 35)] {
            let truth = spec.true_latency(a, b) as f64;
            let got = table.get(a, b) as f64;
            assert!(
                (got - truth).abs() / truth < 0.10,
                "({a},{b}): got {got}, truth {truth}"
            );
        }
    }

    #[test]
    fn hostile_noise_errors_out() {
        let spec = presets::synthetic_small();
        let mut p = SimProber::with_noise(&spec, 3, mcsim::NoiseCfg::hostile());
        let cfg = ProbeConfig {
            reps: 31,
            max_retries: 1,
            ..ProbeConfig::fast()
        };
        let res = collect(&mut p, &cfg);
        assert!(matches!(res, Err(McTopError::UnstableMeasurements { .. })));
    }

    #[test]
    fn parallel_equals_sequential_noiseless_and_noisy() {
        let spec = presets::ivy();
        let cfg = ProbeConfig {
            reps: 15,
            ..ProbeConfig::fast()
        };
        for seed in [None, Some(7u64), Some(42)] {
            let mk = || match seed {
                None => SimProber::noiseless(&spec),
                Some(s) => SimProber::new(&spec, s),
            };
            let (seq_table, seq_stats) = collect(&mut mk(), &cfg).unwrap();
            for jobs in [1usize, 2, 5] {
                let (par_table, par_stats) = collect_parallel(&mut mk(), &cfg, jobs).unwrap();
                assert_eq!(seq_table, par_table, "seed {seed:?} jobs {jobs}");
                assert_eq!(seq_stats.pairs, par_stats.pairs);
                assert_eq!(seq_stats.probes, par_stats.probes);
                assert_eq!(seq_stats.retries, par_stats.retries);
                assert_eq!(seq_stats.sample_cycles, par_stats.sample_cycles);
                assert_eq!(seq_stats.overhead_cycles, par_stats.overhead_cycles);
                assert!(par_stats.critical_cycles <= seq_stats.critical_cycles);
            }
        }
    }

    #[test]
    fn parallel_error_matches_sequential_error() {
        let spec = presets::synthetic_small();
        let cfg = ProbeConfig {
            reps: 31,
            max_retries: 1,
            ..ProbeConfig::fast()
        };
        let seq = collect(
            &mut SimProber::with_noise(&spec, 3, mcsim::NoiseCfg::hostile()),
            &cfg,
        );
        let par = collect_parallel(
            &mut SimProber::with_noise(&spec, 3, mcsim::NoiseCfg::hostile()),
            &cfg,
            4,
        );
        match (seq, par) {
            (
                Err(McTopError::UnstableMeasurements {
                    pair: ps,
                    stdev_frac: fs,
                }),
                Err(McTopError::UnstableMeasurements {
                    pair: pp,
                    stdev_frac: fp,
                }),
            ) => {
                assert_eq!(ps, pp);
                assert_eq!(fs, fp);
            }
            other => panic!("expected matching unstable errors, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_noiseless_matches_full_and_skips_refinement() {
        let spec = presets::ivy();
        let cfg_full = ProbeConfig {
            reps: 5,
            ..ProbeConfig::fast()
        };
        let cfg_adaptive = ProbeConfig {
            adaptive: Some(AdaptiveCfg {
                pilot_reps: 5,
                ..AdaptiveCfg::default()
            }),
            ..cfg_full.clone()
        };
        let (t_full, _) = collect(&mut SimProber::noiseless(&spec), &cfg_full).unwrap();
        let (t_ad, s_ad) = collect(&mut SimProber::noiseless(&spec), &cfg_adaptive).unwrap();
        // Noiseless pilot medians are exact and the latency bands are
        // far apart, so nothing needs refinement.
        assert_eq!(t_full, t_ad);
        assert_eq!(s_ad.refined_pairs, 0);
        assert_eq!(s_ad.pilot_probes, s_ad.probes);
    }

    #[test]
    fn adaptive_noisy_refines_some_and_stays_deterministic() {
        let spec = presets::ivy();
        let cfg = ProbeConfig {
            adaptive: Some(AdaptiveCfg::default()),
            ..ProbeConfig::fast()
        };
        let (t1, s1) = collect(&mut SimProber::new(&spec, 11), &cfg).unwrap();
        let (t2, s2) = collect_parallel(&mut SimProber::new(&spec, 11), &cfg, 4).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(s1.pairs, s2.pairs);
        assert_eq!(s1.probes, s2.probes);
        assert_eq!(s1.refined_pairs, s2.refined_pairs);
        // The pilot pass did save work: not every pair was refined.
        assert!(s1.refined_pairs < s1.pairs, "{s1:?}");
        // And the result still tracks the truth.
        for &(a, b) in &[(0usize, 1usize), (0, 10), (0, 20)] {
            let truth = spec.true_latency(a, b) as f64;
            let got = t1.get(a, b) as f64;
            assert!((got - truth).abs() / truth < 0.12, "({a},{b})");
        }
    }

    #[test]
    fn smt_detected_on_smt_machines_only() {
        let smt_spec = presets::synthetic_small();
        let mut p = SimProber::noiseless(&smt_spec);
        let cfg = ProbeConfig {
            reps: 5,
            ..ProbeConfig::fast()
        };
        let (t, _) = collect(&mut p, &cfg).unwrap();
        assert!(detect_smt(&mut p, &t));

        let nosmt = presets::no_smt_small();
        let mut p2 = SimProber::noiseless(&nosmt);
        let (t2, _) = collect(&mut p2, &cfg).unwrap();
        assert!(!detect_smt(&mut p2, &t2));
    }

    #[test]
    fn modeled_runtime_orders_ivy_vs_westmere() {
        // Section 3.5: ~3 s on Ivy (40 contexts), 96 s on Westmere (160
        // contexts, DVFS). The modelled accounting must reproduce the
        // order of magnitude and the ~20-30x gap.
        let ivy = presets::ivy();
        let west = presets::westmere();
        // Accounting only depends on pair counts and medians: collect
        // with few reps and scale to the paper's 2000.
        let cfg = ProbeConfig {
            reps: 25,
            ..ProbeConfig::default()
        };
        let mut pi = SimProber::noiseless(&ivy);
        let mut pw = SimProber::noiseless(&west);
        let (_, si) = collect(&mut pi, &cfg).unwrap();
        let (_, sw) = collect(&mut pw, &cfg).unwrap();
        let t_ivy = si.scaled_to_reps(25, 2000).modeled_seconds(ivy.freq_ghz);
        let t_west = sw.scaled_to_reps(25, 2000).modeled_seconds(west.freq_ghz);
        assert!(t_ivy > 1.0 && t_ivy < 10.0, "ivy {t_ivy}");
        assert!(t_west > 40.0 && t_west < 200.0, "westmere {t_west}");
        assert!(t_west / t_ivy > 10.0);
    }

    #[test]
    fn parallel_critical_path_shrinks_with_jobs() {
        let spec = presets::ivy();
        let cfg = ProbeConfig {
            reps: 9,
            ..ProbeConfig::fast()
        };
        let (_, seq) = collect(&mut SimProber::noiseless(&spec), &cfg).unwrap();
        let (_, par) = collect_parallel(&mut SimProber::noiseless(&spec), &cfg, 8).unwrap();
        assert_eq!(seq.modeled_cycles(), par.modeled_cycles());
        let speedup = seq.critical_cycles as f64 / par.critical_cycles as f64;
        // 20 disjoint pairs per round over 8 workers: ceil(20/8) = 3
        // slots per round vs 20 sequentially — ≥ 4x on the critical path.
        assert!(speedup >= 4.0, "modeled speedup {speedup}");
    }

    #[test]
    fn retry_path_survives_moderate_noise() {
        let spec = presets::synthetic_small();
        let noise = mcsim::NoiseCfg {
            sigma_frac: 0.06,
            ..mcsim::NoiseCfg::default()
        };
        let mut p = SimProber::with_noise(&spec, 11, noise);
        let cfg = ProbeConfig {
            reps: 101,
            ..ProbeConfig::fast()
        };
        let (table, _) = collect(&mut p, &cfg).unwrap();
        assert!(table.is_consistent());
    }

    #[test]
    fn pruned_plan_is_subquadratic() {
        // The 16x16 mesh shape (512 contexts): the acceptance bar is
        // <= 25% of the exhaustive pair count; the plan sits well under.
        let pc = PruneCfg::for_machine(2, 256);
        let pairs = pruned_pairs(512, &pc).expect("prunable");
        let exhaustive = schedule::num_pairs(512);
        assert!(
            pairs.len() * 4 <= exhaustive,
            "{} of {} pairs",
            pairs.len(),
            exhaustive
        );
        // Sorted, deduplicated, normalized, in range.
        assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        assert!(pairs.iter().all(|&(a, b)| a < b && b < 512));
        // Deterministic: a pure function of the machine shape.
        assert_eq!(pairs, pruned_pairs(512, &pc).unwrap());
    }

    #[test]
    fn pruned_plan_falls_back_when_structure_mismatches() {
        // Wrong shape (c * M != n) and too-small machines refuse to
        // prune rather than reconstruct from a bogus hypothesis.
        assert!(pruned_pairs(40, &PruneCfg::for_machine(3, 10)).is_none());
        assert!(pruned_pairs(8, &PruneCfg::for_machine(2, 4)).is_none());
    }

    #[test]
    fn pruned_noiseless_equals_exhaustive_on_mesh() {
        // The mesh latency model is exactly the closure model, so a
        // noiseless pruned table must be byte-identical to exhaustive.
        let spec = presets::mesh(8);
        let n = spec.total_hwcs();
        let pc = PruneCfg::for_machine(n / spec.sockets, spec.sockets);
        let cfg_ex = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let cfg_pr = ProbeConfig {
            pairs: PairSelection::Pruned(pc),
            ..cfg_ex.clone()
        };
        let (t_ex, s_ex) = collect(&mut SimProber::noiseless(&spec), &cfg_ex).unwrap();
        let (t_pr, s_pr) = collect(&mut SimProber::noiseless(&spec), &cfg_pr).unwrap();
        assert_eq!(t_ex, t_pr, "reconstruction must be exact on the mesh");
        assert!(
            s_pr.pairs < s_ex.pairs,
            "pruned run measured {} of {} pairs",
            s_pr.pairs,
            s_ex.pairs
        );
        // Parallel pruned collection keeps the determinism contract.
        let (t_par, s_par) =
            collect_parallel(&mut SimProber::noiseless(&spec), &cfg_pr, 6).unwrap();
        assert_eq!(t_pr, t_par);
        assert_eq!(s_pr.pairs, s_par.pairs);
        assert_eq!(s_pr.probes, s_par.probes);
    }

    #[test]
    fn pruned_noiseless_equals_exhaustive_on_circulant() {
        let spec = presets::multiplicative_circulant(64, 4);
        let n = spec.total_hwcs();
        let pc = PruneCfg::for_machine(n / spec.sockets, spec.sockets);
        let cfg_ex = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let cfg_pr = ProbeConfig {
            pairs: PairSelection::Pruned(pc),
            adaptive: Some(AdaptiveCfg::default()), // must be forced off
            ..cfg_ex.clone()
        };
        let (t_ex, _) = collect(&mut SimProber::noiseless(&spec), &cfg_ex).unwrap();
        let (t_pr, s_pr) = collect(&mut SimProber::noiseless(&spec), &cfg_pr).unwrap();
        assert_eq!(t_ex, t_pr);
        assert_eq!(s_pr.pilot_probes, 0, "pruning disables the pilot pass");
    }
}
