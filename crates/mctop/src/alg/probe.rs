//! Step 1 of MCTOP-ALG: collecting the latency table.
//!
//! Two "threads" move from context pair to context pair; for each data
//! point they run the lock-step schedule of Fig. 5 (partner CAS brings
//! the line into Modified state, measuring thread CASes and times it).
//! Per Section 3.5 the collection repeats each measurement `reps` times,
//! keeps the median, and retries with an escalating stdev threshold if
//! the samples are too noisy; the estimated rdtsc read cost is
//! subtracted from every value; DVFS is defeated by spinning until the
//! cores reach maximum frequency.

use mcsim::stats;

use crate::alg::cluster::ClusterCfg;
use crate::alg::table::LatencyTable;
use crate::error::McTopError;

/// The three OS dependencies of Section 3 ("A way to read the number of
/// available hardware contexts and the number of memory nodes, and a way
/// to pin threads to specific contexts"), expressed as a measurement
/// backend.
///
/// Implementations: [`crate::backend::SimProber`] over a simulated
/// machine, and [`crate::host::HostProber`] over the real machine the
/// process runs on (Linux only).
pub trait Prober {
    /// Number of schedulable hardware contexts.
    fn num_hwcs(&self) -> usize;

    /// Number of memory nodes.
    fn num_nodes(&self) -> usize;

    /// One raw lock-step latency sample between contexts `a` and `b`,
    /// in cycles, *including* the timestamp-read cost.
    fn probe(&mut self, a: usize, b: usize) -> u32;

    /// One estimate of the timestamp-read cost (a back-to-back rdtsc
    /// calibration sample).
    fn rdtsc_cost(&mut self) -> u32;

    /// Duration of a fixed spin loop executed simultaneously on the
    /// given contexts; used for DVFS and SMT detection.
    fn spin_duration(&mut self, ctxs: &[usize], iters: u64) -> u64;

    /// Spins on `ctx` until its core reaches maximum frequency.
    fn warmup(&mut self, _ctx: usize) {}

    /// A name for the machine (used in reports and description files).
    fn machine_name(&self) -> String {
        "unknown".into()
    }
}

/// Collection parameters (defaults follow Section 3.5).
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Repetitions per context pair (paper default: 2000).
    pub reps: usize,
    /// Accept a pair when `stdev <= stdev_frac * median` (default 7%).
    pub stdev_frac: f64,
    /// Retry escalation ceiling (default 14%).
    pub stdev_frac_max: f64,
    /// Retries per pair before giving up.
    pub max_retries: u32,
    /// Whether to run the DVFS warm-up before using a context.
    pub warmup: bool,
    /// Modelled fixed cost (cycles) of migrating the measurement
    /// threads to a new pair and re-synchronizing: contributes to the
    /// inference-runtime accounting of Section 3.5.
    pub pair_overhead_cycles: u64,
    /// Clustering parameters for step 2.
    pub cluster: ClusterCfg,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            reps: 2000,
            stdev_frac: 0.07,
            stdev_frac_max: 0.14,
            max_retries: 3,
            warmup: true,
            pair_overhead_cycles: 8_000_000,
            cluster: ClusterCfg::default(),
        }
    }
}

impl ProbeConfig {
    /// Reduced repetitions for tests and simulated runs; the simulated
    /// noise is well-behaved enough that 51 samples give stable medians.
    pub fn fast() -> Self {
        ProbeConfig {
            reps: 51,
            ..ProbeConfig::default()
        }
    }
}

/// Measurement statistics of a collection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProbeStats {
    /// Context pairs measured.
    pub pairs: u64,
    /// Raw probes issued.
    pub probes: u64,
    /// Pair-level retries due to unstable stdev.
    pub retries: u64,
    /// Cycles spent inside probes (sum of all raw samples).
    pub sample_cycles: u64,
    /// Cycles of fixed per-pair overhead (thread migration, barriers,
    /// DVFS re-checks).
    pub overhead_cycles: u64,
}

impl ProbeStats {
    /// Total modelled cost in cycles: the quantity behind the paper's
    /// "~3 seconds on Ivy, 96 seconds on Westmere" (Section 3.5).
    pub fn modeled_cycles(&self) -> u64 {
        self.sample_cycles + self.overhead_cycles
    }

    /// Modelled wall-clock seconds at the given core frequency.
    pub fn modeled_seconds(&self, freq_ghz: f64) -> f64 {
        self.modeled_cycles() as f64 / (freq_ghz * 1e9)
    }

    /// Stats as they would look with `target` repetitions per pair
    /// instead of the `actual` used: probe time scales linearly, the
    /// per-pair overhead does not. Lets fast runs report the cost of the
    /// paper's 2000-rep configuration.
    pub fn scaled_to_reps(&self, actual: usize, target: usize) -> ProbeStats {
        assert!(actual > 0);
        let f = target as f64 / actual as f64;
        ProbeStats {
            pairs: self.pairs,
            probes: (self.probes as f64 * f) as u64,
            retries: self.retries,
            sample_cycles: (self.sample_cycles as f64 * f) as u64,
            overhead_cycles: self.overhead_cycles,
        }
    }
}

/// Collects the full latency table (upper triangle measured, mirrored).
pub fn collect<P: Prober>(
    prober: &mut P,
    cfg: &ProbeConfig,
) -> Result<(LatencyTable, ProbeStats), McTopError> {
    let n = prober.num_hwcs();
    assert!(n >= 2, "need at least two hardware contexts");
    let mut stats = ProbeStats::default();
    // Estimate the rdtsc read cost once, as the median of a calibration
    // loop (Fig. 5 subtracts `rdtsc_latency` from every measurement).
    let rdtsc_samples: Vec<u32> = (0..101).map(|_| prober.rdtsc_cost()).collect();
    let rdtsc_est = stats_median(&rdtsc_samples);

    let mut table = LatencyTable::new(n);
    let mut warmed = vec![false; n];
    for a in 0..n {
        for b in (a + 1)..n {
            if cfg.warmup {
                // The paper warms both cores before every lock-step
                // phase; re-warming an already hot core is a no-op, so
                // it is enough to do it lazily per context.
                if !warmed[a] {
                    prober.warmup(a);
                    warmed[a] = true;
                }
                if !warmed[b] {
                    prober.warmup(b);
                    warmed[b] = true;
                }
            }
            let median = measure_pair(prober, cfg, a, b, &mut stats)?;
            let corrected = median.saturating_sub(rdtsc_est);
            table.set(a, b, corrected);
            stats.pairs += 1;
            stats.overhead_cycles += cfg.pair_overhead_cycles;
        }
    }
    Ok((table, stats))
}

/// Measures one pair: median of `reps` samples, retried with an
/// escalating stdev threshold (Section 3.5).
fn measure_pair<P: Prober>(
    prober: &mut P,
    cfg: &ProbeConfig,
    a: usize,
    b: usize,
    stats: &mut ProbeStats,
) -> Result<u32, McTopError> {
    let mut best_frac = f64::INFINITY;
    for attempt in 0..=cfg.max_retries {
        let samples: Vec<u32> = (0..cfg.reps).map(|_| prober.probe(a, b)).collect();
        stats.probes += samples.len() as u64;
        stats.sample_cycles += samples.iter().map(|&s| s as u64).sum::<u64>();
        let median = stats::median_u32(&samples);
        let sd = stats::stdev(&samples);
        let frac = if median == 0 { 0.0 } else { sd / median as f64 };
        // Threshold escalates linearly from stdev_frac to stdev_frac_max
        // across the retries.
        let threshold = if cfg.max_retries == 0 {
            cfg.stdev_frac_max
        } else {
            cfg.stdev_frac
                + (cfg.stdev_frac_max - cfg.stdev_frac) * (attempt as f64 / cfg.max_retries as f64)
        };
        if frac <= threshold {
            return Ok(median);
        }
        best_frac = best_frac.min(frac);
        stats.retries += 1;
    }
    Err(McTopError::UnstableMeasurements {
        pair: (a, b),
        stdev_frac: best_frac,
    })
}

/// SMT detection (Section 3.5): spin solo on one context, then spin
/// simultaneously on the two minimum-latency contexts. If they share a
/// core, SMT resource sharing slows the loop down markedly.
pub fn detect_smt<P: Prober>(prober: &mut P, norm: &LatencyTable) -> bool {
    let n = norm.n();
    let mut best: Option<(u32, usize, usize)> = None;
    for a in 0..n {
        for b in (a + 1)..n {
            let v = norm.get(a, b);
            if best.is_none_or(|(bv, _, _)| v < bv) {
                best = Some((v, a, b));
            }
        }
    }
    let Some((_, a, b)) = best else { return false };
    const ITERS: u64 = 50_000;
    let solo = prober.spin_duration(&[a], ITERS);
    let paired = prober.spin_duration(&[a, b], ITERS);
    paired as f64 > solo as f64 * 1.4
}

fn stats_median(v: &[u32]) -> u32 {
    stats::median_u32(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimProber;
    use mcsim::presets;

    #[test]
    fn noiseless_collection_recovers_exact_latencies() {
        let spec = presets::synthetic_small();
        let mut p = SimProber::noiseless(&spec);
        let cfg = ProbeConfig {
            reps: 5,
            ..ProbeConfig::fast()
        };
        let (table, stats) = collect(&mut p, &cfg).unwrap();
        assert!(table.is_consistent());
        for a in 0..spec.total_hwcs() {
            for b in 0..spec.total_hwcs() {
                assert_eq!(table.get(a, b), spec.true_latency(a, b), "pair ({a},{b})");
            }
        }
        let n = spec.total_hwcs() as u64;
        assert_eq!(stats.pairs, n * (n - 1) / 2);
        assert_eq!(stats.probes, stats.pairs * 5);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn noisy_collection_medians_are_close() {
        let spec = presets::ivy();
        let mut p = SimProber::new(&spec, 7);
        let (table, _) = collect(&mut p, &ProbeConfig::fast()).unwrap();
        for &(a, b) in &[(0usize, 1usize), (0, 10), (0, 20), (5, 35)] {
            let truth = spec.true_latency(a, b) as f64;
            let got = table.get(a, b) as f64;
            assert!(
                (got - truth).abs() / truth < 0.10,
                "({a},{b}): got {got}, truth {truth}"
            );
        }
    }

    #[test]
    fn hostile_noise_errors_out() {
        let spec = presets::synthetic_small();
        let mut p = SimProber::with_noise(&spec, 3, mcsim::NoiseCfg::hostile());
        let cfg = ProbeConfig {
            reps: 31,
            max_retries: 1,
            ..ProbeConfig::fast()
        };
        let res = collect(&mut p, &cfg);
        assert!(matches!(res, Err(McTopError::UnstableMeasurements { .. })));
    }

    #[test]
    fn smt_detected_on_smt_machines_only() {
        let smt_spec = presets::synthetic_small();
        let mut p = SimProber::noiseless(&smt_spec);
        let cfg = ProbeConfig {
            reps: 5,
            ..ProbeConfig::fast()
        };
        let (t, _) = collect(&mut p, &cfg).unwrap();
        assert!(detect_smt(&mut p, &t));

        let nosmt = presets::no_smt_small();
        let mut p2 = SimProber::noiseless(&nosmt);
        let (t2, _) = collect(&mut p2, &cfg).unwrap();
        assert!(!detect_smt(&mut p2, &t2));
    }

    #[test]
    fn modeled_runtime_orders_ivy_vs_westmere() {
        // Section 3.5: ~3 s on Ivy (40 contexts), 96 s on Westmere (160
        // contexts, DVFS). The modelled accounting must reproduce the
        // order of magnitude and the ~20-30x gap.
        let ivy = presets::ivy();
        let west = presets::westmere();
        // Accounting only depends on pair counts and medians: collect
        // with few reps and scale to the paper's 2000.
        let cfg = ProbeConfig {
            reps: 25,
            ..ProbeConfig::default()
        };
        let mut pi = SimProber::noiseless(&ivy);
        let mut pw = SimProber::noiseless(&west);
        let (_, si) = collect(&mut pi, &cfg).unwrap();
        let (_, sw) = collect(&mut pw, &cfg).unwrap();
        let t_ivy = si.scaled_to_reps(25, 2000).modeled_seconds(ivy.freq_ghz);
        let t_west = sw.scaled_to_reps(25, 2000).modeled_seconds(west.freq_ghz);
        assert!(t_ivy > 1.0 && t_ivy < 10.0, "ivy {t_ivy}");
        assert!(t_west > 40.0 && t_west < 200.0, "westmere {t_west}");
        assert!(t_west / t_ivy > 10.0);
    }

    #[test]
    fn retry_path_survives_moderate_noise() {
        let spec = presets::synthetic_small();
        let noise = mcsim::NoiseCfg {
            sigma_frac: 0.06,
            ..mcsim::NoiseCfg::default()
        };
        let mut p = SimProber::with_noise(&spec, 11, noise);
        let cfg = ProbeConfig {
            reps: 101,
            ..ProbeConfig::fast()
        };
        let (table, _) = collect(&mut p, &cfg).unwrap();
        assert!(table.is_consistent());
    }
}
