//! Step 3 of MCTOP-ALG: component creation (Section 3.3, Fig. 6 (3)).
//!
//! A component `C_l` of level `l > 0` is a set of level `l-1` components
//! such that any two communicate with the latency of level `l` *and*
//! have identical normalized latencies to every other component. Level 0
//! components are the individual hardware contexts.
//!
//! Components are built by classifying and reducing the latency table,
//! one cluster at a time, ascending. Grouping naturally stops at the
//! socket boundary of asymmetric machines (e.g. the Opteron's MCM pairs
//! pass the clique test but fail the identical-external-rows test, so
//! the sockets remain the top components and the cross-socket structure
//! is handled by interconnect inference instead).

use crate::alg::table::LatencyTable;
use crate::error::McTopError;
use crate::model::LatTriplet;

/// The components of one successfully grouped latency level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelComps {
    /// The latency cluster of this level.
    pub latency: LatTriplet,
    /// Components: sorted hardware-context members, ordered by smallest
    /// member.
    pub comps: Vec<Vec<usize>>,
    /// For each component, the indices of its children in the previous
    /// level (level 0 children are the context ids themselves).
    pub children: Vec<Vec<usize>>,
}

/// The full component hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    /// Successfully grouped levels, finest first.
    pub levels: Vec<LevelComps>,
    /// Components remaining after the last grouped level (the machine
    /// itself if grouping completed, the sockets on asymmetric
    /// machines).
    pub top_comps: Vec<Vec<usize>>,
    /// Reduced latency matrix between the top components (row-major).
    pub top_matrix: Vec<u32>,
    /// Index (into the cluster list) of the first cluster whose
    /// grouping failed the component conditions, if any.
    pub stopped_at_cluster: Option<usize>,
}

impl Hierarchy {
    /// Latency between two top components.
    pub fn top_latency(&self, a: usize, b: usize) -> u32 {
        self.top_matrix[a * self.top_comps.len() + b]
    }
}

/// Builds the component hierarchy from a normalized table.
pub fn build(norm: &LatencyTable, clusters: &[LatTriplet]) -> Result<Hierarchy, McTopError> {
    let n = norm.n();
    let mut comps: Vec<Vec<usize>> = (0..n).map(|h| vec![h]).collect();
    let mut m: Vec<u32> = (0..n * n).map(|i| norm.get(i / n, i % n)).collect();
    let mut levels: Vec<LevelComps> = Vec::new();
    let mut stopped = None;

    for (ci, cl) in clusters.iter().enumerate() {
        if comps.len() == 1 {
            break;
        }
        let k = comps.len();
        let lat = cl.median;
        if !m.contains(&lat) {
            return Err(McTopError::IrregularTopology(format!(
                "latency level {lat} vanished from the reduced table; \
                 a spurious measurement was likely clustered incorrectly"
            )));
        }
        match try_group(&m, k, lat) {
            Some(groups) => {
                // Reduce: new comps and new matrix.
                let mut order: Vec<usize> = (0..groups.len()).collect();
                let min_member = |g: &Vec<usize>| {
                    g.iter()
                        .map(|&c| comps[c][0])
                        .min()
                        .expect("non-empty group")
                };
                order.sort_by_key(|&gi| min_member(&groups[gi]));
                let mut new_comps = Vec::with_capacity(groups.len());
                let mut children = Vec::with_capacity(groups.len());
                for &gi in &order {
                    let mut members: Vec<usize> = groups[gi]
                        .iter()
                        .flat_map(|&c| comps[c].iter().copied())
                        .collect();
                    members.sort_unstable();
                    let mut kids = groups[gi].clone();
                    kids.sort_unstable();
                    new_comps.push(members);
                    children.push(kids);
                }
                let g = new_comps.len();
                let mut new_m = vec![0u32; g * g];
                for (i, &gi) in order.iter().enumerate() {
                    for (j, &gj) in order.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        // Any representative pair works: the identical-
                        // external-rows condition guarantees uniformity.
                        let rep_i = groups[gi][0];
                        let rep_j = groups[gj][0];
                        new_m[i * g + j] = m[rep_i * k + rep_j];
                    }
                }
                levels.push(LevelComps {
                    latency: *cl,
                    comps: new_comps.clone(),
                    children,
                });
                comps = new_comps;
                m = new_m;
            }
            None => {
                // The level does not form valid components: the
                // remaining structure is cross-socket (role assignment
                // verifies this is a legitimate stopping point).
                stopped = Some(ci);
                break;
            }
        }
    }

    Ok(Hierarchy {
        levels,
        top_comps: comps,
        top_matrix: m,
        stopped_at_cluster: stopped,
    })
}

/// Attempts to group the current components at latency `lat`.
///
/// Returns `None` when the grouping violates the component conditions
/// (non-clique groups, differing external rows, or unequal cardinality),
/// which is the natural stop at the cross-socket boundary.
fn try_group(m: &[u32], k: usize, lat: u32) -> Option<Vec<Vec<usize>>> {
    // Union-find over components joined by `lat`.
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != c {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if m[i * k + j] == lat {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups_map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..k {
        let r = find(&mut parent, i);
        groups_map.entry(r).or_default().push(i);
    }
    let groups: Vec<Vec<usize>> = groups_map.into_values().collect();

    // Condition 0: the level must actually merge something, and every
    // group must have the same cardinality ("each component contains the
    // same number of C_{l-1} components as any other").
    let size = groups[0].len();
    if size == 1 || groups.iter().any(|g| g.len() != size) {
        return None;
    }
    for g in &groups {
        // Condition 1: clique — any two members communicate at `lat`.
        for (ai, &a) in g.iter().enumerate() {
            for &b in g.iter().skip(ai + 1) {
                if m[a * k + b] != lat {
                    return None;
                }
            }
        }
        // Condition 2: identical external rows.
        let first = g[0];
        let in_group = |x: usize| g.contains(&x);
        for &member in g.iter().skip(1) {
            for z in 0..k {
                if in_group(z) {
                    continue;
                }
                if m[first * k + z] != m[member * k + z] {
                    return None;
                }
            }
        }
    }
    Some(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::cluster::{
        cluster,
        normalize,
        ClusterCfg, //
    };
    use crate::alg::probe::{
        collect,
        ProbeConfig, //
    };
    use crate::backend::SimProber;
    use mcsim::presets;

    fn hierarchy_of(spec: &mcsim::MachineSpec) -> Hierarchy {
        let mut p = SimProber::noiseless(spec);
        let cfg = ProbeConfig {
            reps: 3,
            ..ProbeConfig::fast()
        };
        let (raw, _) = collect(&mut p, &cfg).unwrap();
        let clusters = cluster(&raw.upper_triangle(), &ClusterCfg::default()).unwrap();
        let norm = normalize(&raw, &clusters);
        build(&norm, &clusters).unwrap()
    }

    #[test]
    fn ivy_levels_cores_sockets_machine() {
        let h = hierarchy_of(&presets::ivy());
        // Levels: SMT cores (20 comps of 2), sockets (2 comps of 20),
        // machine (1 comp of 40).
        assert_eq!(h.levels.len(), 3);
        assert_eq!(h.levels[0].comps.len(), 20);
        assert_eq!(h.levels[0].comps[0].len(), 2);
        assert_eq!(h.levels[1].comps.len(), 2);
        assert_eq!(h.levels[1].comps[0].len(), 20);
        assert_eq!(h.levels[2].comps.len(), 1);
        assert!(h.stopped_at_cluster.is_none());
        // Fig. 6: contexts 0 and 20 form a core.
        assert!(h.levels[0].comps.contains(&vec![0, 20]));
    }

    #[test]
    fn opteron_stops_at_sockets() {
        let h = hierarchy_of(&presets::opteron());
        // One grouped level (cores -> sockets, no SMT), then the MCM
        // pairs fail the identical-rows condition and grouping stops.
        assert_eq!(h.levels.len(), 1);
        assert_eq!(h.levels[0].comps.len(), 8);
        assert_eq!(h.levels[0].comps[0].len(), 6);
        assert_eq!(h.top_comps.len(), 8);
        assert!(h.stopped_at_cluster.is_some());
        // The top matrix carries the three cross-socket levels.
        let mut vals: Vec<u32> = h.top_matrix.iter().copied().filter(|&v| v != 0).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals, vec![197, 217, 300]);
    }

    #[test]
    fn westmere_stops_at_sockets() {
        let h = hierarchy_of(&presets::westmere());
        assert_eq!(h.levels.len(), 2); // SMT cores, sockets.
        assert_eq!(h.levels[1].comps.len(), 8);
        assert_eq!(h.top_comps.len(), 8);
        assert!(h.stopped_at_cluster.is_some());
    }

    #[test]
    fn clustered_l2_has_intermediate_level() {
        let h = hierarchy_of(&presets::clustered_l2());
        // SMT cores (16x2), L2 clusters (8x2 cores), sockets (2x4
        // clusters), machine.
        assert_eq!(h.levels.len(), 4);
        assert_eq!(h.levels[0].comps.len(), 16);
        assert_eq!(h.levels[1].comps.len(), 8);
        assert_eq!(h.levels[1].comps[0].len(), 4);
        assert_eq!(h.levels[2].comps.len(), 2);
        assert_eq!(h.levels[3].comps.len(), 1);
    }

    #[test]
    fn children_link_to_previous_level() {
        let h = hierarchy_of(&presets::ivy());
        // Socket components are made of core components; resolving the
        // children through the previous level must reproduce the
        // members.
        let cores = &h.levels[0];
        let sockets = &h.levels[1];
        for (si, socket) in sockets.comps.iter().enumerate() {
            let mut via_children: Vec<usize> = sockets.children[si]
                .iter()
                .flat_map(|&c| cores.comps[c].iter().copied())
                .collect();
            via_children.sort_unstable();
            assert_eq!(&via_children, socket);
        }
    }

    #[test]
    fn scrambled_numbering_still_groups() {
        let h = hierarchy_of(&presets::scrambled());
        assert_eq!(h.levels[0].comps.len(), 8); // Cores.
        assert_eq!(h.levels[1].comps.len(), 2); // Sockets.
    }

    #[test]
    fn vanished_level_is_an_error() {
        // A table whose "band" is split into two clusters triggers the
        // spurious-measurement detection: after grouping with the first
        // sub-cluster fails, the second one has vanished.
        let norm = LatencyTable::from_fn(4, |a, b| {
            if a == 0 && b == 1 {
                100
            } else if a == 2 && b == 3 {
                104 // Same structural level, split by clustering.
            } else {
                300
            }
        });
        let clusters = vec![
            LatTriplet::exact(100),
            LatTriplet::exact(104),
            LatTriplet::exact(300),
        ];
        // Grouping at 100 joins only (0,1): group sizes 2,1,1 -> stop.
        // Then since the stop leaves top comps {01},{2},{3} the caller
        // would fail; but with cluster 104 unreachable the matrix check
        // fires first if grouping at 100 succeeded. Either way the
        // hierarchy records the stop.
        let h = build(&norm, &clusters).unwrap();
        assert_eq!(h.stopped_at_cluster, Some(0));
        assert_eq!(h.top_comps.len(), 4);
    }
}
