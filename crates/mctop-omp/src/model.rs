//! The Fig. 12 model: relative execution time of MCTOP MP (runtime
//! policy selection) vs vanilla OpenMP (unpinned/sequential placement)
//! for the Green-Marl graph workloads, on the four x86 platforms
//! (Green-Marl does not support SPARC — footnote 6 of the paper).
//!
//! Reuses the placement cost model of `mctop_mapred::model`; the only
//! additions are (i) the small auto-selection overhead MCTOP MP pays to
//! probe policies on a workload sample ("up to 9% lower performance due
//! to the pre-processing stage") and (ii) the Combination application,
//! where OpenMP must run *both* kernels under one placement while
//! MCTOP MP re-places threads between parallel regions.

use mcsim::MachineSpec;
use mctop::Mctop;
use mctop_mapred::model::{
    best_time,
    Profile, //
};
use mctop_place::Policy;

/// Overhead factor of the automatic policy-selection pre-processing.
pub const AUTOSELECT_OVERHEAD: f64 = 1.03;

/// The five Fig. 12 workloads with the policies the figure names.
pub fn fig12_profiles() -> Vec<Profile> {
    vec![
        Profile {
            // Label propagation: latency/sync bound.
            name: "Communities",
            policy: Policy::ConCoreHwc,
            work_cycles: 25e9,
            mem_bytes: 10e9,
            sync_rounds: 16.0e6,
            smt_yield: 0.45,
        },
        Profile {
            // BFS levels: sync-bound but with little total work.
            name: "Hop Distance",
            policy: Policy::ConCoreHwc,
            work_cycles: 12e9,
            mem_bytes: 9e9,
            sync_rounds: 6.0e6,
            smt_yield: 0.50,
        },
        Profile {
            // PageRank: bandwidth-hungry, spread threads (BALANCE).
            name: "PageRank",
            policy: Policy::BalanceCore,
            work_cycles: 30e9,
            mem_bytes: 60e9,
            sync_rounds: 2.0e6,
            smt_yield: 0.50,
        },
        Profile {
            // Sorted-list intersections: cache/compute bound.
            name: "Potential Friends",
            policy: Policy::ConCoreHwc,
            work_cycles: 55e9,
            mem_bytes: 9e9,
            sync_rounds: 4.0e6,
            smt_yield: 0.30,
        },
        Profile {
            // Sparse random lookups: a little of everything.
            name: "Rand Degr. Samp.",
            policy: Policy::ConCoreHwc,
            work_cycles: 15e9,
            mem_bytes: 16e9,
            sync_rounds: 5.0e6,
            smt_yield: 0.50,
        },
    ]
}

/// One bar of Fig. 12.
#[derive(Debug, Clone)]
pub struct Fig12Bar {
    /// Platform name.
    pub platform: String,
    /// Workload name ("Combination" for the two-kernel application).
    pub workload: &'static str,
    /// Policy MCTOP MP ends up using (for Combination: per region).
    pub policy: Policy,
    /// time(MCTOP MP) / time(OpenMP); < 1 means MCTOP MP wins.
    pub rel_time: f64,
}

/// The x86 platforms of Fig. 12.
pub fn fig12_platforms() -> Vec<MachineSpec> {
    vec![
        mcsim::presets::ivy(),
        mcsim::presets::opteron(),
        mcsim::presets::haswell(),
        mcsim::presets::westmere(),
    ]
}

/// Computes the Fig. 12 bars for one platform (five kernels plus
/// Combination).
pub fn fig12_platform(spec: &MachineSpec, topo: &Mctop) -> Vec<Fig12Bar> {
    let mut bars = Vec::new();
    for p in fig12_profiles() {
        let (t_omp, _) = best_time(spec, topo, Policy::Sequential, &p);
        let (t_mp, _) = best_time(spec, topo, p.policy, &p);
        bars.push(Fig12Bar {
            platform: spec.name.clone(),
            workload: p.name,
            policy: p.policy,
            rel_time: t_mp * AUTOSELECT_OVERHEAD / t_omp,
        });
    }
    // Combination: PageRank + Potential Friends in one program.
    let profiles = fig12_profiles();
    let pr = profiles
        .iter()
        .find(|p| p.name == "PageRank")
        .expect("profile");
    let pf = profiles
        .iter()
        .find(|p| p.name == "Potential Friends")
        .expect("profile");
    // MCTOP MP: each region under its own best policy.
    let t_mp = best_time(spec, topo, pr.policy, pr).0 + best_time(spec, topo, pf.policy, pf).0;
    // OpenMP: one fixed placement for the whole program; it gets the
    // better of the two kernels' policies (a generous baseline).
    let both =
        |policy: Policy| best_time(spec, topo, policy, pr).0 + best_time(spec, topo, policy, pf).0;
    let t_omp = both(pr.policy)
        .min(both(pf.policy))
        .min(both(Policy::Sequential));
    bars.push(Fig12Bar {
        platform: spec.name.clone(),
        workload: "Combination",
        policy: pr.policy,
        rel_time: t_mp * AUTOSELECT_OVERHEAD / t_omp,
    });
    bars
}

#[cfg(test)]
mod tests {
    use super::*;
    use mctop::enrich::{
        enrich_all,
        SimEnricher, //
    };

    fn enriched(spec: &MachineSpec) -> Mctop {
        let mut p = mctop::backend::SimProber::noiseless(spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let mut t = mctop::infer(&mut p, &cfg).unwrap();
        let mut e = SimEnricher::new(spec);
        let mut pw = SimEnricher::new(spec);
        enrich_all(&mut t, &mut e, &mut pw).unwrap();
        t
    }

    #[test]
    fn fig12_average_improvement() {
        // Paper: "on average 22% faster across platforms and
        // workloads"; occasional small regressions (up to ~9%) from the
        // pre-processing are allowed.
        let mut rels = Vec::new();
        for spec in fig12_platforms() {
            let topo = enriched(&spec);
            for bar in fig12_platform(&spec, &topo) {
                assert!(
                    bar.rel_time < 1.12,
                    "{} {}: {}",
                    bar.platform,
                    bar.workload,
                    bar.rel_time
                );
                rels.push(bar.rel_time);
            }
        }
        let avg = rels.iter().sum::<f64>() / rels.len() as f64;
        assert!((0.70..=0.97).contains(&avg), "average relative time {avg}");
    }

    #[test]
    fn combination_beats_any_single_policy() {
        // The Combination bars must show a win: OpenMP cannot re-place
        // between regions.
        for spec in fig12_platforms() {
            let topo = enriched(&spec);
            let bars = fig12_platform(&spec, &topo);
            let combo = bars.iter().find(|b| b.workload == "Combination").unwrap();
            assert!(
                combo.rel_time <= 1.04,
                "{}: combination {}",
                spec.name,
                combo.rel_time
            );
        }
    }

    #[test]
    fn no_sparc_in_fig12() {
        assert!(fig12_platforms().iter().all(|s| s.name != "sparc"));
        assert_eq!(fig12_platforms().len(), 4);
    }
}
