//! Proof-of-concept automatic policy selection (Section 7.4): run a
//! small part of the workload under each candidate policy and keep the
//! best — possible only because MCTOP MP can re-place threads at
//! runtime.

use std::time::Instant;

use mctop_place::Policy;

use crate::runtime::OmpRuntime;

/// Candidate policies probed by the selector.
pub fn candidates() -> Vec<Policy> {
    vec![
        Policy::ConHwc,
        Policy::ConCoreHwc,
        Policy::ConCore,
        Policy::BalanceCore,
        Policy::RrCore,
    ]
}

/// Runs `sample` once under every candidate policy (wall-clock timed)
/// and selects the fastest for subsequent regions. Returns the chosen
/// policy and the per-candidate timings.
pub fn auto_select<F>(rt: &OmpRuntime, sample: F) -> (Policy, Vec<(Policy, f64)>)
where
    F: Fn(&OmpRuntime),
{
    let mut timings = Vec::new();
    for policy in candidates() {
        if rt.set_binding_policy(policy).is_err() {
            continue;
        }
        let t = Instant::now();
        sample(rt);
        timings.push((policy, t.elapsed().as_secs_f64()));
    }
    let best = timings
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"))
        .map(|&(p, _)| p)
        .unwrap_or(Policy::None);
    let _ = rt.set_binding_policy(best);
    (best, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use std::sync::Arc;

    #[test]
    fn selects_some_candidate_and_applies_it() {
        let spec = mcsim::presets::synthetic_small();
        let mut p = mctop::backend::SimProber::noiseless(&spec);
        let cfg = mctop::ProbeConfig {
            reps: 3,
            ..mctop::ProbeConfig::fast()
        };
        let rt = OmpRuntime::new(Arc::new(mctop::infer(&mut p, &cfg).unwrap()), 4);
        let g = Graph::synthetic(500, 4, 1);
        let (best, timings) = auto_select(&rt, |rt| {
            let _ = crate::workloads::pagerank(rt, &g, 1);
        });
        assert_eq!(timings.len(), candidates().len());
        assert!(candidates().contains(&best));
        assert_eq!(rt.binding_policy(), best);
    }
}
