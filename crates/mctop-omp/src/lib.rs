//! # mctop-omp — "MCTOP MP": an OpenMP-like runtime over MCTOP-PLACE
//!
//! Reproduction of the extended-OpenMP study (Section 7.4 of the MCTOP
//! paper). GNU libgomp's placement is offline, inflexible and
//! platform-specific; the paper adds `omp_set_binding_policy` so
//! developers can (i) choose placement policies at runtime, (ii) change
//! them *between parallel regions*, and (iii) express them portably as
//! MCTOP-PLACE policies.
//!
//! - [`runtime`]: the parallel-for runtime with a placement pool and
//!   per-region binding policies;
//! - [`graph`]: CSR graphs and a synthetic generator (the Green-Marl
//!   workloads of Fig. 12 run over graphs);
//! - [`workloads`]: PageRank, Hop Distance, Communities, Potential
//!   Friends, Random Degree Sampling — and Combination (two kernels
//!   with conflicting optimal policies in one application);
//! - [`autoselect`]: the proof-of-concept automatic policy selection
//!   (run a small part of the workload under each policy, keep the
//!   best);
//! - [`model`]: the Fig. 12 per-platform model.

pub mod autoselect;
pub mod graph;
pub mod model;
pub mod runtime;
pub mod workloads;

pub use runtime::OmpRuntime;
